#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "core/planner.hpp"
#include "util/rng.hpp"

namespace qres {
namespace {

ResourceCatalog make_catalog() {
  ResourceCatalog catalog;
  catalog.add("cpu@server", ResourceKind::kCpu);
  catalog.add("bw", ResourceKind::kNetworkBandwidth);
  return catalog;
}

const char* kModel = R"(
# A two-component streaming service.
service Streaming
source_param frame_rate resolution
source 30 1080

component Encoder host=0
param frame_rate resolution
out 30 1080
out 15 480
translate 0 0 cpu@server=60    # full quality
translate 0 1 cpu@server=10

component Player host=1
param frame_rate resolution
out 30 1080
out 15 480
translate 0 0 bw=40
translate 1 1 bw=10

link 0 1
ranking 0 1
)";

TEST(ModelIo, ParsesAFullModel) {
  const ResourceCatalog catalog = make_catalog();
  const ModelDescription model = parse_model(kModel, catalog);
  EXPECT_EQ(model.service_name, "Streaming");
  ASSERT_EQ(model.components.size(), 2u);
  EXPECT_EQ(model.components[0].name, "Encoder");
  EXPECT_EQ(model.components[0].host, (HostId{0}));
  EXPECT_EQ(model.components[0].out_levels.size(), 2u);
  EXPECT_EQ(model.components[0].table.size(), 2u);
  EXPECT_EQ(model.components[1].name, "Player");
  EXPECT_EQ(model.edges.size(), 1u);
  EXPECT_EQ(model.ranking, (std::vector<LevelIndex>{0, 1}));
  EXPECT_EQ(model.source_values, (std::vector<double>{30, 1080}));
}

TEST(ModelIo, InstantiatedServicePlans) {
  const ResourceCatalog catalog = make_catalog();
  const ModelDescription model = parse_model(kModel, catalog);
  const ServiceDefinition service = model.instantiate();
  EXPECT_TRUE(service.is_chain());

  AvailabilityView view;
  view.set(*catalog.find("cpu@server"), 100.0);
  view.set(*catalog.find("bw"), 100.0);
  const Qrg qrg(service, view);
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_EQ(result.plan->end_to_end_rank, 0u);
  EXPECT_DOUBLE_EQ(result.plan->bottleneck_psi, 0.6);  // cpu 60/100
}

TEST(ModelIo, FootprintCollectsAllResources) {
  const ResourceCatalog catalog = make_catalog();
  const ModelDescription model = parse_model(kModel, catalog);
  const auto footprint = model.footprint();
  ASSERT_EQ(footprint.size(), 2u);
  EXPECT_EQ(footprint[0], *catalog.find("cpu@server"));
  EXPECT_EQ(footprint[1], *catalog.find("bw"));
}

TEST(ModelIo, RoundTripsThroughWriter) {
  const ResourceCatalog catalog = make_catalog();
  const ModelDescription original = parse_model(kModel, catalog);
  const std::string text = write_model(original, catalog);
  const ModelDescription reparsed = parse_model(text, catalog);
  EXPECT_EQ(reparsed.service_name, original.service_name);
  EXPECT_EQ(reparsed.source_values, original.source_values);
  EXPECT_EQ(reparsed.edges, original.edges);
  EXPECT_EQ(reparsed.ranking, original.ranking);
  ASSERT_EQ(reparsed.components.size(), original.components.size());
  for (std::size_t i = 0; i < original.components.size(); ++i) {
    const auto& a = original.components[i];
    const auto& b = reparsed.components[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.out_levels, b.out_levels);
    EXPECT_EQ(a.table.size(), b.table.size());
    for (const auto& [key, req] : a.table) {
      const auto other = b.table.get(key.first, key.second);
      ASSERT_TRUE(other.has_value());
      EXPECT_EQ(req, *other);
    }
  }
}

TEST(ModelIo, ErrorsCarryLineNumbers) {
  const ResourceCatalog catalog = make_catalog();
  try {
    parse_model("service X\nbogus_keyword 1\n", catalog);
    FAIL() << "expected ModelParseError";
  } catch (const ModelParseError& error) {
    EXPECT_EQ(error.line(), 2u);
  }
}

struct BadCase {
  const char* name;
  const char* text;
};

class ModelIoErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ModelIoErrors, Rejected) {
  const ResourceCatalog catalog = make_catalog();
  EXPECT_THROW(parse_model(GetParam().text, catalog), ModelParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ModelIoErrors,
    ::testing::Values(
        BadCase{"missing_service", "source_param a\nsource 1\n"},
        BadCase{"unknown_resource",
                "service X\nsource_param a\nsource 1\ncomponent C\nparam "
                "a\nout 1\ntranslate 0 0 nosuch=1\n"},
        BadCase{"source_before_params", "service X\nsource 1\n"},
        BadCase{"arity_mismatch",
                "service X\nsource_param a b\nsource 1\n"},
        BadCase{"out_arity",
                "service X\nsource_param a\nsource 1\ncomponent C\nparam a "
                "b\nout 1\n"},
        BadCase{"translate_outside_component",
                "service X\nsource_param a\nsource 1\ntranslate 0 0 bw=1\n"},
        BadCase{"negative_index",
                "service X\nsource_param a\nsource 1\ncomponent C\nparam "
                "a\nout 1\ntranslate -1 0 bw=1\n"},
        BadCase{"bad_number",
                "service X\nsource_param a\nsource 1x\n"},
        BadCase{"no_components", "service X\nsource_param a\nsource 1\n"},
        BadCase{"bad_attribute",
                "service X\nsource_param a\nsource 1\ncomponent C "
                "color=red\n"}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// Property: write(parse(x)) round-trips for randomly generated models.
class ModelIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelIoRoundTrip, RandomModelsRoundTrip) {
  Rng rng(GetParam());
  ResourceCatalog catalog;
  std::vector<std::string> resource_names;
  for (int i = 0; i < 5; ++i) {
    resource_names.push_back("res" + std::to_string(i));
    catalog.add(resource_names.back(), ResourceKind::kCpu);
  }
  for (int trial = 0; trial < 10; ++trial) {
    ModelDescription model;
    model.service_name = "svc" + std::to_string(trial);
    model.source_schema = QoSSchema({"p0", "p1"});
    model.source_values = {rng.uniform(1, 100), rng.uniform(1, 100)};
    const int k = rng.uniform_int(1, 4);
    int prev_levels = 1;
    for (int c = 0; c < k; ++c) {
      ComponentDescription component;
      component.name = "c" + std::to_string(c);
      if (rng.bernoulli(0.5))
        component.host = HostId{static_cast<std::uint32_t>(c)};
      component.schema = QoSSchema({"p0", "p1"});
      const int levels = rng.uniform_int(1, 3);
      for (int l = 0; l < levels; ++l)
        component.out_levels.emplace_back(
            component.schema,
            std::vector<double>{rng.uniform(1, 50), rng.uniform(1, 50)});
      for (int in = 0; in < prev_levels; ++in)
        for (int out = 0; out < levels; ++out)
          if (rng.bernoulli(0.7)) {
            ResourceVector req;
            const auto id = catalog.find(
                resource_names[static_cast<std::size_t>(
                    rng.uniform_int(0, 4))]);
            req.set(*id, rng.uniform(0.5, 40.0));
            component.table.set(static_cast<LevelIndex>(in),
                                static_cast<LevelIndex>(out), req);
          }
      if (component.table.size() == 0) {
        ResourceVector req;
        req.set(*catalog.find("res0"), 1.0);
        component.table.set(0, 0, req);
      }
      model.components.push_back(std::move(component));
      if (c > 0)
        model.edges.push_back({static_cast<ComponentIndex>(c - 1),
                               static_cast<ComponentIndex>(c)});
      prev_levels = levels;
    }
    const std::string text = write_model(model, catalog);
    const ModelDescription reparsed = parse_model(text, catalog);
    EXPECT_EQ(reparsed.service_name, model.service_name);
    EXPECT_EQ(reparsed.source_values, model.source_values);
    EXPECT_EQ(reparsed.edges, model.edges);
    ASSERT_EQ(reparsed.components.size(), model.components.size());
    for (std::size_t c = 0; c < model.components.size(); ++c) {
      EXPECT_EQ(reparsed.components[c].out_levels,
                model.components[c].out_levels);
      EXPECT_EQ(reparsed.components[c].host, model.components[c].host);
      for (const auto& [key, req] : model.components[c].table) {
        const auto other =
            reparsed.components[c].table.get(key.first, key.second);
        ASSERT_TRUE(other.has_value());
        EXPECT_EQ(req, *other);
      }
    }
    // And the reparsed model still instantiates.
    EXPECT_NO_THROW(reparsed.instantiate());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelIoRoundTrip,
                         ::testing::Values(101, 202, 303));

TEST(ModelIo, InstantiateValidatesGraph) {
  const ResourceCatalog catalog = make_catalog();
  // Parses fine but has a cycle: instantiate() must reject it.
  const std::string cyclic = std::string(kModel) + "link 1 0\n";
  const ModelDescription model = parse_model(cyclic, catalog);
  EXPECT_THROW(model.instantiate(), ContractViolation);
}

#ifdef QRES_SOURCE_DIR
TEST(ModelIo, ShippedVideoTrackingModelParses) {
  ResourceCatalog catalog;
  catalog.add("cpu@video-server", ResourceKind::kCpu);
  catalog.add("disk@video-server", ResourceKind::kDiskBandwidth);
  catalog.add("cpu@tracking-proxy", ResourceKind::kCpu);
  catalog.add("bw(server-proxy)", ResourceKind::kNetworkBandwidth);
  catalog.add("bw(proxy-client)", ResourceKind::kNetworkBandwidth);
  std::ifstream file(std::string(QRES_SOURCE_DIR) +
                     "/examples/models/video_tracking.qrm");
  ASSERT_TRUE(file.is_open());
  const ModelDescription model = parse_model(file, catalog);
  EXPECT_EQ(model.service_name, "VideoStreamingTracking");
  ASSERT_EQ(model.components.size(), 3u);
  EXPECT_EQ(model.components[1].name, "ObjectTracker");
  const ServiceDefinition service = model.instantiate();
  EXPECT_TRUE(service.is_chain());
  EXPECT_EQ(model.footprint().size(), 5u);

  // The instantiated service plans successfully under full availability.
  AvailabilityView view;
  for (std::uint32_t i = 0; i < 5; ++i) view.set(ResourceId{i}, 100.0);
  const Qrg qrg(service, view);
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_EQ(result.plan->end_to_end_rank, 0u);
}
#endif

TEST(ModelIo, CommentsAndBlankLinesIgnored) {
  const ResourceCatalog catalog = make_catalog();
  const ModelDescription model = parse_model(
      "# header\n\nservice X  # trailing\n\nsource_param a\nsource 5\n"
      "component C\nparam a\nout 5\ntranslate 0 0 bw=1 # cheap\n",
      catalog);
  EXPECT_EQ(model.service_name, "X");
  EXPECT_EQ(model.components[0].table.size(), 1u);
}

}  // namespace
}  // namespace qres
