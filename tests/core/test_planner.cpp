#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/exhaustive.hpp"

namespace qres {
namespace {

using test::avail;
using test::make_chain;
using test::rv;

// Builds chains whose translation-edge weights are exactly the numbers we
// choose: each edge gets its own dedicated resource with availability 1.0
// and requirement = the desired psi.
class PsiChainBuilder {
 public:
  /// One component: edges[(in, out)] = psi.
  PsiChainBuilder& component(
      int out_levels,
      std::vector<std::tuple<LevelIndex, LevelIndex, double>> edges) {
    TranslationTable table;
    for (const auto& [in, out, psi] : edges) {
      const ResourceId id{next_resource_++};
      view_.set(id, 1.0);
      table.set(in, out, rv({{id, psi}}));
    }
    components_.push_back({out_levels, std::move(table)});
    return *this;
  }

  ServiceDefinition service() const { return make_chain(components_); }
  const AvailabilityView& view() const { return view_; }

 private:
  std::uint32_t next_resource_ = 0;
  std::vector<std::pair<int, TranslationTable>> components_;
  AvailabilityView view_;
};

TEST(RelaxQrg, SourceIsReachableAtZero) {
  PsiChainBuilder b;
  b.component(1, {{0, 0, 0.5}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  const auto labels = relax_qrg(qrg);
  EXPECT_TRUE(labels[qrg.source_node()].reachable);
  EXPECT_EQ(labels[qrg.source_node()].value, 0.0);
}

TEST(RelaxQrg, PathValueIsMaxOfEdgeWeights) {
  PsiChainBuilder b;
  b.component(1, {{0, 0, 0.3}}).component(1, {{0, 0, 0.1}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  const auto labels = relax_qrg(qrg);
  const std::uint32_t sink = qrg.ranked_sink_nodes()[0];
  EXPECT_TRUE(labels[sink].reachable);
  EXPECT_DOUBLE_EQ(labels[sink].value, 0.3);  // max, not sum
}

TEST(RelaxQrg, ChoosesMinimaxPredecessor) {
  // Two ways to the sink: via out0 (0.5 then 0.1) or out1 (0.2 then 0.3).
  // Minimax picks max(0.2, 0.3) = 0.3 over max(0.5, 0.1) = 0.5.
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.5}, {0, 1, 0.2}})
      .component(1, {{0, 0, 0.1}, {1, 0, 0.3}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  const auto labels = relax_qrg(qrg);
  const std::uint32_t sink = qrg.ranked_sink_nodes()[0];
  EXPECT_DOUBLE_EQ(labels[sink].value, 0.3);
}

TEST(RelaxQrg, PaperTieBreakPrefersSmallerIncomingEdge) {
  // Figure-5 situation: two predecessors give the same path value
  // max(a,b) = max(a,c) = a; the one with min(b,c) must be chosen.
  // Here a = 0.4 on both branches, edge weights into the sink 0.1 vs 0.3.
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.4}, {0, 1, 0.4}})
      .component(1, {{0, 0, 0.3}, {1, 0, 0.1}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());

  const auto labels = relax_qrg(qrg, {.use_tie_break = true});
  const std::uint32_t sink = qrg.ranked_sink_nodes()[0];
  const QrgEdge& chosen = qrg.edge(labels[sink].pred_edge);
  EXPECT_DOUBLE_EQ(chosen.psi, 0.1);

  // Without the rule, the first candidate in edge order wins (psi 0.3).
  const auto plain = relax_qrg(qrg, {.use_tie_break = false});
  const QrgEdge& first = qrg.edge(plain[sink].pred_edge);
  EXPECT_DOUBLE_EQ(first.psi, 0.3);
  // Either way the path value is the same.
  EXPECT_DOUBLE_EQ(labels[sink].value, plain[sink].value);
}

TEST(BasicPlanner, PicksHighestReachableSink) {
  // Sink level 0 (best) is infeasible; level 1 feasible.
  PsiChainBuilder b;
  b.component(1, {{0, 0, 0.2}}).component(2, {{0, 1, 0.1}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_EQ(result.plan->end_to_end_level, 1u);
  EXPECT_EQ(result.plan->end_to_end_rank, 1u);
  EXPECT_FALSE(result.sinks[0].reachable);
  EXPECT_TRUE(result.sinks[1].reachable);
}

TEST(BasicPlanner, NoPlanWhenNothingReachable) {
  TranslationTable t;
  t.set(0, 0, rv({{ResourceId{0}, 50.0}}));
  const ServiceDefinition service = make_chain({{1, t}});
  const Qrg qrg(service, avail({{ResourceId{0}, 10.0}}));
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  EXPECT_FALSE(result.plan.has_value());
  EXPECT_FALSE(result.sinks[0].reachable);
}

TEST(BasicPlanner, PlanStepsAreConsistent) {
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.5}, {0, 1, 0.2}})
      .component(2, {{0, 0, 0.1}, {1, 0, 0.3}, {1, 1, 0.05}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  const ReservationPlan& plan = *result.plan;
  ASSERT_EQ(plan.steps.size(), 2u);
  // Steps are in topological order and chain together: step[i].out feeds
  // step[i+1].in.
  EXPECT_EQ(plan.steps[0].component, 0u);
  EXPECT_EQ(plan.steps[1].component, 1u);
  EXPECT_EQ(plan.steps[1].in_level, plan.steps[0].out_level);
  // Bottleneck is the max step psi.
  double max_psi = 0.0;
  for (const auto& s : plan.steps) max_psi = std::max(max_psi, s.psi);
  EXPECT_DOUBLE_EQ(plan.bottleneck_psi, max_psi);
  // Best sink (level 0) reachable via minimax path 0.2/0.3 vs 0.5/0.1:
  EXPECT_EQ(plan.end_to_end_level, 0u);
  EXPECT_DOUBLE_EQ(plan.bottleneck_psi, 0.3);
}

TEST(BasicPlanner, BottleneckResourceIsIdentified) {
  const ResourceId cpu{0}, bw{1};
  TranslationTable t;
  t.set(0, 0, rv({{cpu, 10.0}, {bw, 10.0}}));
  const ServiceDefinition service = make_chain({{1, t}});
  // bw is scarcer: it must be identified as bottleneck.
  const Qrg qrg(service, avail({{cpu, 1000}, {bw, 20}}));
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_EQ(result.plan->bottleneck_resource, bw);
  EXPECT_DOUBLE_EQ(result.plan->bottleneck_psi, 0.5);
  // Flip the scarcity: cpu becomes the bottleneck (dynamic identification).
  const Qrg qrg2(service, avail({{cpu, 20}, {bw, 1000}}));
  const PlanResult result2 = BasicPlanner().plan(qrg2, rng);
  EXPECT_EQ(result2.plan->bottleneck_resource, cpu);
}

TEST(BasicPlanner, TotalRequirementAggregatesSharedResources) {
  const ResourceId shared{0};
  TranslationTable t0, t1;
  t0.set(0, 0, rv({{shared, 3.0}}));
  t1.set(0, 0, rv({{shared, 4.0}}));
  const ServiceDefinition service = make_chain({{1, t0}, {1, t1}});
  const Qrg qrg(service, avail({{shared, 100}}));
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_DOUBLE_EQ(result.plan->total_requirement().get(shared), 7.0);
}

TEST(BasicPlanner, PathStringMatchesPaperFormat) {
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.1}, {0, 1, 0.2}})
      .component(2, {{0, 0, 0.1}, {1, 1, 0.2}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  // Nodes: Qa(source) Qb,Qc(c0 outs) Qd,Qe(c1 ins) Qf,Qg(c1 outs).
  EXPECT_EQ(result.plan->path_string(qrg), "Qa-Qb-Qd-Qf");
  EXPECT_EQ(plan_path_string(service, *result.plan),
            result.plan->path_string(qrg));
}

// ---------------------------------------------------------------------
// Tradeoff policy (§4.3.1)

TEST(TradeoffPlanner, EqualsBasicWhenAlphaAtLeastOne) {
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.5}, {0, 1, 0.1}}).component(2, {{0, 0, 0.1},
                                                           {1, 1, 0.05}});
  const ServiceDefinition service = b.service();
  // All alphas default to 1.0 in the builder's view.
  const Qrg qrg(service, b.view());
  Rng rng(1);
  const PlanResult basic = BasicPlanner().plan(qrg, rng);
  const PlanResult tradeoff = TradeoffPlanner().plan(qrg, rng);
  ASSERT_TRUE(basic.plan && tradeoff.plan);
  EXPECT_EQ(basic.plan->end_to_end_level, tradeoff.plan->end_to_end_level);
  EXPECT_DOUBLE_EQ(basic.plan->bottleneck_psi,
                   tradeoff.plan->bottleneck_psi);
}

// A chain where the best sink's bottleneck trends down: the tradeoff must
// settle for the lower sink whose psi fits the alpha-scaled budget.
ServiceDefinition tradeoff_service(AvailabilityView& view, double alpha) {
  const ResourceId expensive{0}, cheap{1};
  TranslationTable t;
  // level 0 needs 50% of the trending-down resource, level 1 needs 10%
  // of a stable one.
  t.set(0, 0, rv({{expensive, 50.0}}));
  t.set(0, 1, rv({{cheap, 10.0}}));
  view.set(expensive, 100.0, alpha);
  view.set(cheap, 100.0, 1.0);
  return make_chain({{2, t}});
}

TEST(TradeoffPlanner, DropsQoSWhenBottleneckTrendsDown) {
  AvailabilityView view;
  const ServiceDefinition service = tradeoff_service(view, 0.5);
  const Qrg qrg(service, view);
  Rng rng(1);
  const PlanResult basic = BasicPlanner().plan(qrg, rng);
  const PlanResult tradeoff = TradeoffPlanner().plan(qrg, rng);
  ASSERT_TRUE(basic.plan && tradeoff.plan);
  EXPECT_EQ(basic.plan->end_to_end_rank, 0u);
  // Budget = alpha * psi0 = 0.5 * 0.5 = 0.25; sink 1 has psi 0.1 <= 0.25.
  EXPECT_EQ(tradeoff.plan->end_to_end_rank, 1u);
  EXPECT_DOUBLE_EQ(tradeoff.plan->bottleneck_psi, 0.1);
}

TEST(TradeoffPlanner, KeepsBestSinkWhenBudgetTooTight) {
  AvailabilityView view;
  const ResourceId expensive{0}, cheap{1};
  TranslationTable t;
  t.set(0, 0, rv({{expensive, 50.0}}));
  t.set(0, 1, rv({{cheap, 40.0}}));  // psi 0.4 > 0.5*0.5 budget
  view.set(expensive, 100.0, 0.5);
  view.set(cheap, 100.0, 1.0);
  const ServiceDefinition service = make_chain({{2, t}});
  const Qrg qrg(service, view);
  Rng rng(1);
  const PlanResult tradeoff = TradeoffPlanner().plan(qrg, rng);
  ASSERT_TRUE(tradeoff.plan.has_value());
  // No sink satisfies the budget; the policy falls back to the best sink.
  EXPECT_EQ(tradeoff.plan->end_to_end_rank, 0u);
}

TEST(TradeoffPlanner, SinkInfoCarriesAlphaOfBottleneck) {
  AvailabilityView view;
  const ServiceDefinition service = tradeoff_service(view, 0.7);
  const Qrg qrg(service, view);
  Rng rng(1);
  const PlanResult result = TradeoffPlanner().plan(qrg, rng);
  ASSERT_FALSE(result.sinks.empty());
  EXPECT_DOUBLE_EQ(result.sinks[0].alpha, 0.7);
  EXPECT_DOUBLE_EQ(result.sinks[1].alpha, 1.0);
}

// ---------------------------------------------------------------------
// Property: on chains the basic planner is exact (matches exhaustive
// enumeration) — both the achieved rank and the minimax bottleneck.

class BasicVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BasicVsExhaustive, MatchesOptimalOnRandomChains) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    // Random chain: 2-4 components, 2-4 levels, random sparse edges over
    // two shared resources.
    const int k = rng.uniform_int(2, 4);
    const ResourceId cpu{0}, bw{1};
    std::vector<std::pair<int, TranslationTable>> components;
    int prev_levels = 1;
    for (int c = 0; c < k; ++c) {
      const int levels = rng.uniform_int(2, 4);
      TranslationTable table;
      for (int in = 0; in < prev_levels; ++in)
        for (int out = 0; out < levels; ++out)
          if (rng.bernoulli(0.7))
            table.set(static_cast<LevelIndex>(in),
                      static_cast<LevelIndex>(out),
                      test::rv({{cpu, rng.uniform(1.0, 40.0)},
                                {bw, rng.uniform(1.0, 40.0)}}));
      if (table.size() == 0)
        table.set(0, 0, test::rv({{cpu, 1.0}, {bw, 1.0}}));
      components.push_back({levels, std::move(table)});
      prev_levels = levels;
    }
    const ServiceDefinition service = make_chain(components);
    const AvailabilityView view = avail(
        {{cpu, rng.uniform(20.0, 60.0)}, {bw, rng.uniform(20.0, 60.0)}});
    const Qrg qrg(service, view);
    Rng planner_rng(1);
    const PlanResult fast = BasicPlanner().plan(qrg, planner_rng);
    const PlanResult exact = ExhaustivePlanner().plan(qrg, planner_rng);
    ASSERT_EQ(fast.plan.has_value(), exact.plan.has_value());
    if (!fast.plan) continue;
    EXPECT_EQ(fast.plan->end_to_end_rank, exact.plan->end_to_end_rank);
    EXPECT_NEAR(fast.plan->bottleneck_psi, exact.plan->bottleneck_psi,
                1e-12);
    // The plan itself must be feasible w.r.t. the snapshot.
    for (const auto& step : fast.plan->steps)
      for (const auto& [rid, amount] : step.requirement)
        EXPECT_LE(amount, view.get(rid).available);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasicVsExhaustive,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------
// Property: the heap-based Dijkstra formulation (the paper's literal
// presentation) computes the same node values and reachability as the
// topological relaxation, on random chains.

class DijkstraEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DijkstraEquivalence, MatchesRelaxationOnRandomChains) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const int k = rng.uniform_int(2, 5);
    const ResourceId cpu{0}, bw{1};
    std::vector<std::pair<int, TranslationTable>> components;
    int prev_levels = 1;
    for (int c = 0; c < k; ++c) {
      const int levels = rng.uniform_int(2, 4);
      TranslationTable table;
      for (int in = 0; in < prev_levels; ++in)
        for (int out = 0; out < levels; ++out)
          if (rng.bernoulli(0.6))
            table.set(static_cast<LevelIndex>(in),
                      static_cast<LevelIndex>(out),
                      test::rv({{cpu, rng.uniform(1.0, 50.0)},
                                {bw, rng.uniform(1.0, 50.0)}}));
      if (table.size() == 0)
        table.set(0, 0, test::rv({{cpu, 1.0}, {bw, 1.0}}));
      components.push_back({levels, std::move(table)});
      prev_levels = levels;
    }
    const ServiceDefinition service = make_chain(components);
    const Qrg qrg(service,
                  avail({{cpu, rng.uniform(20.0, 80.0)},
                         {bw, rng.uniform(20.0, 80.0)}}));
    const auto topo = relax_qrg(qrg);
    const auto heap = dijkstra_qrg(qrg);
    ASSERT_EQ(topo.size(), heap.size());
    for (std::size_t v = 0; v < topo.size(); ++v) {
      EXPECT_EQ(topo[v].reachable, heap[v].reachable) << "node " << v;
      if (topo[v].reachable) {
        EXPECT_NEAR(topo[v].value, heap[v].value, 1e-12) << "node " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraEquivalence,
                         ::testing::Values(5, 15, 25, 35, 45));

// Regression: dijkstra_qrg must agree with relax_qrg on the predecessor
// edge, not only on values. Two equal-value, equal-psi paths reach the
// sink; relax_qrg keeps the earlier in-edge, while the heap formulation
// used to keep whichever tail settled first — here the *later* edge,
// because its path value (0.1) is smaller and pops before 0.2.
TEST(DijkstraQrg, TieBreakMatchesRelaxationOnEqualCandidates) {
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.2}, {0, 1, 0.1}})
      .component(1, {{0, 0, 0.5}, {1, 0, 0.5}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  for (const bool tie_break : {false, true}) {
    const auto topo = relax_qrg(qrg, {.use_tie_break = tie_break});
    const auto heap = dijkstra_qrg(qrg, {.use_tie_break = tie_break});
    ASSERT_EQ(topo.size(), heap.size());
    for (std::size_t v = 0; v < topo.size(); ++v) {
      EXPECT_EQ(topo[v].reachable, heap[v].reachable) << "node " << v;
      EXPECT_EQ(topo[v].pred_edge, heap[v].pred_edge)
          << "node " << v << " tie_break " << tie_break;
      if (topo[v].reachable) {
        EXPECT_EQ(topo[v].value, heap[v].value) << "node " << v;
      }
    }
    // Both must resolve the tie to the first in-edge in iteration order.
    const std::uint32_t sink = qrg.ranked_sink_nodes()[0];
    EXPECT_EQ(heap[sink].pred_edge, qrg.in_edges(sink)[0]);
  }
}

TEST(DijkstraQrg, PlanExtractionWorksFromHeapLabels) {
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.5}, {0, 1, 0.2}})
      .component(1, {{0, 0, 0.1}, {1, 0, 0.3}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  const auto labels = dijkstra_qrg(qrg);
  const auto plan = extract_plan(qrg, labels, qrg.ranked_sink_nodes()[0]);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->bottleneck_psi, 0.3);
}

TEST(ExtractPlan, ValidatesInputs) {
  PsiChainBuilder b;
  b.component(1, {{0, 0, 0.1}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  auto labels = relax_qrg(qrg);
  EXPECT_THROW(extract_plan(qrg, labels, 9999), ContractViolation);
  EXPECT_THROW(extract_plan(qrg, labels, qrg.source_node()),
               ContractViolation);
  labels.pop_back();
  EXPECT_THROW(extract_plan(qrg, labels, qrg.ranked_sink_nodes()[0]),
               ContractViolation);
}

}  // namespace
}  // namespace qres
