#include "core/service.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace qres {
namespace {

using test::levels;
using test::q;

TranslationFn any_translation() {
  return [](LevelIndex, LevelIndex) -> std::optional<ResourceVector> {
    return ResourceVector{};
  };
}

ServiceComponent comp(const std::string& name, int out_levels) {
  return ServiceComponent(name, levels(out_levels), any_translation());
}

TEST(ServiceComponent, Contracts) {
  EXPECT_THROW(ServiceComponent("", levels(1), any_translation()),
               ContractViolation);
  EXPECT_THROW(ServiceComponent("c", {}, any_translation()),
               ContractViolation);
  EXPECT_THROW(ServiceComponent("c", levels(1), nullptr), ContractViolation);
  // Mixed schemas across output levels are rejected.
  std::vector<QoSVector> mixed{q(1), QoSVector(QoSSchema({"other"}), {1})};
  EXPECT_THROW(ServiceComponent("c", mixed, any_translation()),
               ContractViolation);
}

TEST(ServiceDefinition, ChainBasics) {
  ServiceDefinition service(
      "svc", {comp("a", 2), comp("b", 3), comp("c", 2)},
      {{0, 1}, {1, 2}}, q(5));
  EXPECT_TRUE(service.is_chain());
  EXPECT_EQ(service.source(), 0u);
  EXPECT_EQ(service.sink(), 2u);
  EXPECT_EQ(service.topological_order(),
            (std::vector<ComponentIndex>{0, 1, 2}));
  EXPECT_EQ(service.component_count(), 3u);
  EXPECT_EQ(service.predecessors(1), (std::vector<ComponentIndex>{0}));
  EXPECT_EQ(service.successors(0), (std::vector<ComponentIndex>{1}));
}

TEST(ServiceDefinition, SingleComponentService) {
  ServiceDefinition service("one", {comp("only", 2)}, {}, q(1));
  EXPECT_TRUE(service.is_chain());
  EXPECT_EQ(service.source(), service.sink());
  EXPECT_EQ(service.in_level_count(0), 1u);
}

TEST(ServiceDefinition, RejectsCycle) {
  EXPECT_THROW(ServiceDefinition("bad", {comp("a", 1), comp("b", 1)},
                                 {{0, 1}, {1, 0}}, q(1)),
               ContractViolation);
}

TEST(ServiceDefinition, RejectsTwoSources) {
  EXPECT_THROW(
      ServiceDefinition("bad", {comp("a", 1), comp("b", 1), comp("c", 1)},
                        {{0, 2}, {1, 2}}, q(1)),
      ContractViolation);
}

TEST(ServiceDefinition, RejectsTwoSinks) {
  EXPECT_THROW(
      ServiceDefinition("bad", {comp("a", 1), comp("b", 1), comp("c", 1)},
                        {{0, 1}, {0, 2}}, q(1)),
      ContractViolation);
}

TEST(ServiceDefinition, RejectsSelfLoopAndDuplicateEdges) {
  EXPECT_THROW(
      ServiceDefinition("bad", {comp("a", 1), comp("b", 1)},
                        {{0, 0}, {0, 1}}, q(1)),
      ContractViolation);
  EXPECT_THROW(
      ServiceDefinition("bad", {comp("a", 1), comp("b", 1)},
                        {{0, 1}, {0, 1}}, q(1)),
      ContractViolation);
}

TEST(ServiceDefinition, RejectsOutOfRangeEdge) {
  EXPECT_THROW(ServiceDefinition("bad", {comp("a", 1)}, {{0, 3}}, q(1)),
               ContractViolation);
}

TEST(ServiceDefinition, RejectsDisconnectedComponent) {
  // Two isolated components: two sources.
  EXPECT_THROW(
      ServiceDefinition("bad", {comp("a", 1), comp("b", 1)}, {}, q(1)),
      ContractViolation);
}

ServiceDefinition diamond() {
  // 0 -> {1, 2} -> 3 (the paper's figure-6 shape).
  return ServiceDefinition(
      "diamond", {comp("src", 2), comp("up", 3), comp("down", 2),
                  comp("join", 2)},
      {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, q(1));
}

TEST(ServiceDefinition, DagDetection) {
  const ServiceDefinition d = diamond();
  EXPECT_FALSE(d.is_chain());
  EXPECT_EQ(d.source(), 0u);
  EXPECT_EQ(d.sink(), 3u);
  EXPECT_EQ(d.predecessors(3), (std::vector<ComponentIndex>{1, 2}));
}

TEST(ServiceDefinition, FanInLevelCountIsProduct) {
  const ServiceDefinition d = diamond();
  EXPECT_EQ(d.in_level_count(0), 1u);  // the source quality
  EXPECT_EQ(d.in_level_count(1), 2u);  // |out(0)|
  EXPECT_EQ(d.in_level_count(3), 6u);  // |out(1)| * |out(2)| = 3*2
}

TEST(ServiceDefinition, ComboRoundTrips) {
  const ServiceDefinition d = diamond();
  for (LevelIndex flat = 0; flat < 6; ++flat) {
    const auto combo = d.in_level_combo(3, flat);
    ASSERT_EQ(combo.size(), 2u);
    EXPECT_LT(combo[0], 3u);
    EXPECT_LT(combo[1], 2u);
    EXPECT_EQ(d.flatten_in_level(3, combo), flat);
  }
  // Row-major: the last predecessor varies fastest.
  EXPECT_EQ(d.in_level_combo(3, 0), (std::vector<LevelIndex>{0, 0}));
  EXPECT_EQ(d.in_level_combo(3, 1), (std::vector<LevelIndex>{0, 1}));
  EXPECT_EQ(d.in_level_combo(3, 2), (std::vector<LevelIndex>{1, 0}));
}

TEST(ServiceDefinition, ComboContracts) {
  const ServiceDefinition d = diamond();
  EXPECT_THROW(d.in_level_combo(3, 6), ContractViolation);
  EXPECT_THROW(d.flatten_in_level(3, {0}), ContractViolation);
  EXPECT_THROW(d.flatten_in_level(3, {3, 0}), ContractViolation);
}

TEST(ServiceDefinition, DefaultRankingIsDeclarationOrder) {
  ServiceDefinition s("svc", {comp("a", 3)}, {}, q(1));
  EXPECT_EQ(s.end_to_end_ranking(), (std::vector<LevelIndex>{0, 1, 2}));
  EXPECT_EQ(s.rank_of(0), 0u);
  EXPECT_EQ(s.rank_of(2), 2u);
}

TEST(ServiceDefinition, CustomRankingValidation) {
  ServiceDefinition s("svc", {comp("a", 3)}, {}, q(1));
  s.set_end_to_end_ranking({2, 0, 1});
  EXPECT_EQ(s.rank_of(2), 0u);
  EXPECT_THROW(s.set_end_to_end_ranking({0, 1}), ContractViolation);
  EXPECT_THROW(s.set_end_to_end_ranking({0, 1, 1}), ContractViolation);
  EXPECT_THROW(s.set_end_to_end_ranking({0, 1, 3}), ContractViolation);
  EXPECT_THROW(s.rank_of(7), ContractViolation);
}

TEST(ServiceDefinition, TopologicalOrderRespectsEdges) {
  // A DAG with a non-trivial order: 0 -> 2, 0 -> 1, 1 -> 2, 2 -> 3.
  ServiceDefinition s(
      "svc", {comp("a", 1), comp("b", 1), comp("c", 1), comp("d", 1)},
      {{0, 2}, {0, 1}, {1, 2}, {2, 3}}, q(1));
  const auto& topo = s.topological_order();
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
}

}  // namespace
}  // namespace qres
