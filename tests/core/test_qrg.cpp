#include "core/qrg.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace qres {
namespace {

using test::avail;
using test::make_chain;
using test::rv;

const ResourceId cpu{0}, bw{1};

// A two-component chain: source quality -> c0 (2 outs) -> c1 (2 outs).
ServiceDefinition two_chain() {
  TranslationTable t0;
  t0.set(0, 0, rv({{cpu, 8.0}}));
  t0.set(0, 1, rv({{cpu, 4.0}}));
  TranslationTable t1;
  t1.set(0, 0, rv({{bw, 10.0}}));
  t1.set(0, 1, rv({{bw, 5.0}}));
  t1.set(1, 1, rv({{bw, 6.0}}));
  return make_chain({{2, t0}, {2, t1}});
}

TEST(Qrg, NodeLayoutAndNaming) {
  const ServiceDefinition service = two_chain();
  const Qrg qrg(service, avail({{cpu, 100}, {bw, 100}}));
  // Nodes: source in (Qa), c0 outs (Qb, Qc), c1 ins (Qd, Qe),
  // c1 outs (Qf, Qg).
  EXPECT_EQ(qrg.node_count(), 7u);
  EXPECT_EQ(qrg.node_name(qrg.source_node()), "Qa");
  EXPECT_EQ(qrg.node_name(qrg.node_of(0, QrgNodeKind::kOut, 0)), "Qb");
  EXPECT_EQ(qrg.node_name(qrg.node_of(0, QrgNodeKind::kOut, 1)), "Qc");
  EXPECT_EQ(qrg.node_name(qrg.node_of(1, QrgNodeKind::kIn, 0)), "Qd");
  EXPECT_EQ(qrg.node_name(qrg.node_of(1, QrgNodeKind::kOut, 0)), "Qf");
  EXPECT_EQ(qrg.node_name(qrg.node_of(1, QrgNodeKind::kOut, 1)), "Qg");
}

TEST(Qrg, LabelsBeyondZ) {
  EXPECT_EQ(Qrg::label(0), "Qa");
  EXPECT_EQ(Qrg::label(25), "Qz");
  EXPECT_EQ(Qrg::label(26), "Qaa");
  EXPECT_EQ(Qrg::label(27), "Qab");
  EXPECT_EQ(Qrg::label(51), "Qaz");
  EXPECT_EQ(Qrg::label(52), "Qba");
}

TEST(Qrg, NodeNameValidatesIndex) {
  const ServiceDefinition service = two_chain();
  const Qrg qrg(service, avail({{cpu, 100}, {bw, 100}}));
  EXPECT_THROW(qrg.node_name(1000), ContractViolation);
}

TEST(Qrg, TranslationEdgeWeightsFollowEq2And3) {
  const ServiceDefinition service = two_chain();
  const Qrg qrg(service, avail({{cpu, 40}, {bw, 100}}));
  // c0: 0->out0 requires cpu 8 of 40 -> psi 0.2.
  const std::uint32_t e =
      qrg.find_edge(qrg.source_node(), qrg.node_of(0, QrgNodeKind::kOut, 0));
  ASSERT_NE(e, QrgEdge::kNone);
  EXPECT_DOUBLE_EQ(qrg.edge(e).psi, 0.2);
  EXPECT_EQ(qrg.edge(e).bottleneck, cpu);
  EXPECT_TRUE(qrg.edge(e).is_translation);
}

TEST(Qrg, MultiResourceEdgeTakesMaxPsi) {
  TranslationTable t0;
  t0.set(0, 0, rv({{cpu, 10.0}, {bw, 30.0}}));
  const ServiceDefinition service = make_chain({{1, t0}});
  const Qrg qrg(service, avail({{cpu, 100}, {bw, 60}}));
  const std::uint32_t e =
      qrg.find_edge(qrg.source_node(), qrg.node_of(0, QrgNodeKind::kOut, 0));
  ASSERT_NE(e, QrgEdge::kNone);
  EXPECT_DOUBLE_EQ(qrg.edge(e).psi, 0.5);  // max(0.1, 0.5)
  EXPECT_EQ(qrg.edge(e).bottleneck, bw);
}

TEST(Qrg, InfeasibleOperatingPointsHaveNoEdge) {
  const ServiceDefinition service = two_chain();
  // cpu availability 5 admits only the cpu-4 operating point of c0.
  const Qrg qrg(service, avail({{cpu, 5}, {bw, 100}}));
  EXPECT_EQ(qrg.find_edge(qrg.source_node(),
                          qrg.node_of(0, QrgNodeKind::kOut, 0)),
            QrgEdge::kNone);
  EXPECT_NE(qrg.find_edge(qrg.source_node(),
                          qrg.node_of(0, QrgNodeKind::kOut, 1)),
            QrgEdge::kNone);
}

TEST(Qrg, ZeroAvailabilityAdmitsNothing) {
  const ServiceDefinition service = two_chain();
  const Qrg qrg(service, avail({{cpu, 0}, {bw, 100}}));
  EXPECT_EQ(qrg.find_edge(qrg.source_node(),
                          qrg.node_of(0, QrgNodeKind::kOut, 1)),
            QrgEdge::kNone);
}

TEST(Qrg, SessionScaleMultipliesRequirements) {
  const ServiceDefinition service = two_chain();
  // With scale 10, c0's cheaper operating point needs cpu 40 > 30.
  const Qrg qrg(service, avail({{cpu, 30}, {bw, 1000}}),
                PsiKind::kRatio, 10.0);
  EXPECT_EQ(qrg.find_edge(qrg.source_node(),
                          qrg.node_of(0, QrgNodeKind::kOut, 1)),
            QrgEdge::kNone);
  const Qrg unscaled(service, avail({{cpu, 30}, {bw, 1000}}));
  const std::uint32_t e = unscaled.find_edge(
      unscaled.source_node(), unscaled.node_of(0, QrgNodeKind::kOut, 1));
  ASSERT_NE(e, QrgEdge::kNone);
  // And scaled requirements carry the scaled amount on the edge.
  const Qrg scaled2(service, avail({{cpu, 30}, {bw, 1000}}),
                    PsiKind::kRatio, 2.0);
  const std::uint32_t e2 = scaled2.find_edge(
      scaled2.source_node(), scaled2.node_of(0, QrgNodeKind::kOut, 1));
  ASSERT_NE(e2, QrgEdge::kNone);
  EXPECT_DOUBLE_EQ(scaled2.edge(e2).requirement.get(cpu), 8.0);
}

TEST(Qrg, EquivalenceEdgesAreZeroWeight) {
  const ServiceDefinition service = two_chain();
  const Qrg qrg(service, avail({{cpu, 100}, {bw, 100}}));
  const std::uint32_t e =
      qrg.find_edge(qrg.node_of(0, QrgNodeKind::kOut, 0),
                    qrg.node_of(1, QrgNodeKind::kIn, 0));
  ASSERT_NE(e, QrgEdge::kNone);
  EXPECT_EQ(qrg.edge(e).psi, 0.0);
  EXPECT_FALSE(qrg.edge(e).is_translation);
  EXPECT_TRUE(qrg.edge(e).requirement.empty());
}

TEST(Qrg, AlphaPropagatesFromObservation) {
  const ServiceDefinition service = two_chain();
  AvailabilityView view;
  view.set(cpu, 100.0, 0.8);
  view.set(bw, 100.0, 1.2);
  const Qrg qrg(service, view);
  const std::uint32_t e =
      qrg.find_edge(qrg.source_node(), qrg.node_of(0, QrgNodeKind::kOut, 0));
  ASSERT_NE(e, QrgEdge::kNone);
  EXPECT_DOUBLE_EQ(qrg.edge(e).alpha, 0.8);
}

TEST(Qrg, MissingResourceInSnapshotThrows) {
  const ServiceDefinition service = two_chain();
  EXPECT_THROW(Qrg(service, avail({{cpu, 100}})), ContractViolation);
}

TEST(Qrg, RankedSinksFollowServiceRanking) {
  ServiceDefinition service = two_chain();
  service.set_end_to_end_ranking({1, 0});
  const Qrg qrg(service, avail({{cpu, 100}, {bw, 100}}));
  ASSERT_EQ(qrg.ranked_sink_nodes().size(), 2u);
  EXPECT_EQ(qrg.node(qrg.ranked_sink_nodes()[0]).level, 1u);
  EXPECT_EQ(qrg.node(qrg.ranked_sink_nodes()[1]).level, 0u);
}

TEST(Qrg, FanInComboNodesGetOneEdgePerPredecessor) {
  // Diamond: 0 -> {1, 2} -> 3 with small tables.
  TranslationTable src, up, down, join;
  src.set(0, 0, rv({{cpu, 1.0}}));
  up.set(0, 0, rv({{cpu, 1.0}}));
  up.set(0, 1, rv({{cpu, 2.0}}));
  down.set(0, 0, rv({{bw, 1.0}}));
  for (LevelIndex flat = 0; flat < 2; ++flat)
    join.set(flat, 0, rv({{bw, 1.0}}));
  std::vector<ServiceComponent> comps;
  comps.emplace_back("src", test::levels(1), src.as_function());
  comps.emplace_back("up", test::levels(2), up.as_function());
  comps.emplace_back("down", test::levels(1), down.as_function());
  comps.emplace_back("join", test::levels(1), join.as_function());
  ServiceDefinition service("diamond", std::move(comps),
                            {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, test::q(1));
  const Qrg qrg(service, avail({{cpu, 10}, {bw, 10}}));
  // join has 2*1 = 2 input combos; each combo node has exactly 2 incoming
  // equivalence edges (one per predecessor).
  for (LevelIndex flat = 0; flat < 2; ++flat) {
    const std::uint32_t node = qrg.node_of(3, QrgNodeKind::kIn, flat);
    std::size_t equivalence = 0;
    for (std::uint32_t e : qrg.in_edges(node))
      if (!qrg.edge(e).is_translation) ++equivalence;
    EXPECT_EQ(equivalence, 2u);
  }
}

TEST(Qrg, EdgeAndNodeAccessorsValidate) {
  const ServiceDefinition service = two_chain();
  const Qrg qrg(service, avail({{cpu, 100}, {bw, 100}}));
  EXPECT_THROW(qrg.node(1000), ContractViolation);
  EXPECT_THROW(qrg.edge(1000), ContractViolation);
  EXPECT_THROW(qrg.node_of(0, QrgNodeKind::kOut, 9), ContractViolation);
  EXPECT_EQ(qrg.find_edge(5000, 0), QrgEdge::kNone);
}

}  // namespace
}  // namespace qres
