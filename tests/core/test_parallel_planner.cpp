// parallel_relax_qrg must produce bit-identical labels to relax_qrg for
// every QRG, pool size and stripe count (DESIGN.md §11) — these tests
// pin that on hand-built and random chains; qres_fuzz --mode parallel
// extends the same differential to DAG services and batch admission.
#include "core/parallel_planner.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "../test_helpers.hpp"
#include "util/rng.hpp"

namespace qres {
namespace {

using test::avail;
using test::make_chain;
using test::rv;

// Mirrors test_planner.cpp's builder: every edge gets its own dedicated
// resource with availability 1.0 and requirement = the desired psi.
class PsiChainBuilder {
 public:
  PsiChainBuilder& component(
      int out_levels,
      std::vector<std::tuple<LevelIndex, LevelIndex, double>> edges) {
    TranslationTable table;
    for (const auto& [in, out, psi] : edges) {
      const ResourceId id{next_resource_++};
      view_.set(id, 1.0);
      table.set(in, out, rv({{id, psi}}));
    }
    components_.push_back({out_levels, std::move(table)});
    return *this;
  }

  ServiceDefinition service() const { return make_chain(components_); }
  const AvailabilityView& view() const { return view_; }

 private:
  std::uint32_t next_resource_ = 0;
  std::vector<std::pair<int, TranslationTable>> components_;
  AvailabilityView view_;
};

void expect_labels_identical(const std::vector<NodeLabel>& expected,
                             const std::vector<NodeLabel>& actual,
                             const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(expected[v].reachable, actual[v].reachable)
        << what << " node " << v;
    // Bit-identical, not approximately equal: the parallel engine reads
    // exactly the labels relax_qrg would and performs the same doubles
    // arithmetic in the same order per node.
    EXPECT_EQ(expected[v].value, actual[v].value) << what << " node " << v;
    EXPECT_EQ(expected[v].pred_edge, actual[v].pred_edge)
        << what << " node " << v;
  }
}

ServiceDefinition random_chain(Rng& rng, AvailabilityView& view) {
  const int k = rng.uniform_int(2, 5);
  const ResourceId cpu{0}, bw{1};
  std::vector<std::pair<int, TranslationTable>> components;
  int prev_levels = 1;
  for (int c = 0; c < k; ++c) {
    const int levels = rng.uniform_int(2, 4);
    TranslationTable table;
    for (int in = 0; in < prev_levels; ++in)
      for (int out = 0; out < levels; ++out)
        if (rng.bernoulli(0.6))
          table.set(static_cast<LevelIndex>(in),
                    static_cast<LevelIndex>(out),
                    rv({{cpu, rng.uniform(1.0, 50.0)},
                        {bw, rng.uniform(1.0, 50.0)}}));
    if (table.size() == 0) table.set(0, 0, rv({{cpu, 1.0}, {bw, 1.0}}));
    components.push_back({levels, std::move(table)});
    prev_levels = levels;
  }
  view = avail({{cpu, rng.uniform(20.0, 80.0)},
                {bw, rng.uniform(20.0, 80.0)}});
  return make_chain(components);
}

TEST(ParallelRelaxQrg, MatchesRelaxationWithoutAPool) {
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.5}, {0, 1, 0.2}})
      .component(2, {{0, 0, 0.1}, {1, 0, 0.3}, {1, 1, 0.05}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  expect_labels_identical(relax_qrg(qrg),
                          parallel_relax_qrg(qrg, nullptr), "no pool");
}

TEST(ParallelRelaxQrg, MatchesRelaxationAcrossPoolAndStripeCounts) {
  ThreadPool one(1), four(4);
  ParallelRelaxOptions opts;
  opts.min_parallel_nodes = 0;  // force the parallel path on tiny graphs
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    AvailabilityView view;
    const ServiceDefinition service = random_chain(rng, view);
    const Qrg qrg(service, view);
    const auto expected = relax_qrg(qrg);
    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &one, &four}) {
      for (const std::size_t stripes : {std::size_t{0}, std::size_t{1},
                                        std::size_t{3}, std::size_t{16}}) {
        opts.stripes = stripes;
        expect_labels_identical(
            expected, parallel_relax_qrg(qrg, pool, opts),
            "trial " + std::to_string(trial) + " stripes " +
                std::to_string(stripes));
      }
    }
  }
}

TEST(ParallelRelaxQrg, HonorsTieBreakPolicy) {
  // The figure-5 tie situation from test_planner.cpp: the tie-break rule
  // must flow through relax_node in the parallel engine too.
  PsiChainBuilder b;
  b.component(2, {{0, 0, 0.4}, {0, 1, 0.4}})
      .component(1, {{0, 0, 0.3}, {1, 0, 0.1}});
  const ServiceDefinition service = b.service();
  const Qrg qrg(service, b.view());
  ThreadPool pool(2);
  ParallelRelaxOptions opts;
  opts.min_parallel_nodes = 0;
  for (const bool tie_break : {false, true}) {
    opts.planner.use_tie_break = tie_break;
    expect_labels_identical(
        relax_qrg(qrg, opts.planner), parallel_relax_qrg(qrg, &pool, opts),
        std::string("tie_break ") + (tie_break ? "on" : "off"));
  }
}

TEST(ParallelPlanner, ReturnsExactlyBasicPlannersResult) {
  ThreadPool pool(4);
  ParallelRelaxOptions opts;
  opts.min_parallel_nodes = 0;
  const ParallelPlanner parallel(&pool, opts);
  const BasicPlanner basic;
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    AvailabilityView view;
    const ServiceDefinition service = random_chain(rng, view);
    const Qrg qrg(service, view);
    Rng a(1), c(1);
    const PlanResult lhs = basic.plan(qrg, a);
    const PlanResult rhs = parallel.plan(qrg, c);
    ASSERT_EQ(lhs.plan.has_value(), rhs.plan.has_value()) << trial;
    ASSERT_EQ(lhs.sinks.size(), rhs.sinks.size()) << trial;
    for (std::size_t s = 0; s < lhs.sinks.size(); ++s) {
      EXPECT_EQ(lhs.sinks[s].reachable, rhs.sinks[s].reachable);
      EXPECT_EQ(lhs.sinks[s].bottleneck, rhs.sinks[s].bottleneck);
    }
    if (!lhs.plan) continue;
    EXPECT_EQ(lhs.plan->end_to_end_rank, rhs.plan->end_to_end_rank);
    EXPECT_EQ(lhs.plan->bottleneck_psi, rhs.plan->bottleneck_psi);
    EXPECT_EQ(lhs.plan->bottleneck_resource, rhs.plan->bottleneck_resource);
    ASSERT_EQ(lhs.plan->steps.size(), rhs.plan->steps.size());
    for (std::size_t i = 0; i < lhs.plan->steps.size(); ++i) {
      EXPECT_EQ(lhs.plan->steps[i].in_level, rhs.plan->steps[i].in_level);
      EXPECT_EQ(lhs.plan->steps[i].out_level, rhs.plan->steps[i].out_level);
      EXPECT_EQ(lhs.plan->steps[i].psi, rhs.plan->steps[i].psi);
    }
  }
}

TEST(ParallelPlanner, ReportsItsName) {
  ThreadPool pool(1);
  EXPECT_EQ(ParallelPlanner(&pool).name(), "parallel");
}

TEST(DijkstraQrg, BucketQueueMatchesHeapQueue) {
  // PassQueue::kBucket swaps the binary heap for the BucketPQ; the labels
  // must stay bit-identical for any bucket width.
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    AvailabilityView view;
    const ServiceDefinition service = random_chain(rng, view);
    const Qrg qrg(service, view);
    for (const bool tie_break : {false, true}) {
      PlannerOptions heap_opts{.use_tie_break = tie_break};
      const auto expected = dijkstra_qrg(qrg, heap_opts);
      for (const double delta : {1.0 / 1024.0, 1.0 / 64.0, 0.37}) {
        PlannerOptions bucket_opts{.use_tie_break = tie_break,
                                   .queue = PassQueue::kBucket,
                                   .bucket_delta = delta};
        expect_labels_identical(
            expected, dijkstra_qrg(qrg, bucket_opts),
            "trial " + std::to_string(trial) + " delta " +
                std::to_string(delta));
      }
    }
  }
}

}  // namespace
}  // namespace qres
