#include "core/qrg_dot.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/planner.hpp"
#include "util/assert.hpp"

namespace qres {
namespace {

using test::avail;
using test::make_chain;
using test::rv;

struct Fixture {
  ResourceId r{0};
  ServiceDefinition service = make_service();
  AvailabilityView view = avail({{ResourceId{0}, 100.0}});
  Qrg qrg{service, view};

  ServiceDefinition make_service() {
    TranslationTable t0, t1;
    t0.set(0, 0, rv({{r, 10.0}}));
    t0.set(0, 1, rv({{r, 5.0}}));
    t1.set(0, 0, rv({{r, 20.0}}));
    t1.set(1, 1, rv({{r, 4.0}}));
    return make_chain({{2, t0}, {2, t1}});
  }
};

TEST(QrgDot, ContainsAllNodesAndClusters) {
  Fixture f;
  const std::string dot = to_dot(f.qrg);
  EXPECT_NE(dot.find("digraph qrg"), std::string::npos);
  // One cluster per component.
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  // Every node appears with its paper-style label.
  for (std::uint32_t n = 0; n < f.qrg.node_count(); ++n)
    EXPECT_NE(dot.find("\"" + f.qrg.node_name(n) + "\""),
              std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(QrgDot, TranslationEdgesCarryWeights) {
  Fixture f;
  const std::string dot = to_dot(f.qrg);
  EXPECT_NE(dot.find("label=\"0.1\""), std::string::npos);   // 10/100
  EXPECT_NE(dot.find("label=\"0.05\""), std::string::npos);  // 5/100
  // Equivalence edges are dotted and unweighted.
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
}

TEST(QrgDot, WeightsCanBeSuppressed) {
  Fixture f;
  DotOptions options;
  options.show_weights = false;
  const std::string dot = to_dot(f.qrg, options);
  EXPECT_EQ(dot.find("label=\"0.1\""), std::string::npos);
}

TEST(QrgDot, PlanIsHighlighted) {
  Fixture f;
  Rng rng(1);
  const PlanResult result = BasicPlanner().plan(f.qrg, rng);
  ASSERT_TRUE(result.plan.has_value());
  DotOptions options;
  options.plan = &*result.plan;
  const std::string dot = to_dot(f.qrg, options);
  // At least the plan's steps are drawn bold.
  EXPECT_GE(static_cast<int>(std::string::npos != dot.find("penwidth=2.5")),
            1);
  std::size_t bold = 0, pos = 0;
  while ((pos = dot.find("penwidth=2.5", pos)) != std::string::npos) {
    ++bold;
    pos += 1;
  }
  // 4 highlighted nodes (2 per step) + 2 highlighted edges.
  EXPECT_EQ(bold, 6u);
}

// Regression: a highlighted plan whose steps reference a component that
// does not exist in this QRG's service must be rejected up front, not
// rendered as a silently wrong graph.
TEST(QrgDot, PlanReferencingForeignComponentIsRejected) {
  Fixture f;
  ReservationPlan plan;
  PlanStep step;
  step.component = 7;  // service has only 2 components
  plan.steps.push_back(step);
  DotOptions options;
  options.plan = &plan;
  EXPECT_THROW(to_dot(f.qrg, options), ContractViolation);
}

TEST(QrgDot, CustomTitle) {
  Fixture f;
  DotOptions options;
  options.title = "my graph";
  const std::string dot = to_dot(f.qrg, options);
  EXPECT_NE(dot.find("label=\"my graph\""), std::string::npos);
  // Default: service name.
  EXPECT_NE(to_dot(f.qrg).find("label=\"chain\""), std::string::npos);
}

}  // namespace
}  // namespace qres
