#include "core/transport.hpp"

#include "util/assert.hpp"

namespace qres {

ExchangeResult IControlTransport::exchange_budgeted(HostId from, HostId to,
                                                    double now,
                                                    const RetryPolicy& policy) {
  QRES_REQUIRE(policy.max_attempts >= 1,
               "exchange_budgeted: at least one attempt required");
  return exchange(from, to, now);
}

const char* to_string(ExchangeStatus status) noexcept {
  switch (status) {
    case ExchangeStatus::kOk: return "ok";
    case ExchangeStatus::kTimeout: return "timeout";
    case ExchangeStatus::kPeerDown: return "peer-down";
    case ExchangeStatus::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

}  // namespace qres
