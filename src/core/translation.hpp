// Translation Functions (paper §2.2, eq. 1).
//
// T_c maps an (input QoS, output QoS) pair to the component's resource
// requirement vector. The paper treats T_c as a plug-in function supplied
// by the component developer; we model it as a std::function returning
// nullopt for operating points the component cannot realize (no QRG edge).
//
// TranslationTable is the common table-backed implementation: an explicit
// list of (in level index, out level index) -> requirement entries, which is
// exactly the form of the paper's figure 10.
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "core/resource.hpp"
#include "util/flat_map.hpp"

namespace qres {

/// Index of a QoS level within a component's enumerated input (or output)
/// level list.
using LevelIndex = std::uint32_t;

/// Plug-in translation: (input level index, output level index) ->
/// requirement, or nullopt when the component cannot produce that output
/// from that input. Indices refer to the enumerated level lists of the
/// owning ServiceComponent.
using TranslationFn =
    std::function<std::optional<ResourceVector>(LevelIndex in, LevelIndex out)>;

/// Table-backed translation (figure-10 style): explicit feasible entries.
class TranslationTable {
 public:
  TranslationTable() = default;

  /// Declares that output level `out` is producible from input level `in`
  /// at the given resource cost. Overwrites an existing entry.
  void set(LevelIndex in, LevelIndex out, ResourceVector requirement);

  /// Lookup; nullopt when the pair was never declared.
  std::optional<ResourceVector> get(LevelIndex in, LevelIndex out) const;

  std::size_t size() const noexcept { return entries_.size(); }

  /// Adapts the table to the TranslationFn plug-in interface.
  TranslationFn as_function() const;

  /// Returns a copy with every requirement scaled by `factor` (used to
  /// derive low-diversity variants and per-service tweaks).
  TranslationTable scaled(double factor) const;

  /// Iterates over entries as ((in, out), requirement).
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  FlatMap<std::pair<LevelIndex, LevelIndex>, ResourceVector> entries_;
};

}  // namespace qres
