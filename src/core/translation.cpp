#include "core/translation.hpp"

#include "util/assert.hpp"

namespace qres {

void TranslationTable::set(LevelIndex in, LevelIndex out,
                           ResourceVector requirement) {
  entries_.insert_or_assign({in, out}, std::move(requirement));
}

std::optional<ResourceVector> TranslationTable::get(LevelIndex in,
                                                    LevelIndex out) const {
  auto it = entries_.find({in, out});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

TranslationFn TranslationTable::as_function() const {
  // Copies the table into the closure so the function outlives the table.
  return [table = *this](LevelIndex in, LevelIndex out) {
    return table.get(in, out);
  };
}

TranslationTable TranslationTable::scaled(double factor) const {
  QRES_REQUIRE(factor >= 0.0, "TranslationTable::scaled: negative factor");
  TranslationTable result;
  for (const auto& [key, requirement] : entries_)
    result.set(key.first, key.second, requirement.scaled(factor));
  return result;
}

}  // namespace qres
