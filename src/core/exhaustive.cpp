#include "core/exhaustive.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace qres {

PlanResult ExhaustivePlanner::plan(const Qrg& qrg, Rng& /*rng*/) const {
  const ServiceDefinition& service = qrg.service();
  const std::size_t n = service.component_count();

  std::size_t total = 1;
  for (ComponentIndex c = 0; c < n; ++c) {
    total *= service.component(c).out_level_count();
    QRES_REQUIRE(total <= max_assignments_,
                 "ExhaustivePlanner: assignment space too large");
  }

  // Best assignment per sink level: smallest Psi_G.
  const std::size_t sink_levels = service.component(service.sink()).out_level_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_psi(sink_levels, kInf);
  std::vector<std::vector<LevelIndex>> best_assignment(sink_levels);

  std::vector<LevelIndex> assignment(n, 0);
  for (std::size_t iter = 0; iter < total; ++iter) {
    // Decode iter into an assignment (mixed radix, component order).
    std::size_t rem = iter;
    for (ComponentIndex c = 0; c < n; ++c) {
      const std::size_t base = service.component(c).out_level_count();
      assignment[c] = static_cast<LevelIndex>(rem % base);
      rem /= base;
    }
    // Feasibility: the induced translation edge of every component must
    // exist in the QRG.
    double psi_g = 0.0;
    bool feasible = true;
    for (ComponentIndex c : service.topological_order()) {
      const auto& preds = service.predecessors(c);
      std::vector<LevelIndex> combo(preds.size());
      for (std::size_t j = 0; j < preds.size(); ++j)
        combo[j] = assignment[preds[j]];
      const LevelIndex flat =
          preds.empty() ? 0 : service.flatten_in_level(c, combo);
      const std::uint32_t e =
          qrg.find_edge(qrg.node_of(c, QrgNodeKind::kIn, flat),
                        qrg.node_of(c, QrgNodeKind::kOut, assignment[c]));
      if (e == QrgEdge::kNone) {
        feasible = false;
        break;
      }
      psi_g = std::max(psi_g, qrg.edge(e).psi);
    }
    if (!feasible) continue;
    const LevelIndex sink_level = assignment[service.sink()];
    if (psi_g < best_psi[sink_level]) {
      best_psi[sink_level] = psi_g;
      best_assignment[sink_level] = assignment;
    }
  }

  // Sink diagnostics in rank order (psi = optimal bottleneck per sink).
  PlanResult result;
  result.sinks.reserve(sink_levels);
  std::size_t rank = 0;
  std::size_t best_rank = sink_levels;
  for (LevelIndex level : service.end_to_end_ranking()) {
    SinkInfo info;
    info.level = level;
    info.rank = rank;
    info.reachable = best_psi[level] < kInf;
    info.psi = info.reachable ? best_psi[level] : 0.0;
    if (info.reachable && best_rank == sink_levels) best_rank = rank;
    result.sinks.push_back(info);
    ++rank;
  }
  if (best_rank == sink_levels) return result;

  // Materialize the winning assignment as a plan.
  const LevelIndex target = service.end_to_end_ranking()[best_rank];
  const auto& winner = best_assignment[target];
  ReservationPlan plan;
  plan.steps.reserve(n);
  double bottleneck = -1.0;
  for (ComponentIndex c : service.topological_order()) {
    const auto& preds = service.predecessors(c);
    std::vector<LevelIndex> combo(preds.size());
    for (std::size_t j = 0; j < preds.size(); ++j)
      combo[j] = winner[preds[j]];
    const LevelIndex flat =
        preds.empty() ? 0 : service.flatten_in_level(c, combo);
    const std::uint32_t e =
        qrg.find_edge(qrg.node_of(c, QrgNodeKind::kIn, flat),
                      qrg.node_of(c, QrgNodeKind::kOut, winner[c]));
    QRES_ASSERT(e != QrgEdge::kNone);
    const QrgEdge& edge = qrg.edge(e);
    plan.steps.push_back(PlanStep{c, flat, winner[c], edge.requirement,
                                  edge.psi});
    if (edge.psi > bottleneck) {
      bottleneck = edge.psi;
      plan.bottleneck_resource = edge.bottleneck;
      plan.bottleneck_alpha = edge.alpha;
    }
  }
  plan.bottleneck_psi = bottleneck < 0.0 ? 0.0 : bottleneck;
  plan.end_to_end_level = target;
  plan.end_to_end_rank = best_rank;
  result.plan = std::move(plan);
  return result;
}

}  // namespace qres
