// Runtime algorithm for computing end-to-end multi-resource reservation
// plans (paper §4.1.2, §4.3.1, §4.3.2).
//
// Pass I ("shortest" path probing) is Dijkstra's algorithm with "+"
// redefined as "max": the value of a node is the smallest achievable
// bottleneck contention index over all ways to realize it. Because the QRG
// is a layered DAG, we relax nodes in topological order, which computes
// the same fixpoint as the paper's heap-based formulation but with fully
// deterministic tie handling. The paper's tie-breaking rule is applied:
// among predecessors yielding the same path value, prefer the one whose
// incoming edge weight is smaller.
//
// Input nodes of fan-in components take the *maximum* of their constituent
// upstream output values (all constituents are needed), per §4.3.2 pass I.
//
// Pass II extracts the plan by backtracking from the chosen sink. On chain
// services this is exact (the plan has the minimum possible bottleneck
// contention index among all plans reaching the chosen sink). On DAG
// services, non-convergence at fan-out components is resolved locally per
// §4.3.2, which is a heuristic: extraction can fail for a reachable sink
// (the planner then falls back to the next-ranked reachable sink) and the
// returned plan's bottleneck index can exceed the pass-I value.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "core/qrg.hpp"
#include "util/rng.hpp"

namespace qres {

/// Priority queue driving dijkstra_qrg's pass I. Labels are bit-identical
/// either way (BucketPQ reproduces the heap's exact pop order); the
/// bucket queue is faster when ψ values are bounded and coarse — the
/// common case (see src/core/bucket_pq.hpp).
enum class PassQueue : std::uint8_t { kBinaryHeap, kBucket };

struct PlannerOptions {
  /// Applies the paper's predecessor tie-breaking rule (min incoming edge
  /// weight among equal-value candidates). Disable only for the ablation.
  bool use_tie_break = true;
  /// Queue used by dijkstra_qrg (relax_qrg needs none).
  PassQueue queue = PassQueue::kBinaryHeap;
  /// Bucket width when queue == PassQueue::kBucket.
  double bucket_delta = 1.0 / 64.0;
};

/// Pass-I label of one QRG node.
struct NodeLabel {
  static constexpr std::uint32_t kNoEdge = 0xffffffffu;

  /// Smallest achievable bottleneck contention index ("distance" under the
  /// max-plus semiring); meaningful only when reachable.
  double value = 0.0;
  bool reachable = false;
  /// Bottleneck resource on the chosen way to realize this node, its
  /// contention index equals `value` unless the bottleneck sits upstream.
  ResourceId bottleneck;
  double alpha = 1.0;
  /// For output nodes: the chosen incoming translation edge.
  std::uint32_t pred_edge = kNoEdge;
};

/// Computes the pass-I label of `v` from the (final) labels of its
/// in-edge predecessors: AND semantics at input nodes, OR semantics with
/// the tie-break rule at output nodes, the zero label at the source.
/// This is the single relaxation step shared by relax_qrg (topological
/// sweep) and parallel_relax_qrg (wavefront sweep) — one definition, so
/// the sequential and parallel planners cannot drift. labels[v] itself
/// is never read; every predecessor's label must already be final.
NodeLabel relax_node(const Qrg& qrg, const PlannerOptions& options,
                     const std::vector<NodeLabel>& labels, std::uint32_t v);

/// Runs pass I over the whole QRG; labels are indexed by QRG node index.
std::vector<NodeLabel> relax_qrg(const Qrg& qrg,
                                 const PlannerOptions& options = {});

/// Heap-based Dijkstra formulation of pass I — the paper's literal
/// presentation ("the shortest path can be computed by running Dijkstra's
/// algorithm on the QRG", §4.1.2). Fan-in input nodes enter the heap once
/// all of their constituents are settled, valued at their maximum.
///
/// Produces exactly the same labels as relax_qrg — values, reachability,
/// predecessor edges, bottleneck resources and alphas — on every QRG
/// (differentially fuzz-tested; see tools/qres_fuzz). Ties between
/// equal-valued candidates resolve by the same secondary ordering as
/// relax_qrg: smaller incoming edge psi (when the tie-break option is on),
/// then the earlier edge index. Provided as a cross-check and for callers
/// who extend the QRG with non-topological node numbering.
std::vector<NodeLabel> dijkstra_qrg(const Qrg& qrg,
                                    const PlannerOptions& options = {});

/// Per-sink diagnostics derived from pass I (used by the tradeoff policy
/// and by the experiment harnesses).
struct SinkInfo {
  LevelIndex level = 0;     ///< sink output level index
  std::size_t rank = 0;     ///< 0 = best end-to-end QoS
  bool reachable = false;
  double psi = 0.0;         ///< bottleneck contention index at this sink
  double alpha = 1.0;       ///< change index of that bottleneck resource
  ResourceId bottleneck;
};

std::vector<SinkInfo> sink_infos(const Qrg& qrg,
                                 const std::vector<NodeLabel>& labels);

/// Extracts the reservation plan reaching `sink_node` (a ranked sink node
/// index of the QRG) from pass-I labels. Returns nullopt when the DAG
/// pass-II heuristic fails to converge (never fails on chains).
std::optional<ReservationPlan> extract_plan(
    const Qrg& qrg, const std::vector<NodeLabel>& labels,
    std::uint32_t sink_node);

/// Enumerates every feasible plan reaching `sink_node`, sorted by
/// ascending bottleneck contention index (the basic algorithm's choice
/// first). Chain services only; at most `max_plans` plans are returned
/// and at most `max_paths` paths are explored (contract violation beyond
/// that — QRGs are small by the paper's §4.2 assumption).
///
/// Rationale: when observations are stale (§5.2.4), the Psi-minimal
/// plan's reservation can fail even though other feasible plans would
/// have succeeded; callers can fall back down this list instead of
/// failing the session (see SessionCoordinator::establish_resilient).
std::vector<ReservationPlan> enumerate_plans(const Qrg& qrg,
                                             std::uint32_t sink_node,
                                             std::size_t max_plans = 16,
                                             std::size_t max_paths = 65536);

/// Result of a planning attempt: the plan (when some sink is reachable and
/// extraction succeeded) plus the per-sink diagnostics.
struct PlanResult {
  std::optional<ReservationPlan> plan;
  std::vector<SinkInfo> sinks;  ///< in end-to-end rank order, best first
};

/// The basic algorithm's sink policy applied to precomputed pass-I
/// labels: pick the best reachable end-to-end rank, extract per §4.3.2
/// with fallback to lower-ranked reachable sinks when the DAG heuristic
/// fails. Shared by BasicPlanner (sequential labels) and ParallelPlanner
/// (wavefront labels), so both produce identical plans from identical
/// labels by construction.
PlanResult basic_plan_from_labels(const Qrg& qrg,
                                  const std::vector<NodeLabel>& labels);

/// Abstract planner interface used by the runtime/simulation layers. The
/// RNG parameter is only consumed by randomized planners.
class IPlanner {
 public:
  virtual ~IPlanner() = default;
  virtual PlanResult plan(const Qrg& qrg, Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// The paper's basic algorithm (§4.1): highest reachable end-to-end QoS,
/// smallest bottleneck contention index among plans achieving it. Exact on
/// chains; uses the §4.3.2 two-pass heuristic on DAGs.
class BasicPlanner final : public IPlanner {
 public:
  explicit BasicPlanner(PlannerOptions options = {}) : options_(options) {}

  PlanResult plan(const Qrg& qrg, Rng& rng) const override;
  std::string name() const override { return "basic"; }

 private:
  PlannerOptions options_;
};

/// The §4.3.1 tradeoff policy: when the availability of the bottleneck
/// resource at the best sink is trending down (alpha < 1), settle for the
/// highest-ranked sink whose bottleneck index is <= alpha * psi(best).
/// Falls back to the best sink when no sink qualifies (the paper leaves
/// this case unspecified).
class TradeoffPlanner final : public IPlanner {
 public:
  explicit TradeoffPlanner(PlannerOptions options = {}) : options_(options) {}

  PlanResult plan(const Qrg& qrg, Rng& rng) const override;
  std::string name() const override { return "tradeoff"; }

 private:
  PlannerOptions options_;
};

}  // namespace qres
