// Discrete-event simulation engine.
//
// A time-ordered queue of closures. Events at equal times run in a
// documented, insertion-order-stable sequence: ties break on ascending
// (lane, within-lane scheduling order). Two events scheduled into the
// same lane run in the order they were scheduled; events in different
// lanes run in ascending lane order regardless of which producer's
// schedule call won the race to the queue mutex. Plain schedule() and
// schedule_in() use lane 0, preserving the historical "ties run in
// scheduling order" behavior exactly.
//
// Threading: schedule / schedule_in / schedule_lane / now / pending /
// empty may be called from any thread (batch admission posts completion
// events from ThreadPool workers); step / run_until / run_all must only
// be called from the single driver thread that owns the simulation. The
// lane mechanism is what keeps multi-producer scheduling deterministic:
// give each producer a pre-assigned lane (batch admission uses
// 1 + arrival slot) and the pop order no longer depends on thread
// interleaving. Actions run outside the queue lock, so an action may
// freely schedule further events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/assert.hpp"

namespace qres {

class EventQueue {
 public:
  /// Current simulation time (the time of the last executed event).
  double now() const {
    MutexLock lock(mutex_);
    return now_;
  }

  /// Schedules `action` at absolute `time` in lane 0; requires
  /// time >= now().
  void schedule(double time, std::function<void()> action) {
    MutexLock lock(mutex_);
    schedule_locked(0, time, std::move(action));
  }

  /// Schedules `action` `delay` time units from now; requires delay >= 0.
  void schedule_in(double delay, std::function<void()> action) {
    QRES_REQUIRE(delay >= 0.0, "EventQueue::schedule_in: negative delay");
    MutexLock lock(mutex_);
    schedule_locked(0, now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute `time` in `lane`. Same-time events
  /// pop in ascending (lane, within-lane scheduling order); lane 0 is
  /// the default lane used by schedule(). Safe to call concurrently from
  /// multiple producer threads.
  void schedule_lane(std::uint32_t lane, double time,
                     std::function<void()> action) {
    MutexLock lock(mutex_);
    schedule_locked(lane, time, std::move(action));
  }

  std::size_t pending() const {
    MutexLock lock(mutex_);
    return heap_.size();
  }
  bool empty() const {
    MutexLock lock(mutex_);
    return heap_.empty();
  }

  /// Executes the earliest event; returns false when the queue is empty.
  /// Driver thread only.
  bool step() {
    std::function<void()> action;
    {
      MutexLock lock(mutex_);
      if (heap_.empty()) return false;
      // Move the action out before popping (top() is const; the
      // comparator heap stores by value).
      Event event = heap_.top();
      heap_.pop();
      now_ = event.time;
      action = std::move(event.action);
    }
    action();
    return true;
  }

  /// Runs events with time <= end_time (inclusive); afterwards now() is
  /// max(now, end_time) and later events remain pending. Driver thread
  /// only.
  void run_until(double end_time) {
    for (;;) {
      std::function<void()> action;
      {
        MutexLock lock(mutex_);
        QRES_REQUIRE(end_time >= now_,
                     "EventQueue::run_until: time in the past");
        if (heap_.empty() || heap_.top().time > end_time) {
          if (now_ < end_time) now_ = end_time;
          return;
        }
        Event event = heap_.top();
        heap_.pop();
        now_ = event.time;
        action = std::move(event.action);
      }
      action();
    }
  }

  /// Runs until no events remain. Driver thread only.
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint32_t lane;
    std::uint64_t seq;  ///< within-lane scheduling order
    std::function<void()> action;
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      if (lane != other.lane) return lane > other.lane;
      return seq > other.seq;
    }
  };

  void schedule_locked(std::uint32_t lane, double time,
                       std::function<void()> action)
      QRES_REQUIRES(mutex_) {
    QRES_REQUIRE(time >= now_, "EventQueue::schedule: time in the past");
    QRES_REQUIRE(action != nullptr, "EventQueue::schedule: null action");
    if (lane >= lane_seq_.size()) lane_seq_.resize(lane + 1, 0);
    heap_.push(Event{time, lane, lane_seq_[lane]++, std::move(action)});
  }

  mutable Mutex mutex_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_
      QRES_GUARDED_BY(mutex_);
  double now_ QRES_GUARDED_BY(mutex_) = 0.0;
  std::vector<std::uint64_t> lane_seq_ QRES_GUARDED_BY(mutex_);
};

}  // namespace qres
