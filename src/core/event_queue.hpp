// Discrete-event simulation engine.
//
// A time-ordered queue of closures. Events at equal times run in
// scheduling order (a monotonic sequence number breaks ties), which keeps
// every simulation fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace qres {

class EventQueue {
 public:
  /// Current simulation time (the time of the last executed event).
  double now() const noexcept { return now_; }

  /// Schedules `action` at absolute `time`; requires time >= now().
  void schedule(double time, std::function<void()> action) {
    QRES_REQUIRE(time >= now_, "EventQueue::schedule: time in the past");
    QRES_REQUIRE(action != nullptr, "EventQueue::schedule: null action");
    heap_.push(Event{time, next_seq_++, std::move(action)});
  }

  /// Schedules `action` `delay` time units from now; requires delay >= 0.
  void schedule_in(double delay, std::function<void()> action) {
    QRES_REQUIRE(delay >= 0.0, "EventQueue::schedule_in: negative delay");
    schedule(now_ + delay, std::move(action));
  }

  std::size_t pending() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  /// Executes the earliest event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Move the action out before popping (top() is const; the comparator
    // heap stores by value).
    Event event = heap_.top();
    heap_.pop();
    now_ = event.time;
    event.action();
    return true;
  }

  /// Runs events with time <= end_time (inclusive); afterwards now() is
  /// max(now, end_time) and later events remain pending.
  void run_until(double end_time) {
    QRES_REQUIRE(end_time >= now_, "EventQueue::run_until: time in the past");
    while (!heap_.empty() && heap_.top().time <= end_time) step();
    if (now_ < end_time) now_ = end_time;
  }

  /// Runs until no events remain.
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> action;
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace qres
