// Distributed services and their Dependency Graphs (paper §2.2, §4.3.2).
//
// A distributed service is a set of collaborating service components whose
// dependency graph is a DAG with a single source component (which consumes
// the original source data) and a single sink component (whose output QoS
// is the end-to-end QoS of the service).
//
// Input-level convention: the input QoS levels of a component are derived
// from its predecessors. For the source component there is exactly one
// input level (index 0): the original quality of the source data. For a
// component with one predecessor, input level i is the predecessor's
// output level i. For a fan-in component with predecessors p_1..p_k
// (ordered by ascending component index), the input levels are the
// row-major flattening of the cross product of the predecessors' output
// levels: combo (l_1, .., l_k) has index
// ((l_1 * |out(p_2)| + l_2) * |out(p_3)| + l_3) * ... . Translation
// functions of fan-in components must follow this convention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/qos.hpp"

namespace qres {

/// Index of a component within a ServiceDefinition.
using ComponentIndex = std::uint32_t;

class ServiceDefinition {
 public:
  /// `edges` are (from, to) component-index pairs of the dependency graph.
  /// `source_quality` is the original quality of the source data (the
  /// single input level of the source component).
  ///
  /// Validates: at least one component, edge indices in range, no
  /// self-loops or duplicate edges, acyclic, exactly one source (in-degree
  /// zero), exactly one sink (out-degree zero), and every component
  /// reachable from the source. Throws ContractViolation otherwise.
  ServiceDefinition(std::string name, std::vector<ServiceComponent> components,
                    std::vector<std::pair<ComponentIndex, ComponentIndex>> edges,
                    QoSVector source_quality);

  const std::string& name() const noexcept { return name_; }

  std::size_t component_count() const noexcept { return components_.size(); }
  const ServiceComponent& component(ComponentIndex index) const;
  ServiceComponent& component(ComponentIndex index);

  const QoSVector& source_quality() const noexcept { return source_quality_; }

  ComponentIndex source() const noexcept { return source_; }
  ComponentIndex sink() const noexcept { return sink_; }

  /// Predecessors in ascending component-index order (the fan-in
  /// concatenation order).
  const std::vector<ComponentIndex>& predecessors(ComponentIndex index) const;
  const std::vector<ComponentIndex>& successors(ComponentIndex index) const;

  /// A topological order of the components (source first, sink last).
  const std::vector<ComponentIndex>& topological_order() const noexcept {
    return topo_order_;
  }

  /// True when the dependency graph is a simple chain (every component has
  /// at most one predecessor and one successor). The basic planner (paper
  /// §4.1) is exact exactly on chains.
  bool is_chain() const noexcept { return is_chain_; }

  /// Number of derived input levels of a component (see the convention in
  /// the file comment).
  std::size_t in_level_count(ComponentIndex index) const;

  /// Decomposes a flat input-level index of `index` into per-predecessor
  /// output-level indices (one per predecessor, in predecessor order).
  /// For the source component the result is empty.
  std::vector<LevelIndex> in_level_combo(ComponentIndex index,
                                         LevelIndex flat) const;

  /// Inverse of in_level_combo.
  LevelIndex flatten_in_level(ComponentIndex index,
                              const std::vector<LevelIndex>& combo) const;

  /// --- End-to-end QoS ranking (paper §4.1.1) -------------------------
  /// The sink's output levels, ranked from best to worst. The paper
  /// assumes end-to-end levels can be linearly ordered (user preference
  /// arbitrates incomparable vectors). Defaults to declaration order of
  /// the sink component's output levels (first = best).
  const std::vector<LevelIndex>& end_to_end_ranking() const noexcept {
    return ranking_;
  }

  /// Replaces the ranking; must be a permutation of the sink's output
  /// level indices.
  void set_end_to_end_ranking(std::vector<LevelIndex> ranking);

  /// Rank position of a sink output level (0 = best). Requires the level
  /// to exist.
  std::size_t rank_of(LevelIndex sink_level) const;

 private:
  std::string name_;
  std::vector<ServiceComponent> components_;
  std::vector<std::vector<ComponentIndex>> preds_;
  std::vector<std::vector<ComponentIndex>> succs_;
  std::vector<ComponentIndex> topo_order_;
  QoSVector source_quality_;
  ComponentIndex source_ = 0;
  ComponentIndex sink_ = 0;
  bool is_chain_ = true;
  std::vector<LevelIndex> ranking_;
};

}  // namespace qres
