// qres-lint: allow(contracts-missing-guard): pure total function (enum to
// string); there is no precondition a guard could check.
#include "core/psi.hpp"

namespace qres {

const char* to_string(PsiKind kind) noexcept {
  switch (kind) {
    case PsiKind::kRatio:
      return "ratio";
    case PsiKind::kHeadroom:
      return "headroom";
    case PsiKind::kLogRatio:
      return "log_ratio";
  }
  return "unknown";
}

}  // namespace qres
