#include "core/psi.hpp"

namespace qres {

const char* to_string(PsiKind kind) noexcept {
  switch (kind) {
    case PsiKind::kRatio:
      return "ratio";
    case PsiKind::kHeadroom:
      return "headroom";
    case PsiKind::kLogRatio:
      return "log_ratio";
  }
  return "unknown";
}

}  // namespace qres
