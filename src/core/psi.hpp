// Contention index definitions (paper §4.1.1, eq. 2 and footnote 2).
//
// The paper defines psi_i = r_i^req / r_i^avail and notes that other
// definitions with the same monotonicity property can be plugged in. We
// provide the paper's definition plus two alternatives exercised by the
// ablation benchmark.
#pragma once

#include <cmath>

#include "util/assert.hpp"

namespace qres {

enum class PsiKind : std::uint8_t {
  /// psi = req / avail (paper eq. 2). Default.
  kRatio,
  /// psi = req / (avail - req + req0), req0 = 1: emphasizes how little
  /// headroom the reservation leaves behind.
  kHeadroom,
  /// psi = -log(1 - req/avail) clamped: log-scale version of the ratio
  /// (same ordering for a single resource, different max-composition
  /// across resources).
  kLogRatio,
};

/// Evaluates the contention index for reserving `req` out of `avail`
/// available units. Requires 0 <= req <= avail and avail > 0.
inline double contention_index(PsiKind kind, double req, double avail) {
  QRES_REQUIRE(avail > 0.0, "contention_index: availability must be positive");
  QRES_REQUIRE(req >= 0.0 && req <= avail,
               "contention_index: requirement must be within availability");
  switch (kind) {
    case PsiKind::kRatio:
      return req / avail;
    case PsiKind::kHeadroom:
      return req / (avail - req + 1.0);
    case PsiKind::kLogRatio: {
      const double ratio = req / avail;
      // Clamp so a full reservation maps to a large-but-finite index.
      constexpr double kMaxRatio = 1.0 - 1e-9;
      return -std::log1p(-(ratio < kMaxRatio ? ratio : kMaxRatio));
    }
  }
  return req / avail;
}

const char* to_string(PsiKind kind) noexcept;

}  // namespace qres
