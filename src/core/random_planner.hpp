// The contention-unaware baseline of the paper's evaluation (§5): among
// all feasible end-to-end reservation plans that achieve the highest
// reachable end-to-end QoS level, pick one uniformly at random instead of
// the bottleneck-minimal one.
//
// On chain services (the paper's evaluation case) uniformity is exact and
// cheap: paths are counted with dynamic programming over the layered QRG
// and sampled backward without materializing the path set. On DAG
// services the feasible embedded graphs achieving the best reachable sink
// are enumerated (bounded by `max_assignments`) and one is drawn
// uniformly.
#pragma once

#include "core/planner.hpp"

namespace qres {

class RandomPlanner final : public IPlanner {
 public:
  explicit RandomPlanner(std::size_t max_assignments = 1u << 20)
      : max_assignments_(max_assignments) {}

  PlanResult plan(const Qrg& qrg, Rng& rng) const override;
  std::string name() const override { return "random"; }

 private:
  PlanResult plan_dag(const Qrg& qrg, Rng& rng) const;

  std::size_t max_assignments_;
};

}  // namespace qres
