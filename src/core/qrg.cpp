#include "core/qrg.hpp"

#include "util/assert.hpp"

namespace qres {

Qrg::Qrg(const ServiceDefinition& service, const AvailabilityView& availability,
         PsiKind psi_kind, double scale)
    : service_(&service), psi_kind_(psi_kind) {
  QRES_REQUIRE(scale > 0.0, "Qrg: requirement scale must be positive");

  node_index_.resize(service.component_count(), {QrgEdge::kNone, QrgEdge::kNone});

  // Create nodes: components in topological order, inputs before outputs,
  // so sequential labels match the paper's figures.
  for (ComponentIndex c : service.topological_order()) {
    const std::size_t in_count = service.in_level_count(c);
    node_index_[c].first = static_cast<std::uint32_t>(nodes_.size());
    for (LevelIndex i = 0; i < in_count; ++i) add_node(c, QrgNodeKind::kIn, i);
    node_index_[c].second = static_cast<std::uint32_t>(nodes_.size());
    const std::size_t out_count = service.component(c).out_level_count();
    for (LevelIndex o = 0; o < out_count; ++o)
      add_node(c, QrgNodeKind::kOut, o);
  }
  source_node_ = node_of(service.source(), QrgNodeKind::kIn, 0);

  // Equivalence edges: one per (input node, predecessor) pair.
  for (ComponentIndex c : service.topological_order()) {
    const auto& preds = service.predecessors(c);
    if (preds.empty()) continue;
    const std::size_t in_count = service.in_level_count(c);
    for (LevelIndex flat = 0; flat < in_count; ++flat) {
      const std::vector<LevelIndex> combo = service.in_level_combo(c, flat);
      for (std::size_t p = 0; p < preds.size(); ++p) {
        QrgEdge edge;
        edge.from = node_of(preds[p], QrgNodeKind::kOut, combo[p]);
        edge.to = node_of(c, QrgNodeKind::kIn, flat);
        edge.is_translation = false;
        add_edge(edge);
      }
    }
  }

  // Translation edges: feasible (input, output) operating points.
  for (ComponentIndex c : service.topological_order()) {
    const ServiceComponent& component = service.component(c);
    const std::size_t in_count = service.in_level_count(c);
    for (LevelIndex in = 0; in < in_count; ++in) {
      for (LevelIndex out = 0; out < component.out_level_count(); ++out) {
        const auto base = component.requirement(in, out);
        if (!base) continue;  // operating point not realizable
        const ResourceVector req = base->scaled(scale);
        double psi = 0.0;
        double alpha = 1.0;
        ResourceId bottleneck;
        bool feasible = true;
        for (const auto& [rid, amount] : req) {
          QRES_REQUIRE(availability.contains(rid),
                       "Qrg: availability snapshot is missing a resource "
                       "referenced by component '" +
                           component.name() + "'");
          const ResourceObservation& obs = availability.get(rid);
          if (amount > obs.available || obs.available <= 0.0) {
            feasible = false;
            break;
          }
          const double index = contention_index(psi_kind_, amount, obs.available);
          if (!bottleneck.valid() || index > psi) {
            psi = index;
            alpha = obs.alpha;
            bottleneck = rid;
          }
        }
        if (!feasible) continue;
        QrgEdge edge;
        edge.from = node_of(c, QrgNodeKind::kIn, in);
        edge.to = node_of(c, QrgNodeKind::kOut, out);
        edge.psi = psi;
        edge.alpha = alpha;
        edge.bottleneck = bottleneck;
        edge.requirement = req;
        edge.is_translation = true;
        add_edge(edge);
      }
    }
  }

  // Sinks, best rank first.
  ranked_sinks_.reserve(service.end_to_end_ranking().size());
  for (LevelIndex level : service.end_to_end_ranking())
    ranked_sinks_.push_back(node_of(service.sink(), QrgNodeKind::kOut, level));
}

std::uint32_t Qrg::add_node(ComponentIndex component, QrgNodeKind kind,
                            LevelIndex level) {
  nodes_.push_back(QrgNode{component, kind, level});
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Qrg::add_edge(QrgEdge edge) {
  const auto index = static_cast<std::uint32_t>(edges_.size());
  in_edges_[edge.to].push_back(index);
  out_edges_[edge.from].push_back(index);
  edges_.push_back(std::move(edge));
}

const QrgNode& Qrg::node(std::uint32_t index) const {
  QRES_REQUIRE(index < nodes_.size(), "Qrg::node: index out of range");
  return nodes_[index];
}

const QrgEdge& Qrg::edge(std::uint32_t index) const {
  QRES_REQUIRE(index < edges_.size(), "Qrg::edge: index out of range");
  return edges_[index];
}

std::uint32_t Qrg::node_of(ComponentIndex component, QrgNodeKind kind,
                           LevelIndex level) const {
  QRES_REQUIRE(component < node_index_.size(),
               "Qrg::node_of: component out of range");
  const auto [in_base, out_base] = node_index_[component];
  if (kind == QrgNodeKind::kIn) {
    QRES_REQUIRE(level < service_->in_level_count(component),
                 "Qrg::node_of: input level out of range");
    return in_base + level;
  }
  QRES_REQUIRE(level < service_->component(component).out_level_count(),
               "Qrg::node_of: output level out of range");
  return out_base + level;
}

const std::vector<std::uint32_t>& Qrg::in_edges(std::uint32_t node) const {
  QRES_REQUIRE(node < in_edges_.size(), "Qrg::in_edges: node out of range");
  return in_edges_[node];
}

const std::vector<std::uint32_t>& Qrg::out_edges(std::uint32_t node) const {
  QRES_REQUIRE(node < out_edges_.size(), "Qrg::out_edges: node out of range");
  return out_edges_[node];
}

std::string Qrg::node_name(std::uint32_t index) const {
  QRES_REQUIRE(index < nodes_.size(), "Qrg::node_name: index out of range");
  return label(index);
}

std::string Qrg::label(std::uint32_t index) {
  // Spreadsheet-style base-26 suffix: a..z, aa, ab, ...
  std::string suffix;
  std::uint32_t n = index;
  for (;;) {
    suffix.insert(suffix.begin(), static_cast<char>('a' + n % 26));
    if (n < 26) break;
    n = n / 26 - 1;
  }
  return "Q" + suffix;
}

std::uint32_t Qrg::find_edge(std::uint32_t from,
                             std::uint32_t to) const noexcept {
  if (from >= nodes_.size() || to >= nodes_.size()) return QrgEdge::kNone;
  for (std::uint32_t e : out_edges_[from])
    if (edges_[e].to == to) return e;
  return QrgEdge::kNone;
}

}  // namespace qres
