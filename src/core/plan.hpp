// End-to-end multi-resource reservation plans (paper §4.1.2).
//
// A plan fixes, for every component of a service session, the input and
// output QoS level and the resulting resource requirement. For a chain
// service a plan is a source-to-sink path in the QRG; for a DAG service it
// is an embedded graph (paper §4.3.2). Either way it reduces to one
// (input level, output level, requirement) step per component.
#pragma once

#include <string>
#include <vector>

#include "core/qrg.hpp"

namespace qres {

struct PlanStep {
  ComponentIndex component = 0;
  /// Flat input-level index (see ServiceDefinition's convention).
  LevelIndex in_level = 0;
  LevelIndex out_level = 0;
  /// The translated (already session-scaled) requirement of this step.
  ResourceVector requirement;
  /// Contention-index weight of this step's translation edge.
  double psi = 0.0;
};

struct ReservationPlan {
  /// One step per component, in topological order (source first).
  std::vector<PlanStep> steps;

  /// The sink output level this plan achieves (the end-to-end QoS), and
  /// its rank (0 = best possible level of the service).
  LevelIndex end_to_end_level = 0;
  std::size_t end_to_end_rank = 0;

  /// Bottleneck of the plan: the highest contention index over the plan's
  /// translation edges (Psi_P / Psi_G, eq. 4/6), the resource attaining
  /// it, and that resource's availability change index.
  double bottleneck_psi = 0.0;
  ResourceId bottleneck_resource;
  double bottleneck_alpha = 1.0;

  /// Sum of all step requirements (what the session reserves in total;
  /// resources appearing in several steps accumulate).
  ResourceVector total_requirement() const;

  /// Paper-style path string, e.g. "Qa-Qb-Qe-Qh-Ql-Qp" (tables 1/2).
  /// Only defined for chain services; requires the QRG the plan was
  /// computed from.
  std::string path_string(const Qrg& qrg) const;
};

/// Same path string computed without a QRG (node labels depend only on the
/// service structure, not on availability). Chain services only.
std::string plan_path_string(const ServiceDefinition& service,
                             const ReservationPlan& plan);

}  // namespace qres
