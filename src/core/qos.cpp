#include "core/qos.hpp"

#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace qres {

QoSSchema::QoSSchema(std::vector<std::string> parameter_names) {
  std::set<std::string> seen;
  for (const auto& name : parameter_names) {
    QRES_REQUIRE(!name.empty(), "QoSSchema: parameter names must be non-empty");
    QRES_REQUIRE(seen.insert(name).second,
                 "QoSSchema: duplicate parameter name '" + name + "'");
  }
  names_ = std::make_shared<const std::vector<std::string>>(
      std::move(parameter_names));
}

const std::string& QoSSchema::name(std::size_t index) const {
  QRES_REQUIRE(names_ && index < names_->size(),
               "QoSSchema::name: index out of range");
  return (*names_)[index];
}

QoSSchema QoSSchema::concatenate(const QoSSchema& a, const QoSSchema& b) {
  std::vector<std::string> names;
  names.reserve(a.size() + b.size());
  std::set<std::string> seen;
  auto push_unique = [&](const std::string& base) {
    std::string candidate = base;
    int suffix = 2;
    while (!seen.insert(candidate).second) {
      candidate = base + "#" + std::to_string(suffix++);
    }
    names.push_back(candidate);
  };
  for (std::size_t i = 0; i < a.size(); ++i) push_unique(a.name(i));
  for (std::size_t i = 0; i < b.size(); ++i) push_unique(b.name(i));
  return QoSSchema(std::move(names));
}

QoSVector::QoSVector(QoSSchema schema, std::vector<double> values)
    : schema_(std::move(schema)), values_(std::move(values)) {
  QRES_REQUIRE(values_.size() == schema_.size(),
               "QoSVector: value count must match schema");
}

double QoSVector::operator[](std::size_t index) const {
  QRES_REQUIRE(index < values_.size(), "QoSVector: index out of range");
  return values_[index];
}

bool QoSVector::all_leq(const QoSVector& other) const {
  QRES_REQUIRE(schema_ == other.schema_,
               "QoSVector::all_leq: schemas must match to compare");
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (values_[i] > other.values_[i]) return false;
  return true;
}

bool QoSVector::incomparable_with(const QoSVector& other) const {
  return !all_leq(other) && !other.all_leq(*this);
}

QoSVector QoSVector::concatenate(const QoSVector& a, const QoSVector& b) {
  std::vector<double> values;
  values.reserve(a.size() + b.size());
  values.insert(values.end(), a.values_.begin(), a.values_.end());
  values.insert(values.end(), b.values_.begin(), b.values_.end());
  return QoSVector(QoSSchema::concatenate(a.schema_, b.schema_),
                   std::move(values));
}

std::string QoSVector::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ", ";
    os << schema_.name(i) << '=' << values_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace qres
