// Service components (paper §2.1-2.2).
//
// A service component is a functional unit of a distributed service. It
// enumerates the output QoS levels it can achieve and carries a
// Translation Function giving the resource cost of producing each output
// level from each input level.
//
// Input levels are not declared by the component itself: per the model, the
// input QoS of a component is *equivalent to* the output QoS of its
// upstream component(s) — for the source component it is the original
// quality of the source data (a single level), and for a fan-in component
// it is the concatenation of all upstream outputs. The ServiceDefinition
// derives them.
#pragma once

#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/qos.hpp"
#include "core/translation.hpp"

namespace qres {

class ServiceComponent {
 public:
  /// `out_levels` enumerates the component's achievable output QoS levels
  /// (all under the same schema); `translate` is the plug-in Translation
  /// Function over (input level index, output level index). `host`
  /// identifies where the component runs (informational for the core
  /// algorithms; used by the proxy/runtime layer).
  ServiceComponent(std::string name, std::vector<QoSVector> out_levels,
                   TranslationFn translate, HostId host = HostId{});

  const std::string& name() const noexcept { return name_; }
  HostId host() const noexcept { return host_; }
  void set_host(HostId host) noexcept { host_ = host; }

  std::size_t out_level_count() const noexcept { return out_levels_.size(); }
  const QoSVector& out_level(LevelIndex index) const;
  const std::vector<QoSVector>& out_levels() const noexcept {
    return out_levels_;
  }

  /// Resource requirement for producing output level `out` from input
  /// level `in`; nullopt when the operating point is not realizable.
  std::optional<ResourceVector> requirement(LevelIndex in,
                                            LevelIndex out) const;

 private:
  std::string name_;
  std::vector<QoSVector> out_levels_;
  TranslationFn translate_;
  HostId host_;
};

}  // namespace qres
