// The QoS-Resource Graph (paper §4.1.1).
//
// A QRG is a snapshot structure built per service session from (a) the
// service's QoS-Resource Model and (b) the current end-to-end resource
// availability. Its nodes are the input/output QoS levels of every
// participating component; its edges are
//   * translation edges (input level -> output level within a component),
//     present iff the translated requirement fits within the current
//     availability, weighted by the contention index of their most
//     contended resource (eq. 2-3); and
//   * equivalence edges (output level of a component -> the matching input
//     level of a downstream component), weight zero.
//
// Input nodes of a fan-in component receive one equivalence edge per
// predecessor and have AND semantics: the node is realized only when every
// constituent upstream output is realized (paper §4.3.2). Input nodes of
// chain components have exactly one incoming equivalence edge, so the
// basic (chain) and DAG cases share one representation.
//
// Nodes are created components-in-topological-order, input levels before
// output levels, and named "Qa", "Qb", ... in creation order — matching
// the labeling of the paper's figures 4/5 and tables 1/2.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/availability.hpp"
#include "core/psi.hpp"
#include "core/service.hpp"

namespace qres {

enum class QrgNodeKind : std::uint8_t { kIn, kOut };

struct QrgNode {
  ComponentIndex component = 0;
  QrgNodeKind kind = QrgNodeKind::kIn;
  /// Output-level index for kOut nodes; flat input-level index for kIn
  /// nodes (see ServiceDefinition's input-level convention).
  LevelIndex level = 0;
};

struct QrgEdge {
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::uint32_t from = kNone;
  std::uint32_t to = kNone;
  /// Contention-index weight Psi (eq. 3); zero for equivalence edges.
  double psi = 0.0;
  /// Availability change index of the edge's bottleneck resource; 1.0 for
  /// equivalence edges.
  double alpha = 1.0;
  /// Resource attaining the max in eq. 3; invalid for equivalence edges.
  ResourceId bottleneck;
  /// The translated requirement R^req; empty for equivalence edges.
  ResourceVector requirement;
  /// True for translation (in->out) edges, false for equivalence edges.
  bool is_translation = false;
};

class Qrg {
 public:
  /// Builds the QRG for one session of `service` under `availability`.
  ///
  /// `scale` multiplies every translated requirement before the
  /// feasibility test (the paper's "fat" sessions reserve N times the base
  /// requirement). Requires every resource referenced by any translation
  /// to be present in `availability` with availability > 0 or the edge is
  /// simply infeasible (availability 0 admits nothing).
  Qrg(const ServiceDefinition& service, const AvailabilityView& availability,
      PsiKind psi_kind = PsiKind::kRatio, double scale = 1.0);

  const ServiceDefinition& service() const noexcept { return *service_; }
  PsiKind psi_kind() const noexcept { return psi_kind_; }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  const QrgNode& node(std::uint32_t index) const;
  const QrgEdge& edge(std::uint32_t index) const;

  /// Index of the single source node (the source component's input level).
  std::uint32_t source_node() const noexcept { return source_node_; }

  /// Node index for a component's input (flat) or output level.
  std::uint32_t node_of(ComponentIndex component, QrgNodeKind kind,
                        LevelIndex level) const;

  /// Sink nodes (the sink component's output levels) in end-to-end QoS
  /// rank order, best first.
  const std::vector<std::uint32_t>& ranked_sink_nodes() const noexcept {
    return ranked_sinks_;
  }

  /// Edge indices entering / leaving a node.
  const std::vector<std::uint32_t>& in_edges(std::uint32_t node) const;
  const std::vector<std::uint32_t>& out_edges(std::uint32_t node) const;

  /// Paper-style node label: "Qa", "Qb", ..., "Qz", "Qaa", ...
  std::string node_name(std::uint32_t index) const;

  /// The pure labeling function behind node_name (index -> "Qa"-style
  /// label, spreadsheet base-26).
  static std::string label(std::uint32_t index);

  /// Index of the translation edge between two nodes, or QrgEdge::kNone.
  std::uint32_t find_edge(std::uint32_t from, std::uint32_t to) const noexcept;

 private:
  std::uint32_t add_node(ComponentIndex component, QrgNodeKind kind,
                         LevelIndex level);
  void add_edge(QrgEdge edge);

  const ServiceDefinition* service_;
  PsiKind psi_kind_;
  std::vector<QrgNode> nodes_;
  std::vector<QrgEdge> edges_;
  std::vector<std::vector<std::uint32_t>> in_edges_;
  std::vector<std::vector<std::uint32_t>> out_edges_;
  /// node_index_[component] -> {first input-node index, first output-node
  /// index}; nodes of one component are contiguous.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> node_index_;
  std::uint32_t source_node_ = 0;
  std::vector<std::uint32_t> ranked_sinks_;
};

}  // namespace qres
