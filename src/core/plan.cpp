#include "core/plan.hpp"

#include "util/assert.hpp"

namespace qres {

ResourceVector ReservationPlan::total_requirement() const {
  ResourceVector total;
  for (const PlanStep& step : steps) total += step.requirement;
  return total;
}

std::string ReservationPlan::path_string(const Qrg& qrg) const {
  const ServiceDefinition& service = qrg.service();
  QRES_REQUIRE(service.is_chain(),
               "ReservationPlan::path_string: chain services only");
  QRES_REQUIRE(steps.size() == service.component_count(),
               "ReservationPlan::path_string: malformed plan");
  // The paper's table 1/2 path form lists, per component, its input node
  // then its output node (the input node of a downstream component is the
  // equivalence twin of the upstream output node).
  std::string path;
  for (const PlanStep& step : steps) {
    if (!path.empty()) path += '-';
    path += qrg.node_name(
        qrg.node_of(step.component, QrgNodeKind::kIn, step.in_level));
    path += '-';
    path += qrg.node_name(
        qrg.node_of(step.component, QrgNodeKind::kOut, step.out_level));
  }
  return path;
}

std::string plan_path_string(const ServiceDefinition& service,
                             const ReservationPlan& plan) {
  QRES_REQUIRE(service.is_chain(), "plan_path_string: chain services only");
  QRES_REQUIRE(plan.steps.size() == service.component_count(),
               "plan_path_string: malformed plan");

  // Reproduce the QRG node numbering (components in topological order,
  // input nodes before output nodes) without building a QRG.
  std::vector<std::uint32_t> in_base(service.component_count());
  std::vector<std::uint32_t> out_base(service.component_count());
  std::uint32_t next = 0;
  for (ComponentIndex c : service.topological_order()) {
    in_base[c] = next;
    next += static_cast<std::uint32_t>(service.in_level_count(c));
    out_base[c] = next;
    next += static_cast<std::uint32_t>(service.component(c).out_level_count());
  }
  auto name_of = [](std::uint32_t index) {
    std::string suffix;
    std::uint32_t n = index;
    for (;;) {
      suffix.insert(suffix.begin(), static_cast<char>('a' + n % 26));
      if (n < 26) break;
      n = n / 26 - 1;
    }
    return "Q" + suffix;
  };

  std::string path;
  for (const PlanStep& step : plan.steps) {
    if (!path.empty()) path += '-';
    path += name_of(in_base[step.component] + step.in_level);
    path += '-';
    path += name_of(out_base[step.component] + step.out_level);
  }
  return path;
}

}  // namespace qres
