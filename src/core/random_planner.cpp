#include "core/random_planner.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

PlanResult RandomPlanner::plan_dag(const Qrg& qrg, Rng& rng) const {
  const ServiceDefinition& service = qrg.service();
  const std::size_t n = service.component_count();
  std::size_t total = 1;
  for (ComponentIndex c = 0; c < n; ++c) {
    total *= service.component(c).out_level_count();
    QRES_REQUIRE(total <= max_assignments_,
                 "RandomPlanner: DAG assignment space too large");
  }

  // Enumerate feasible embedded graphs per sink level (cf.
  // ExhaustivePlanner, but keeping all of them rather than the optimum).
  const std::size_t sink_levels =
      service.component(service.sink()).out_level_count();
  std::vector<std::vector<std::size_t>> feasible(sink_levels);
  std::vector<LevelIndex> assignment(n, 0);
  for (std::size_t iter = 0; iter < total; ++iter) {
    std::size_t rem = iter;
    for (ComponentIndex c = 0; c < n; ++c) {
      const std::size_t base = service.component(c).out_level_count();
      assignment[c] = static_cast<LevelIndex>(rem % base);
      rem /= base;
    }
    bool ok = true;
    for (ComponentIndex c : service.topological_order()) {
      const auto& preds = service.predecessors(c);
      std::vector<LevelIndex> combo(preds.size());
      for (std::size_t j = 0; j < preds.size(); ++j)
        combo[j] = assignment[preds[j]];
      const LevelIndex flat =
          preds.empty() ? 0 : service.flatten_in_level(c, combo);
      if (qrg.find_edge(qrg.node_of(c, QrgNodeKind::kIn, flat),
                        qrg.node_of(c, QrgNodeKind::kOut, assignment[c])) ==
          QrgEdge::kNone) {
        ok = false;
        break;
      }
    }
    if (ok) feasible[assignment[service.sink()]].push_back(iter);
  }

  PlanResult result;
  result.sinks.reserve(sink_levels);
  std::size_t best_rank = sink_levels;
  std::size_t rank = 0;
  for (LevelIndex level : service.end_to_end_ranking()) {
    SinkInfo info;
    info.level = level;
    info.rank = rank;
    info.reachable = !feasible[level].empty();
    if (info.reachable && best_rank == sink_levels) best_rank = rank;
    result.sinks.push_back(info);
    ++rank;
  }
  if (best_rank == sink_levels) return result;

  // Uniform draw among the embedded graphs reaching the best sink.
  const LevelIndex target = service.end_to_end_ranking()[best_rank];
  const auto& pool = feasible[target];
  const std::size_t pick = static_cast<std::size_t>(
      rng.uniform_u64(0, pool.size() - 1));
  std::size_t rem = pool[pick];
  for (ComponentIndex c = 0; c < n; ++c) {
    const std::size_t base = service.component(c).out_level_count();
    assignment[c] = static_cast<LevelIndex>(rem % base);
    rem /= base;
  }
  ReservationPlan plan;
  plan.steps.reserve(n);
  double bottleneck = -1.0;
  for (ComponentIndex c : service.topological_order()) {
    const auto& preds = service.predecessors(c);
    std::vector<LevelIndex> combo(preds.size());
    for (std::size_t j = 0; j < preds.size(); ++j)
      combo[j] = assignment[preds[j]];
    const LevelIndex flat =
        preds.empty() ? 0 : service.flatten_in_level(c, combo);
    const std::uint32_t e =
        qrg.find_edge(qrg.node_of(c, QrgNodeKind::kIn, flat),
                      qrg.node_of(c, QrgNodeKind::kOut, assignment[c]));
    QRES_ASSERT(e != QrgEdge::kNone);
    const QrgEdge& edge = qrg.edge(e);
    plan.steps.push_back(
        PlanStep{c, flat, assignment[c], edge.requirement, edge.psi});
    if (edge.psi > bottleneck) {
      bottleneck = edge.psi;
      plan.bottleneck_resource = edge.bottleneck;
      plan.bottleneck_alpha = edge.alpha;
    }
  }
  plan.bottleneck_psi = bottleneck < 0.0 ? 0.0 : bottleneck;
  plan.end_to_end_level = target;
  plan.end_to_end_rank = best_rank;
  result.plan = std::move(plan);
  return result;
}

PlanResult RandomPlanner::plan(const Qrg& qrg, Rng& rng) const {
  if (!qrg.service().is_chain()) return plan_dag(qrg, rng);
  const auto labels = relax_qrg(qrg);
  auto sinks = sink_infos(qrg, labels);

  std::size_t best = sinks.size();
  for (std::size_t r = 0; r < sinks.size(); ++r)
    if (sinks[r].reachable) {
      best = r;
      break;
    }
  if (best == sinks.size()) return PlanResult{std::nullopt, std::move(sinks)};
  const std::uint32_t sink_node = qrg.ranked_sink_nodes()[best];

  // Count source->node paths; ascending node index is topological.
  std::vector<std::uint64_t> count(qrg.node_count(), 0);
  count[qrg.source_node()] = 1;
  for (std::uint32_t v = 0; v < qrg.node_count(); ++v) {
    if (v == qrg.source_node()) continue;
    std::uint64_t total = 0;
    for (std::uint32_t e : qrg.in_edges(v)) total += count[qrg.edge(e).from];
    count[v] = total;
  }
  QRES_ASSERT(count[sink_node] > 0);

  // Sample a path uniformly by walking backward, picking each incoming
  // edge with probability proportional to its upstream path count.
  ReservationPlan plan;
  plan.steps.resize(qrg.service().component_count());
  double bottleneck_psi = -1.0;
  std::uint32_t v = sink_node;
  while (v != qrg.source_node()) {
    const auto& incoming = qrg.in_edges(v);
    std::vector<double> weights;
    weights.reserve(incoming.size());
    for (std::uint32_t e : incoming)
      weights.push_back(static_cast<double>(count[qrg.edge(e).from]));
    const QrgEdge& edge = qrg.edge(incoming[rng.categorical(weights)]);
    if (edge.is_translation) {
      const QrgNode& out = qrg.node(edge.to);
      const QrgNode& in = qrg.node(edge.from);
      plan.steps[out.component] =
          PlanStep{out.component, in.level, out.level, edge.requirement,
                   edge.psi};
      if (edge.psi > bottleneck_psi) {
        bottleneck_psi = edge.psi;
        plan.bottleneck_resource = edge.bottleneck;
        plan.bottleneck_alpha = edge.alpha;
      }
    }
    v = edge.from;
  }
  // steps were indexed by component; chain topological order may differ
  // from component numbering, so re-order explicitly.
  std::vector<PlanStep> ordered;
  ordered.reserve(plan.steps.size());
  for (ComponentIndex c : qrg.service().topological_order())
    ordered.push_back(plan.steps[c]);
  plan.steps = std::move(ordered);

  plan.bottleneck_psi = bottleneck_psi < 0.0 ? 0.0 : bottleneck_psi;
  plan.end_to_end_level = qrg.node(sink_node).level;
  plan.end_to_end_rank = qrg.service().rank_of(plan.end_to_end_level);
  return PlanResult{std::move(plan), std::move(sinks)};
}

}  // namespace qres
