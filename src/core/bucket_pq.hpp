// Calendar-bucket priority queue for pass-I planner labels.
//
// ψ contention indices are bounded and coarse: under the default
// PsiKind::kRatio a feasible translation edge's ψ is demand/availability
// in (0, 1], and a QRG carries few distinct edge weights (one per
// (requirement, resource) pair, §4.2 keeps QRGs small). A bucket array
// over fixed-width value intervals therefore beats the binary heap in
// dijkstra_qrg: push is O(1) with no percolation, and pop-min scans one
// short bucket instead of walking log n heap levels.
//
// Pop order is EXACTLY the binary heap's: the globally smallest
// (value, node) pair in lexicographic order — value first, then the
// smaller node index among value ties. Duplicate entries (lazy deletion)
// and non-monotone pushes (a node re-pushed with a smaller value after
// the cursor moved past its bucket) are both supported, so dijkstra_qrg
// produces bit-identical labels with either queue; qres_fuzz --mode
// parallel enforces this differentially.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace qres {

class BucketPQ {
 public:
  using Entry = std::pair<double, std::uint32_t>;  ///< (value, node)

  /// `delta` is the bucket width in ψ units. Any positive width is
  /// correct (ordering never depends on it); widths near the spacing of
  /// distinct ψ values keep buckets short. Values at or beyond
  /// delta * kMaxBuckets share the last bucket — still correct, since
  /// pop scans its bucket for the true minimum.
  explicit BucketPQ(double delta = 1.0 / 64.0) : delta_(delta) {
    QRES_REQUIRE(delta > 0.0, "BucketPQ: bucket width must be positive");
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(double value, std::uint32_t node) {
    QRES_REQUIRE(std::isfinite(value) && value >= 0.0,
                 "BucketPQ::push: value must be finite and non-negative");
    const std::size_t b = bucket_of(value);
    if (b >= buckets_.size()) buckets_.resize(b + 1);
    buckets_[b].push_back({value, node});
    if (b < cursor_) cursor_ = b;  // non-monotone push: rewind the cursor
    ++size_;
  }

  /// Removes and returns the smallest (value, node) pair; value ties
  /// break on the smaller node index (the binary heap's exact order).
  Entry pop_min() {
    QRES_REQUIRE(size_ > 0, "BucketPQ::pop_min: empty queue");
    while (buckets_[cursor_].empty()) ++cursor_;
    auto& bucket = buckets_[cursor_];
    std::size_t best = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i)
      if (bucket[i] < bucket[best]) best = i;
    Entry result = bucket[best];
    bucket[best] = bucket.back();
    bucket.pop_back();
    --size_;
    return result;
  }

 private:
  // Buckets are value intervals [b*delta, (b+1)*delta): the index is
  // monotone in the value, which is all cross-bucket ordering needs.
  std::size_t bucket_of(double value) const noexcept {
    const std::size_t b = static_cast<std::size_t>(value / delta_);
    return b < kMaxBuckets ? b : kMaxBuckets - 1;
  }

  static constexpr std::size_t kMaxBuckets = 1u << 16;

  double delta_;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t cursor_ = 0;  ///< no non-empty bucket below this index
  std::size_t size_ = 0;
};

}  // namespace qres
