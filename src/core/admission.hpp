// Admission-governance interface for the establishment entry points.
//
// Overload-aware admission governors are consulted by SessionCoordinator
// (src/proxy) and AsyncEstablisher (src/signal) before any establishment
// work is spent: when the bottleneck contention index says the
// environment is overloaded, doomed establishments are rejected
// immediately (kOverload) instead of churning the brokers with
// plan/reserve/rollback rounds. Implementations live in src/adapt (the
// ContentionMonitor-backed ContentionGovernor); the runtime layers only
// see this interface, so neither qres_signal nor qres_proxy depends on
// qres_adapt.
#pragma once

namespace qres {

class IAdmissionGovernor {
 public:
  virtual ~IAdmissionGovernor() = default;

  /// True when an establishment of priority `priority` (higher = more
  /// important; see adapt::SessionPriority) should be rejected at `now`.
  virtual bool should_reject(double now, int priority) const = 0;
};

}  // namespace qres
