#include "core/service.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace qres {

ServiceDefinition::ServiceDefinition(
    std::string name, std::vector<ServiceComponent> components,
    std::vector<std::pair<ComponentIndex, ComponentIndex>> edges,
    QoSVector source_quality)
    : name_(std::move(name)),
      components_(std::move(components)),
      source_quality_(std::move(source_quality)) {
  QRES_REQUIRE(!name_.empty(), "ServiceDefinition: name must be non-empty");
  QRES_REQUIRE(!components_.empty(),
               "ServiceDefinition: at least one component required");
  const std::size_t n = components_.size();
  preds_.resize(n);
  succs_.resize(n);

  std::set<std::pair<ComponentIndex, ComponentIndex>> seen;
  for (const auto& [from, to] : edges) {
    QRES_REQUIRE(from < n && to < n,
                 "ServiceDefinition: edge endpoint out of range");
    QRES_REQUIRE(from != to, "ServiceDefinition: self-loop edge");
    QRES_REQUIRE(seen.insert({from, to}).second,
                 "ServiceDefinition: duplicate edge");
    succs_[from].push_back(to);
    preds_[to].push_back(from);
  }
  for (auto& p : preds_) std::sort(p.begin(), p.end());
  for (auto& s : succs_) std::sort(s.begin(), s.end());

  // Kahn's algorithm: topological order + acyclicity check.
  std::vector<std::size_t> indegree(n);
  for (std::size_t i = 0; i < n; ++i) indegree[i] = preds_[i].size();
  std::vector<ComponentIndex> frontier;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) frontier.push_back(static_cast<ComponentIndex>(i));
  QRES_REQUIRE(frontier.size() == 1,
               "ServiceDefinition: exactly one source component required");
  source_ = frontier.front();
  topo_order_.reserve(n);
  // Pop the smallest index first for a deterministic order.
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    const ComponentIndex c = frontier.front();
    frontier.erase(frontier.begin());
    topo_order_.push_back(c);
    for (ComponentIndex next : succs_[c])
      if (--indegree[next] == 0) frontier.push_back(next);
  }
  QRES_REQUIRE(topo_order_.size() == n,
               "ServiceDefinition: dependency graph must be acyclic and "
               "connected from the source");

  std::size_t sinks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (succs_[i].empty()) {
      sink_ = static_cast<ComponentIndex>(i);
      ++sinks;
    }
    if (preds_[i].size() > 1 || succs_[i].size() > 1) is_chain_ = false;
  }
  QRES_REQUIRE(sinks == 1,
               "ServiceDefinition: exactly one sink component required");

  ranking_.resize(components_[sink_].out_level_count());
  for (std::size_t i = 0; i < ranking_.size(); ++i)
    ranking_[i] = static_cast<LevelIndex>(i);
}

const ServiceComponent& ServiceDefinition::component(
    ComponentIndex index) const {
  QRES_REQUIRE(index < components_.size(),
               "ServiceDefinition::component: index out of range");
  return components_[index];
}

ServiceComponent& ServiceDefinition::component(ComponentIndex index) {
  QRES_REQUIRE(index < components_.size(),
               "ServiceDefinition::component: index out of range");
  return components_[index];
}

const std::vector<ComponentIndex>& ServiceDefinition::predecessors(
    ComponentIndex index) const {
  QRES_REQUIRE(index < components_.size(),
               "ServiceDefinition::predecessors: index out of range");
  return preds_[index];
}

const std::vector<ComponentIndex>& ServiceDefinition::successors(
    ComponentIndex index) const {
  QRES_REQUIRE(index < components_.size(),
               "ServiceDefinition::successors: index out of range");
  return succs_[index];
}

std::size_t ServiceDefinition::in_level_count(ComponentIndex index) const {
  const auto& preds = predecessors(index);
  if (preds.empty()) return 1;  // the source component: the source quality
  std::size_t count = 1;
  for (ComponentIndex p : preds) count *= components_[p].out_level_count();
  return count;
}

std::vector<LevelIndex> ServiceDefinition::in_level_combo(
    ComponentIndex index, LevelIndex flat) const {
  const auto& preds = predecessors(index);
  QRES_REQUIRE(flat < in_level_count(index),
               "ServiceDefinition::in_level_combo: flat index out of range");
  std::vector<LevelIndex> combo(preds.size());
  // Row-major: the last predecessor varies fastest.
  std::size_t remainder = flat;
  for (std::size_t i = preds.size(); i-- > 0;) {
    const std::size_t base = components_[preds[i]].out_level_count();
    combo[i] = static_cast<LevelIndex>(remainder % base);
    remainder /= base;
  }
  return combo;
}

LevelIndex ServiceDefinition::flatten_in_level(
    ComponentIndex index, const std::vector<LevelIndex>& combo) const {
  const auto& preds = predecessors(index);
  QRES_REQUIRE(combo.size() == preds.size(),
               "ServiceDefinition::flatten_in_level: combo arity mismatch");
  std::size_t flat = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const std::size_t base = components_[preds[i]].out_level_count();
    QRES_REQUIRE(combo[i] < base,
                 "ServiceDefinition::flatten_in_level: level out of range");
    flat = flat * base + combo[i];
  }
  return static_cast<LevelIndex>(flat);
}

void ServiceDefinition::set_end_to_end_ranking(
    std::vector<LevelIndex> ranking) {
  const std::size_t levels = components_[sink_].out_level_count();
  QRES_REQUIRE(ranking.size() == levels,
               "set_end_to_end_ranking: must rank every sink output level");
  std::vector<bool> used(levels, false);
  for (LevelIndex level : ranking) {
    QRES_REQUIRE(level < levels, "set_end_to_end_ranking: level out of range");
    QRES_REQUIRE(!used[level], "set_end_to_end_ranking: duplicate level");
    used[level] = true;
  }
  ranking_ = std::move(ranking);
}

std::size_t ServiceDefinition::rank_of(LevelIndex sink_level) const {
  for (std::size_t i = 0; i < ranking_.size(); ++i)
    if (ranking_[i] == sink_level) return i;
  QRES_REQUIRE(false, "rank_of: unknown sink level");
  return ranking_.size();  // unreachable
}

}  // namespace qres
