// Application-level QoS vectors (paper §2.2).
//
// A QoS vector holds discrete values for a set of named QoS parameters
// (e.g. [Frame_Rate, Image_Size]). Vectors are partially ordered: Qa <= Qb
// iff every parameter of Qa is <= the corresponding parameter of Qb, and
// comparison requires identical schemas (same parameter set).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace qres {

/// The named parameter list shared by a family of QoS vectors. Schemas are
/// immutable and shared (cheap to copy around).
class QoSSchema {
 public:
  QoSSchema() = default;

  /// Builds a schema from parameter names; names must be non-empty and
  /// unique.
  explicit QoSSchema(std::vector<std::string> parameter_names);

  std::size_t size() const noexcept {
    return names_ ? names_->size() : 0;
  }
  bool empty() const noexcept { return size() == 0; }

  /// Parameter name at the given position. Requires index < size().
  const std::string& name(std::size_t index) const;

  /// Two schemas are compatible when they list the same parameters in the
  /// same order (shared-pointer fast path included).
  friend bool operator==(const QoSSchema& a, const QoSSchema& b) {
    if (a.names_ == b.names_) return true;
    if (!a.names_ || !b.names_) return a.size() == b.size() && a.size() == 0;
    return *a.names_ == *b.names_;
  }

  /// Concatenation of two schemas, used for fan-in components whose input
  /// QoS is the concatenation of their upstream components' output QoS
  /// (paper §4.3.2). Duplicate names are disambiguated with a "#k" suffix.
  static QoSSchema concatenate(const QoSSchema& a, const QoSSchema& b);

 private:
  std::shared_ptr<const std::vector<std::string>> names_;
};

/// One QoS operating point: discrete parameter values under a schema.
class QoSVector {
 public:
  QoSVector() = default;

  /// Requires values.size() == schema.size().
  QoSVector(QoSSchema schema, std::vector<double> values);

  const QoSSchema& schema() const noexcept { return schema_; }
  std::size_t size() const noexcept { return values_.size(); }

  /// Value of the index-th parameter. Requires index < size().
  double operator[](std::size_t index) const;

  const std::vector<double>& values() const noexcept { return values_; }

  /// Partial order: true iff schemas match and each value of *this is <=
  /// the corresponding value of other. Throws on schema mismatch.
  bool all_leq(const QoSVector& other) const;

  /// True iff neither all_leq holds in either direction and not equal:
  /// the two operating points are incomparable under the partial order.
  bool incomparable_with(const QoSVector& other) const;

  /// Concatenation (fan-in input QoS). Schemas concatenate likewise.
  static QoSVector concatenate(const QoSVector& a, const QoSVector& b);

  friend bool operator==(const QoSVector& a, const QoSVector& b) {
    return a.schema_ == b.schema_ && a.values_ == b.values_;
  }

  /// Human-readable "[name=value, ...]" form for logs and examples.
  std::string to_string() const;

 private:
  QoSSchema schema_;
  std::vector<double> values_;
};

}  // namespace qres
