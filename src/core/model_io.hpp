// Textual QoS-Resource Model definitions (.qrm).
//
// The paper's architecture stores a service's QoS-Resource Model in the
// main QoSProxy and treats Translation Functions as developer-supplied
// plug-ins (§3). Table-backed translations (the figure-10 form) are pure
// data, so this module gives them a small line-oriented text format that
// can be parsed at runtime — making services deployable without
// recompiling the proxy.
//
// Format (order matters only where noted; '#' starts a comment):
//
//   service  <name>
//   source_param <p1> <p2> ...          # schema of the source data
//   source   <v1> <v2> ...              # original source quality
//   component <name> [host=<n>]         # starts a component block
//     param  <p1> <p2> ...              # output QoS schema
//     out    <v1> <v2> ...              # one line per output level
//     translate <in> <out> <res>=<amt> [<res>=<amt> ...]
//   link <from> <to>                    # dependency edge (component idx)
//   ranking <l0> <l1> ...               # optional end-to-end ranking
//
// Resource names in `translate` lines resolve against the caller's
// ResourceCatalog; unknown names are parse errors (declare brokers
// first). Parse errors throw ModelParseError with a line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/service.hpp"

namespace qres {

class ModelParseError : public std::runtime_error {
 public:
  ModelParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// The parsed, data-only form of a service model. Unlike
/// ServiceDefinition (whose translation functions are opaque callables),
/// a ModelDescription can be written back out (round-trippable).
struct ComponentDescription {
  std::string name;
  HostId host;
  QoSSchema schema;
  std::vector<QoSVector> out_levels;
  TranslationTable table;
};

struct ModelDescription {
  std::string service_name;
  QoSSchema source_schema;
  std::vector<double> source_values;
  std::vector<ComponentDescription> components;
  std::vector<std::pair<ComponentIndex, ComponentIndex>> edges;
  std::vector<LevelIndex> ranking;  ///< empty = declaration order

  /// Instantiates the runtime ServiceDefinition (validates the graph).
  ServiceDefinition instantiate() const;

  /// Every resource referenced by any translation entry (the service's
  /// footprint for availability collection), deduplicated and sorted.
  std::vector<ResourceId> footprint() const;
};

/// Parses a model; resource names resolve against `catalog`.
ModelDescription parse_model(std::istream& input,
                             const ResourceCatalog& catalog);

/// Convenience overload for in-memory text.
ModelDescription parse_model(const std::string& text,
                             const ResourceCatalog& catalog);

/// Writes a model in the same format (parse(write(m)) == m).
void write_model(std::ostream& output, const ModelDescription& model,
                 const ResourceCatalog& catalog);

std::string write_model(const ModelDescription& model,
                        const ResourceCatalog& catalog);

}  // namespace qres
