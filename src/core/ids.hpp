// Strong identifier types used across the library.
//
// Following Core Guidelines (Type.1 / I.4: avoid "naked" ints for distinct
// concepts), resources, hosts and links get distinct, non-convertible id
// types so a link id can never be passed where a resource id is expected.
#pragma once

#include <cstdint>
#include <functional>

namespace qres {

namespace detail {
/// CRTP-free tagged id: a 32-bit index wrapped per-tag.
template <typename Tag>
class TaggedId {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel for "no id"; default-constructed ids are invalid.
  static constexpr underlying_type kInvalid = 0xffffffffu;

  constexpr TaggedId() noexcept = default;
  constexpr explicit TaggedId(underlying_type value) noexcept : value_(value) {}

  constexpr underlying_type value() const noexcept { return value_; }
  constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(TaggedId a, TaggedId b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TaggedId a, TaggedId b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TaggedId a, TaggedId b) noexcept {
    return a.value_ < b.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};
}  // namespace detail

struct ResourceTag {};
struct HostTag {};
struct LinkTag {};
struct SessionTag {};

/// Identifies one reservable resource (a host-local resource or a network
/// link) registered in a ResourceCatalog.
using ResourceId = detail::TaggedId<ResourceTag>;
/// Identifies an end host in a topology.
using HostId = detail::TaggedId<HostTag>;
/// Identifies a physical network link in a topology.
using LinkId = detail::TaggedId<LinkTag>;
/// Identifies one distributed-service session.
using SessionId = detail::TaggedId<SessionTag>;

}  // namespace qres

namespace std {
template <typename Tag>
struct hash<qres::detail::TaggedId<Tag>> {
  size_t operator()(qres::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
