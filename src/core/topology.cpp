#include "core/topology.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace qres {

HostId Topology::add_host(std::string name) {
  QRES_REQUIRE(!name.empty(), "Topology::add_host: empty name");
  hosts_.push_back(Host{std::move(name), {}});
  return HostId{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

LinkId Topology::add_link(std::string name, HostId a, HostId b) {
  QRES_REQUIRE(!name.empty(), "Topology::add_link: empty name");
  QRES_REQUIRE(a.valid() && a.value() < hosts_.size(),
               "Topology::add_link: unknown host a");
  QRES_REQUIRE(b.valid() && b.value() < hosts_.size(),
               "Topology::add_link: unknown host b");
  QRES_REQUIRE(a != b, "Topology::add_link: self-link");
  links_.push_back(Link{std::move(name), a, b});
  const LinkId id{static_cast<std::uint32_t>(links_.size() - 1)};
  hosts_[a.value()].links.push_back(id);
  hosts_[b.value()].links.push_back(id);
  return id;
}

const Topology::Host& Topology::host(HostId id) const {
  QRES_REQUIRE(id.valid() && id.value() < hosts_.size(),
               "Topology: unknown host id");
  return hosts_[id.value()];
}

const Topology::Link& Topology::link(LinkId id) const {
  QRES_REQUIRE(id.valid() && id.value() < links_.size(),
               "Topology: unknown link id");
  return links_[id.value()];
}

const std::string& Topology::host_name(HostId id) const {
  return host(id).name;
}

const std::string& Topology::link_name(LinkId id) const {
  return link(id).name;
}

std::pair<HostId, HostId> Topology::link_endpoints(LinkId id) const {
  const Link& l = link(id);
  return {l.a, l.b};
}

const std::vector<LinkId>& Topology::links_of(HostId id) const {
  return host(id).links;
}

std::vector<LinkId> Topology::route(HostId from, HostId to) const {
  host(from);
  host(to);
  if (from == to) return {};

  // BFS over hosts; neighbors visited in ascending link id order so the
  // chosen shortest route is deterministic.
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> via_link(hosts_.size(), kUnvisited);
  std::vector<std::uint32_t> via_host(hosts_.size(), kUnvisited);
  std::deque<HostId> frontier{from};
  via_host[from.value()] = from.value();
  while (!frontier.empty()) {
    const HostId current = frontier.front();
    frontier.pop_front();
    if (current == to) break;
    std::vector<LinkId> sorted = hosts_[current.value()].links;
    std::sort(sorted.begin(), sorted.end());
    for (LinkId lid : sorted) {
      const Link& l = links_[lid.value()];
      const HostId next = (l.a == current) ? l.b : l.a;
      if (via_host[next.value()] != kUnvisited) continue;
      via_host[next.value()] = current.value();
      via_link[next.value()] = lid.value();
      frontier.push_back(next);
    }
  }
  QRES_REQUIRE(via_host[to.value()] != kUnvisited,
               "Topology::route: hosts are not connected");

  std::vector<LinkId> path;
  for (std::uint32_t h = to.value(); h != from.value(); h = via_host[h])
    path.push_back(LinkId{via_link[h]});
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace qres
