// Multi-queue parallel wavefront relaxation of the QRG (DESIGN.md §11).
//
// The QRG is a layered DAG, so pass I can run as a sequence of
// wavefronts: every node whose in-edges have all drained relaxes in the
// current wavefront, and each wavefront's nodes are independent of one
// another (their predecessors finished in earlier wavefronts). The ready
// set is striped across per-stripe queues (stripe = node index mod
// stripe count); each ThreadPool task owns one stripe, writes labels
// only for its own nodes, and stages newly-drained successors into
// per-(source stripe, target stripe) buffers that the caller merges
// after the barrier. Shared mutable state is exactly one atomic
// in-degree counter per node; everything else is either owned by one
// stripe or published across the parallel_for barrier.
//
// Determinism argument: relax_node(v) is a pure function of the final
// labels of v's predecessors, and an edge u -> v forces u into a
// strictly earlier wavefront than v, so every label a relaxation reads
// was fixed before its wavefront began. Thread count, stripe count and
// scheduling order change only *when* within a wavefront a node relaxes
// — never what it reads — so the labels are bit-identical to relax_qrg
// for every QRG, every pool size, and pool == nullptr. The tie-break
// policy is relax_qrg's own (the shared relax_node applies it), and
// qres_fuzz --mode parallel enforces the equivalence differentially.
#pragma once

#include <cstddef>
#include <vector>

#include "core/planner.hpp"
#include "util/thread_pool.hpp"

namespace qres {

struct ParallelRelaxOptions {
  PlannerOptions planner;
  /// Ready-queue stripes. 0 = automatic (four per pool worker). Labels
  /// never depend on it.
  std::size_t stripes = 0;
  /// Wavefronts narrower than this relax inline on the calling thread:
  /// below it the fan-out/barrier overhead costs more than the
  /// parallelism buys. Labels never depend on it.
  std::size_t min_parallel_nodes = 64;
};

/// Pass I with multi-queue wavefront parallelism. Bit-identical labels
/// to relax_qrg(qrg, options.planner); `pool` may be null (fully inline).
std::vector<NodeLabel> parallel_relax_qrg(
    const Qrg& qrg, ThreadPool* pool,
    const ParallelRelaxOptions& options = {});

/// IPlanner running the basic algorithm's policy on parallel_relax_qrg
/// labels: identical plans to BasicPlanner (both feed
/// basic_plan_from_labels), with pass I spread across `pool`.
class ParallelPlanner final : public IPlanner {
 public:
  explicit ParallelPlanner(ThreadPool* pool,
                           ParallelRelaxOptions options = {})
      : pool_(pool), options_(options) {}

  PlanResult plan(const Qrg& qrg, Rng& rng) const override;
  std::string name() const override { return "parallel"; }

 private:
  ThreadPool* pool_;
  ParallelRelaxOptions options_;
};

}  // namespace qres
