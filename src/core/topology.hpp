// Network topology: hosts connected by bidirectional links, with
// shortest-path (minimum hop count) routing. Used by the scenario layer to
// compose two-level network resources from per-link brokers.
#pragma once

#include <string>
#include <vector>

#include "core/ids.hpp"

namespace qres {

class Topology {
 public:
  HostId add_host(std::string name);
  /// Adds a bidirectional link between two distinct existing hosts.
  LinkId add_link(std::string name, HostId a, HostId b);

  std::size_t host_count() const noexcept { return hosts_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  const std::string& host_name(HostId id) const;
  const std::string& link_name(LinkId id) const;
  std::pair<HostId, HostId> link_endpoints(LinkId id) const;

  /// Minimum-hop route from `from` to `to` as an ordered list of links
  /// (BFS; ties broken by lower link id for determinism). Empty when
  /// from == to. Throws when no route exists.
  std::vector<LinkId> route(HostId from, HostId to) const;

  /// Links incident to a host.
  const std::vector<LinkId>& links_of(HostId id) const;

 private:
  struct Host {
    std::string name;
    std::vector<LinkId> links;
  };
  struct Link {
    std::string name;
    HostId a;
    HostId b;
  };

  const Host& host(HostId id) const;
  const Link& link(LinkId id) const;

  std::vector<Host> hosts_;
  std::vector<Link> links_;
};

}  // namespace qres
