// Control-plane transport abstraction.
//
// The coordination protocols (SessionCoordinator's report/dispatch rounds,
// DistributedSession's forward/backward/reserve passes) exchange RPC-style
// messages between proxy hosts. In the perfect-control-plane model those
// exchanges are implicit; under fault injection they cross a FaultPlane.
// This interface is what the proxy layer sees: qres_proxy cannot depend on
// qres_sim (the dependency runs the other way), so the FaultPlane
// implements IControlTransport and is attached from above.
#pragma once

#include "core/ids.hpp"

namespace qres {

class IControlTransport {
 public:
  virtual ~IControlTransport() = default;

  /// One reliable request/response exchange between two proxy hosts at
  /// simulation time `now` (retries included). Returns the number of
  /// transmissions used when the exchange got through, 0 when the peer
  /// was unreachable (retry budget exhausted or host crashed).
  virtual int exchange(HostId from, HostId to, double now) = 0;

  /// Whether `host` is up at time `t` (outside any scripted crash
  /// window).
  virtual bool reachable(HostId host, double t) const = 0;
};

}  // namespace qres
