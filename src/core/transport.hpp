// Control-plane transport abstraction.
//
// The coordination protocols (SessionCoordinator's report/dispatch rounds,
// DistributedSession's forward/backward/reserve passes) exchange RPC-style
// messages between proxy hosts. In the perfect-control-plane model those
// exchanges are implicit; under fault injection they cross a FaultPlane.
// This interface is what the proxy layer sees: qres_proxy cannot depend on
// qres_sim (the dependency runs the other way), so the FaultPlane
// implements IControlTransport and is attached from above.
//
// Client code does NOT call exchange() directly: every call goes through
// the RPC shim (rpc::RpcChannel), which layers request ids, deadline
// propagation, circuit breakers and per-peer stats on top of this raw
// reliable-exchange primitive (qres_lint rule rpc-direct-exchange pins
// this).
#pragma once

#include <cstdint>

#include "core/ids.hpp"
#include "util/annotations.hpp"

namespace qres {

/// Retransmission policy for reliable sends: the k-th retransmission
/// waits min(timeout * backoff^k, max_timeout) after the previous attempt.
/// When `jitter` > 0, each wait is additionally stretched by a uniform
/// factor in [1, 1 + jitter] drawn from the transport's seeded stream
/// (zero jitter draws nothing, preserving the zero-fault bit-identity
/// contract).
struct RetryPolicy {
  double timeout = 0.5;      ///< timeout before the first retransmission
  double backoff = 2.0;      ///< multiplier per further retransmission
  double max_timeout = 4.0;  ///< cap on the per-attempt timeout
  int max_attempts = 4;      ///< total transmissions before giving up
  double jitter = 0.0;       ///< relative backoff jitter in [0, jitter]
};

/// How one reliable exchange ended. Distinguishes "the retry budget
/// drowned in silent loss" (kTimeout) from "an endpoint or link was down"
/// (kPeerDown) from "the caller's deadline budget ran out before the
/// retry budget did" (kDeadlineExceeded) — three failures the legacy
/// bare-int return collapsed into one 0.
enum class ExchangeStatus : std::uint8_t {
  kOk,                ///< delivered; transmissions says at what cost
  kTimeout,           ///< every attempt lost to drops (silent loss)
  kPeerDown,          ///< an endpoint host or the link was down
  kDeadlineExceeded,  ///< deadline budget exhausted before the retry budget
};

const char* to_string(ExchangeStatus status) noexcept;

/// Typed result of one reliable exchange: status plus the number of
/// transmissions actually spent (>= 1 on success; the attempts burned
/// before giving up on failure).
struct QRES_NODISCARD ExchangeResult {
  ExchangeStatus status = ExchangeStatus::kOk;
  int transmissions = 0;

  bool ok() const noexcept { return status == ExchangeStatus::kOk; }
};

class IControlTransport {
 public:
  virtual ~IControlTransport() = default;

  /// One reliable request/response exchange between two proxy hosts at
  /// simulation time `now` (retries included), under the transport's own
  /// default retry policy.
  virtual ExchangeResult exchange(HostId from, HostId to, double now) = 0;

  /// Like exchange(), but under a caller-supplied retry policy — the RPC
  /// shim truncates the attempt budget to fit the propagated deadline and
  /// passes the result here. The default ignores the policy (a perfect
  /// transport needs no budget).
  virtual ExchangeResult exchange_budgeted(HostId from, HostId to, double now,
                                           const RetryPolicy& policy);

  /// Whether `host` is up at time `t` (outside any scripted crash
  /// window).
  virtual bool reachable(HostId host, double t) const = 0;
};

}  // namespace qres
