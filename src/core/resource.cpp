#include "core/resource.hpp"

#include "util/assert.hpp"

namespace qres {

const char* to_string(ResourceKind kind) noexcept {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kDiskBandwidth:
      return "disk_bw";
    case ResourceKind::kNetworkBandwidth:
      return "net_bw";
    case ResourceKind::kOther:
      return "other";
  }
  return "unknown";
}

void ResourceVector::set(ResourceId id, double amount) {
  QRES_REQUIRE(id.valid(), "ResourceVector::set: invalid resource id");
  QRES_REQUIRE(amount >= 0.0, "ResourceVector::set: negative amount");
  amounts_.insert_or_assign(id, amount);
}

void ResourceVector::add(ResourceId id, double amount) {
  QRES_REQUIRE(id.valid(), "ResourceVector::add: invalid resource id");
  double& slot = amounts_[id];
  slot += amount;
  QRES_REQUIRE(slot >= 0.0, "ResourceVector::add: amount went negative");
}

double ResourceVector::get(ResourceId id) const noexcept {
  auto it = amounts_.find(id);
  return it == amounts_.end() ? 0.0 : it->second;
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& other) {
  for (const auto& [id, amount] : other) add(id, amount);
  return *this;
}

ResourceVector ResourceVector::scaled(double factor) const {
  QRES_REQUIRE(factor >= 0.0, "ResourceVector::scaled: negative factor");
  ResourceVector result;
  for (const auto& [id, amount] : amounts_) result.set(id, amount * factor);
  return result;
}

bool ResourceVector::all_leq(const ResourceVector& other) const noexcept {
  for (const auto& [id, amount] : amounts_)
    if (amount > other.get(id)) return false;
  return true;
}

ResourceId ResourceCatalog::add(std::string name, ResourceKind kind,
                                HostId host) {
  QRES_REQUIRE(!name.empty(), "ResourceCatalog::add: empty name");
  entries_.push_back(Entry{std::move(name), kind, host});
  return ResourceId{static_cast<std::uint32_t>(entries_.size() - 1)};
}

const ResourceCatalog::Entry& ResourceCatalog::entry(ResourceId id) const {
  QRES_REQUIRE(id.valid() && id.value() < entries_.size(),
               "ResourceCatalog: unknown resource id");
  return entries_[id.value()];
}

const std::string& ResourceCatalog::name(ResourceId id) const {
  return entry(id).name;
}

ResourceKind ResourceCatalog::kind(ResourceId id) const {
  return entry(id).kind;
}

HostId ResourceCatalog::host(ResourceId id) const { return entry(id).host; }

std::optional<ResourceId> ResourceCatalog::find(
    const std::string& name) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].name == name)
      return ResourceId{static_cast<std::uint32_t>(i)};
  return std::nullopt;
}

}  // namespace qres
