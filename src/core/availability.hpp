// A snapshot of end-to-end resource availability, as collected by the
// QoSProxies from the Resource Brokers (paper §3, §4.1.1).
#pragma once

#include "core/ids.hpp"
#include "util/flat_map.hpp"

namespace qres {

/// One broker report: current availability r^avail and the Availability
/// Change Index alpha = r^avail / r^avail_avg (paper §4.3.1, eq. 5).
/// Brokers that do not track the change index report alpha = 1.0.
struct ResourceObservation {
  double available = 0.0;
  double alpha = 1.0;
};

/// The per-resource snapshot used to construct a QoS-Resource Graph.
class AvailabilityView {
 public:
  void set(ResourceId id, double available, double alpha = 1.0) {
    QRES_REQUIRE(id.valid(), "AvailabilityView::set: invalid id");
    QRES_REQUIRE(available >= 0.0,
                 "AvailabilityView::set: negative availability");
    QRES_REQUIRE(alpha >= 0.0, "AvailabilityView::set: negative alpha");
    observations_.insert_or_assign(id, ResourceObservation{available, alpha});
  }

  bool contains(ResourceId id) const noexcept {
    return observations_.contains(id);
  }

  /// Requires the resource to be present.
  const ResourceObservation& get(ResourceId id) const {
    return observations_.at(id);
  }

  std::size_t size() const noexcept { return observations_.size(); }
  auto begin() const noexcept { return observations_.begin(); }
  auto end() const noexcept { return observations_.end(); }

 private:
  FlatMap<ResourceId, ResourceObservation> observations_;
};

}  // namespace qres
