#include "core/qrg_dot.hpp"

#include <ostream>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace qres {

namespace {

std::string format_psi(double psi) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", psi);
  return buf;
}

}  // namespace

void write_dot(std::ostream& os, const Qrg& qrg, const DotOptions& options) {
  const ServiceDefinition& service = qrg.service();

  // Nodes / translation edges highlighted by the plan, if any.
  std::set<std::uint32_t> plan_nodes;
  std::set<std::pair<std::uint32_t, std::uint32_t>> plan_edges;
  if (options.plan != nullptr) {
    for (const PlanStep& step : options.plan->steps) {
      QRES_REQUIRE(step.component < service.component_count(),
                   "write_dot: highlighted plan references a component "
                   "outside this QRG's service");
      const std::uint32_t in_node =
          qrg.node_of(step.component, QrgNodeKind::kIn, step.in_level);
      const std::uint32_t out_node =
          qrg.node_of(step.component, QrgNodeKind::kOut, step.out_level);
      plan_nodes.insert(in_node);
      plan_nodes.insert(out_node);
      plan_edges.insert({in_node, out_node});
    }
  }

  os << "digraph qrg {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=circle, fontsize=10];\n"
     << "  label=\""
     << (options.title.empty() ? service.name() : options.title)
     << "\";\n";

  // One cluster per component, in topological order.
  for (ComponentIndex c : service.topological_order()) {
    os << "  subgraph cluster_" << c << " {\n"
       << "    label=\"" << service.component(c).name() << "\";\n"
       << "    style=dashed;\n";
    const std::size_t in_count = service.in_level_count(c);
    for (LevelIndex i = 0; i < in_count; ++i) {
      const std::uint32_t node = qrg.node_of(c, QrgNodeKind::kIn, i);
      os << "    n" << node << " [label=\"" << qrg.node_name(node) << "\"";
      if (plan_nodes.count(node)) os << ", penwidth=2.5";
      os << "];\n";
    }
    for (LevelIndex o = 0; o < service.component(c).out_level_count();
         ++o) {
      const std::uint32_t node = qrg.node_of(c, QrgNodeKind::kOut, o);
      os << "    n" << node << " [label=\"" << qrg.node_name(node)
         << "\", shape=doublecircle";
      if (plan_nodes.count(node)) os << ", penwidth=2.5";
      os << "];\n";
    }
    os << "  }\n";
  }

  // Edges.
  for (std::uint32_t e = 0; e < qrg.edge_count(); ++e) {
    const QrgEdge& edge = qrg.edge(e);
    os << "  n" << edge.from << " -> n" << edge.to;
    std::vector<std::string> attributes;
    if (edge.is_translation) {
      if (options.show_weights)
        attributes.push_back("label=\"" + format_psi(edge.psi) + "\"");
      if (plan_edges.count({edge.from, edge.to}))
        attributes.push_back("penwidth=2.5");
    } else {
      attributes.push_back("style=dotted");
      attributes.push_back("arrowhead=none");
    }
    if (!attributes.empty()) {
      os << " [";
      for (std::size_t i = 0; i < attributes.size(); ++i) {
        if (i) os << ", ";
        os << attributes[i];
      }
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const Qrg& qrg, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, qrg, options);
  return os.str();
}

}  // namespace qres
