#include "core/parallel_planner.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/assert.hpp"

namespace qres {

std::vector<NodeLabel> parallel_relax_qrg(const Qrg& qrg, ThreadPool* pool,
                                          const ParallelRelaxOptions& options) {
  const std::uint32_t n = qrg.node_count();
  std::vector<NodeLabel> labels(n);
  if (n == 0) return labels;

  const std::size_t workers = pool ? pool->worker_count() : 1;
  const std::size_t stripes =
      options.stripes ? options.stripes
                      : std::max<std::size_t>(1, 4 * workers);

  // Remaining undrained in-edges per node; a node joins the wavefront
  // when the last one drains. Atomic because tasks on different stripes
  // drain edges into the same head node concurrently — the only shared
  // mutable state in the sweep.
  std::unique_ptr<std::atomic<std::uint32_t>[]> pending(
      new std::atomic<std::uint32_t>[n]);
  for (std::uint32_t v = 0; v < n; ++v)
    pending[v].store(static_cast<std::uint32_t>(qrg.in_edges(v).size()),
                     std::memory_order_relaxed);

  // Multi-queue ready sets: stripe s owns ready nodes with v % stripes
  // == s. staged[s][t] collects the nodes stripe s's task discovers for
  // stripe t's next wavefront — written by that one task only, read by
  // the caller after the barrier.
  std::vector<std::vector<std::uint32_t>> ready(stripes);
  std::vector<std::vector<std::vector<std::uint32_t>>> staged(
      stripes, std::vector<std::vector<std::uint32_t>>(stripes));
  for (std::uint32_t v = 0; v < n; ++v)
    if (pending[v].load(std::memory_order_relaxed) == 0)
      ready[v % stripes].push_back(v);

  const PlannerOptions& planner = options.planner;
  auto relax_stripe = [&](std::size_t s) {
    for (std::uint32_t v : ready[s]) {
      labels[v] = relax_node(qrg, planner, labels, v);
      for (std::uint32_t e : qrg.out_edges(v)) {
        const std::uint32_t to = qrg.edge(e).to;
        if (pending[to].fetch_sub(1, std::memory_order_acq_rel) == 1)
          staged[s][to % stripes].push_back(to);
      }
    }
  };

  std::size_t processed = 0;
  for (;;) {
    std::size_t front = 0;
    for (const auto& queue : ready) front += queue.size();
    if (front == 0) break;
    processed += front;
    if (pool && front >= options.min_parallel_nodes)
      pool->parallel_for(stripes, relax_stripe, 1);
    else
      for (std::size_t s = 0; s < stripes; ++s) relax_stripe(s);
    // Barrier passed: merge staged discoveries into the next wavefront's
    // ready queues. Source-stripe merge order keeps the queues
    // deterministic, though the labels do not depend on it.
    for (std::size_t t = 0; t < stripes; ++t) {
      ready[t].clear();
      for (std::size_t s = 0; s < stripes; ++s) {
        auto& from = staged[s][t];
        ready[t].insert(ready[t].end(), from.begin(), from.end());
        from.clear();
      }
    }
  }
  QRES_ENSURE(processed == n,
              "parallel_relax_qrg: wavefront sweep did not cover the QRG");
  return labels;
}

PlanResult ParallelPlanner::plan(const Qrg& qrg, Rng& /*rng*/) const {
  return basic_plan_from_labels(qrg, parallel_relax_qrg(qrg, pool_, options_));
}

}  // namespace qres
