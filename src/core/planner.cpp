#include "core/planner.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "core/bucket_pq.hpp"
#include "util/assert.hpp"

namespace qres {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

NodeLabel relax_node(const Qrg& qrg, const PlannerOptions& options,
                     const std::vector<NodeLabel>& labels, std::uint32_t v) {
  NodeLabel label;
  if (v == qrg.source_node()) {
    label.value = 0.0;
    label.reachable = true;
    return label;
  }
  const QrgNode& node = qrg.node(v);
  if (node.kind == QrgNodeKind::kIn) {
    // AND semantics: one incoming equivalence edge per predecessor
    // component; the node is realized when all constituents are, and
    // its value is the max of theirs (§4.3.2 pass I).
    const auto& incoming = qrg.in_edges(v);
    if (incoming.empty()) return label;  // isolated (should not happen)
    double value = 0.0;
    ResourceId bottleneck;
    double alpha = 1.0;
    bool first = true;
    for (std::uint32_t e : incoming) {
      const NodeLabel& up = labels[qrg.edge(e).from];
      if (!up.reachable) return label;
      if (first || up.value > value) {
        value = up.value;
        bottleneck = up.bottleneck;
        alpha = up.alpha;
        first = false;
      }
    }
    label.value = value;
    label.reachable = true;
    label.bottleneck = bottleneck;
    label.alpha = alpha;
  } else {
    // OR semantics over incoming translation edges: pick the
    // predecessor minimizing max(pred value, edge weight); among equal
    // candidates prefer the smaller edge weight (the paper's
    // tie-breaking rule), then the earlier edge (deterministic).
    double best = kInf;
    double best_edge_psi = kInf;
    std::uint32_t best_edge = NodeLabel::kNoEdge;
    for (std::uint32_t e : qrg.in_edges(v)) {
      const QrgEdge& edge = qrg.edge(e);
      const NodeLabel& up = labels[edge.from];
      if (!up.reachable) continue;
      const double candidate = std::max(up.value, edge.psi);
      bool better = candidate < best;
      if (!better && options.use_tie_break && candidate == best)
        better = edge.psi < best_edge_psi;
      if (better) {
        best = candidate;
        best_edge_psi = edge.psi;
        best_edge = e;
      }
    }
    if (best_edge == NodeLabel::kNoEdge) return label;
    const QrgEdge& edge = qrg.edge(best_edge);
    const NodeLabel& up = labels[edge.from];
    label.value = best;
    label.reachable = true;
    label.pred_edge = best_edge;
    if (edge.psi >= up.value) {
      label.bottleneck = edge.bottleneck;
      label.alpha = edge.alpha;
    } else {
      label.bottleneck = up.bottleneck;
      label.alpha = up.alpha;
    }
  }
  return label;
}

std::vector<NodeLabel> relax_qrg(const Qrg& qrg, const PlannerOptions& options) {
  std::vector<NodeLabel> labels(qrg.node_count());

  // Node indices were assigned components-in-topological-order with input
  // nodes before output nodes, so ascending index order is a topological
  // order of the QRG and every predecessor label is final when its
  // successors relax.
  for (std::uint32_t v = 0; v < qrg.node_count(); ++v)
    labels[v] = relax_node(qrg, options, labels, v);
  return labels;
}

namespace {

/// std::priority_queue behind the BucketPQ-shaped interface
/// dijkstra_impl templates over: push(value, node) / empty() /
/// pop_min() returning the lexicographically smallest (value, node).
struct HeapQueue {
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  bool empty() const { return heap.empty(); }
  void push(double value, std::uint32_t node) { heap.push({value, node}); }
  Entry pop_min() {
    Entry top = heap.top();
    heap.pop();
    return top;
  }
};

template <typename Queue>
std::vector<NodeLabel> dijkstra_impl(const Qrg& qrg,
                                     const PlannerOptions& options,
                                     Queue queue) {
  std::vector<NodeLabel> labels(qrg.node_count());
  std::vector<bool> settled(qrg.node_count(), false);
  // Tentative best incoming edge psi per node, for the tie-break rule.
  std::vector<double> tentative_edge_psi(qrg.node_count(), kInf);
  // Equivalence edge whose constituent currently defines an input node's
  // value; ties between equal-valued constituents resolve to the earlier
  // edge, matching relax_qrg's in-edge iteration order.
  std::vector<std::uint32_t> and_edge(qrg.node_count(), QrgEdge::kNone);
  // Input nodes become eligible once every constituent has settled.
  std::vector<std::size_t> waiting(qrg.node_count(), 0);
  for (std::uint32_t v = 0; v < qrg.node_count(); ++v)
    if (qrg.node(v).kind == QrgNodeKind::kIn && v != qrg.source_node())
      waiting[v] = qrg.in_edges(v).size();

  // Min-queue of (value, node) with lazy deletion. Both queue types pop
  // the globally smallest (value, node) pair, so settle order — and with
  // it every label — is identical whichever one drives the loop.
  labels[qrg.source_node()].value = 0.0;
  labels[qrg.source_node()].reachable = true;
  queue.push(0.0, qrg.source_node());

  while (!queue.empty()) {
    const auto [value, u] = queue.pop_min();
    if (settled[u]) continue;
    settled[u] = true;
    for (std::uint32_t e : qrg.out_edges(u)) {
      const QrgEdge& edge = qrg.edge(e);
      const std::uint32_t v = edge.to;
      if (settled[v]) continue;
      NodeLabel& lv = labels[v];
      if (!edge.is_translation) {
        // Equivalence edge into an input node: AND semantics. The node's
        // value accumulates the max over constituents and the node enters
        // the heap once the last constituent has settled.
        const bool first = waiting[v] == qrg.in_edges(v).size();
        if (first || labels[u].value > lv.value ||
            (labels[u].value == lv.value && e < and_edge[v])) {
          lv.value = labels[u].value;
          lv.bottleneck = labels[u].bottleneck;
          lv.alpha = labels[u].alpha;
          and_edge[v] = e;
        }
        if (--waiting[v] == 0) {
          lv.reachable = true;
          queue.push(lv.value, v);
        }
      } else {
        // Translation edge into an output node: standard relaxation under
        // the max-plus semiring, with the paper's tie-break.
        const double candidate = std::max(labels[u].value, edge.psi);
        bool better = !lv.reachable || candidate < lv.value;
        if (!better && candidate == lv.value) {
          // Secondary ordering, identical to relax_qrg's: the paper's
          // smaller-edge-psi rule (when enabled), then the earlier edge.
          // Without the earlier-edge comparison equal-psi predecessors
          // were kept in settle order, which diverged from relax_qrg
          // whenever a later in-edge's tail settled first.
          if (options.use_tie_break && edge.psi != tentative_edge_psi[v])
            better = edge.psi < tentative_edge_psi[v];
          else
            better = e < lv.pred_edge;
        }
        if (!better) continue;
        const bool value_changed = !lv.reachable || candidate != lv.value;
        lv.value = candidate;
        lv.reachable = true;
        lv.pred_edge = e;
        tentative_edge_psi[v] = edge.psi;
        if (edge.psi >= labels[u].value) {
          lv.bottleneck = edge.bottleneck;
          lv.alpha = edge.alpha;
        } else {
          lv.bottleneck = labels[u].bottleneck;
          lv.alpha = labels[u].alpha;
        }
        if (value_changed) queue.push(candidate, v);
      }
    }
  }

  // Input nodes whose constituents never all settled keep their
  // accumulated partial values; reset them to pristine "unreachable".
  for (std::uint32_t v = 0; v < qrg.node_count(); ++v)
    if (waiting[v] > 0) labels[v] = NodeLabel{};
  return labels;
}

}  // namespace

std::vector<NodeLabel> dijkstra_qrg(const Qrg& qrg,
                                    const PlannerOptions& options) {
  if (options.queue == PassQueue::kBucket)
    return dijkstra_impl(qrg, options, BucketPQ(options.bucket_delta));
  return dijkstra_impl(qrg, options, HeapQueue{});
}

std::vector<SinkInfo> sink_infos(const Qrg& qrg,
                                 const std::vector<NodeLabel>& labels) {
  QRES_REQUIRE(labels.size() == qrg.node_count(),
               "sink_infos: labels do not match the QRG");
  std::vector<SinkInfo> infos;
  infos.reserve(qrg.ranked_sink_nodes().size());
  std::size_t rank = 0;
  for (std::uint32_t s : qrg.ranked_sink_nodes()) {
    const NodeLabel& label = labels[s];
    SinkInfo info;
    info.level = qrg.node(s).level;
    info.rank = rank++;
    info.reachable = label.reachable;
    info.psi = label.reachable ? label.value : 0.0;
    info.alpha = label.alpha;
    info.bottleneck = label.bottleneck;
    infos.push_back(info);
  }
  return infos;
}

std::optional<ReservationPlan> extract_plan(
    const Qrg& qrg, const std::vector<NodeLabel>& labels,
    std::uint32_t sink_node) {
  QRES_REQUIRE(labels.size() == qrg.node_count(),
               "extract_plan: labels do not match the QRG");
  QRES_REQUIRE(sink_node < qrg.node_count(),
               "extract_plan: sink node out of range");
  const ServiceDefinition& service = qrg.service();
  const QrgNode& sink = qrg.node(sink_node);
  QRES_REQUIRE(sink.component == service.sink() &&
                   sink.kind == QrgNodeKind::kOut,
               "extract_plan: node is not a sink output node");
  if (!labels[sink_node].reachable) return std::nullopt;

  const std::size_t n = service.component_count();
  constexpr LevelIndex kUnset = 0xffffffffu;
  std::vector<LevelIndex> chosen_out(n, kUnset);
  std::vector<LevelIndex> chosen_in(n, kUnset);
  // Output levels demanded of each component by its already-processed
  // successors: (successor, demanded output level) pairs.
  std::vector<std::vector<std::pair<ComponentIndex, LevelIndex>>> demands(n);

  // Pass II: walk components in reverse topological order (§4.3.2).
  const auto& topo = service.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const ComponentIndex c = *it;

    // 1. Fix this component's output level.
    if (c == service.sink()) {
      chosen_out[c] = sink.level;
    } else {
      QRES_REQUIRE(!demands[c].empty(),
                   "extract_plan: component has no downstream demand");
      bool converged = true;
      for (const auto& [succ, level] : demands[c])
        if (level != demands[c].front().second) converged = false;
      if (converged) {
        chosen_out[c] = demands[c].front().second;
      } else {
        // Non-convergence at a fan-out component: fix the backtracked
        // output levels of the successors and pick the output level of c
        // that reaches all of them with the lowest contention (§4.3.2).
        const std::size_t out_count = service.component(c).out_level_count();
        double best_cost = kInf;
        double best_value = kInf;
        LevelIndex best = kUnset;
        std::vector<LevelIndex> best_succ_in;  // parallel to demands[c]
        std::vector<LevelIndex> succ_in(demands[c].size());
        for (LevelIndex x = 0; x < out_count; ++x) {
          const std::uint32_t out_node =
              qrg.node_of(c, QrgNodeKind::kOut, x);
          if (!labels[out_node].reachable) continue;
          double cost = 0.0;
          bool valid = true;
          for (std::size_t d = 0; d < demands[c].size() && valid; ++d) {
            const ComponentIndex succ = demands[c][d].first;
            // Rebuild the successor's input combo with c's slot set to x.
            auto combo = service.in_level_combo(succ, chosen_in[succ]);
            const auto& preds = service.predecessors(succ);
            for (std::size_t j = 0; j < preds.size(); ++j)
              if (preds[j] == c) combo[j] = x;
            const LevelIndex flat = service.flatten_in_level(succ, combo);
            const std::uint32_t e = qrg.find_edge(
                qrg.node_of(succ, QrgNodeKind::kIn, flat),
                qrg.node_of(succ, QrgNodeKind::kOut, chosen_out[succ]));
            if (e == QrgEdge::kNone) {
              valid = false;
              break;
            }
            cost = std::max(cost, qrg.edge(e).psi);
            succ_in[d] = flat;
          }
          if (!valid) continue;
          const double value = labels[out_node].value;
          if (cost < best_cost ||
              (cost == best_cost && value < best_value)) {
            best_cost = cost;
            best_value = value;
            best = x;
            best_succ_in = succ_in;
          }
        }
        if (best == kUnset) return std::nullopt;  // heuristic failure
        chosen_out[c] = best;
        for (std::size_t d = 0; d < demands[c].size(); ++d)
          chosen_in[demands[c][d].first] = best_succ_in[d];
      }
    }

    // 2. Fix this component's input level via the pass-I predecessor edge.
    const std::uint32_t out_node =
        qrg.node_of(c, QrgNodeKind::kOut, chosen_out[c]);
    const NodeLabel& label = labels[out_node];
    QRES_REQUIRE(label.reachable && label.pred_edge != NodeLabel::kNoEdge,
                 "extract_plan: demanded output level is unreachable");
    chosen_in[c] = qrg.node(qrg.edge(label.pred_edge).from).level;

    // 3. Record the demands this component places on its predecessors.
    const auto& preds = service.predecessors(c);
    if (!preds.empty()) {
      const auto combo = service.in_level_combo(c, chosen_in[c]);
      for (std::size_t j = 0; j < preds.size(); ++j)
        demands[preds[j]].push_back({c, combo[j]});
    }
  }

  // Assemble the plan from the fixed operating points.
  ReservationPlan plan;
  plan.steps.reserve(n);
  double bottleneck_psi = -1.0;
  for (ComponentIndex c : topo) {
    const std::uint32_t e =
        qrg.find_edge(qrg.node_of(c, QrgNodeKind::kIn, chosen_in[c]),
                      qrg.node_of(c, QrgNodeKind::kOut, chosen_out[c]));
    QRES_ENSURE(e != QrgEdge::kNone,
                "extract_plan: assembled plan uses a missing edge");
    const QrgEdge& edge = qrg.edge(e);
    plan.steps.push_back(
        PlanStep{c, chosen_in[c], chosen_out[c], edge.requirement, edge.psi});
    if (edge.psi > bottleneck_psi) {
      bottleneck_psi = edge.psi;
      plan.bottleneck_resource = edge.bottleneck;
      plan.bottleneck_alpha = edge.alpha;
    }
  }
  plan.bottleneck_psi = bottleneck_psi < 0.0 ? 0.0 : bottleneck_psi;
  plan.end_to_end_level = sink.level;
  plan.end_to_end_rank = service.rank_of(sink.level);
  return plan;
}

std::vector<ReservationPlan> enumerate_plans(const Qrg& qrg,
                                             std::uint32_t sink_node,
                                             std::size_t max_plans,
                                             std::size_t max_paths) {
  const ServiceDefinition& service = qrg.service();
  QRES_REQUIRE(service.is_chain(), "enumerate_plans: chain services only");
  QRES_REQUIRE(sink_node < qrg.node_count(),
               "enumerate_plans: sink node out of range");
  const QrgNode& sink = qrg.node(sink_node);
  QRES_REQUIRE(sink.component == service.sink() &&
                   sink.kind == QrgNodeKind::kOut,
               "enumerate_plans: node is not a sink output node");

  // Depth-first backward walk over incoming edges; each complete walk to
  // the source is one plan (the translation edges along it).
  std::vector<ReservationPlan> plans;
  std::vector<const QrgEdge*> stack;  // translation edges, sink-first
  std::size_t paths_explored = 0;

  std::function<void(std::uint32_t)> walk = [&](std::uint32_t node) {
    if (node == qrg.source_node()) {
      ++paths_explored;
      QRES_REQUIRE(paths_explored <= max_paths,
                   "enumerate_plans: path explosion (raise max_paths)");
      ReservationPlan plan;
      plan.steps.reserve(stack.size());
      double bottleneck = -1.0;
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const QrgEdge& edge = **it;
        const QrgNode& out = qrg.node(edge.to);
        const QrgNode& in = qrg.node(edge.from);
        plan.steps.push_back(PlanStep{out.component, in.level, out.level,
                                      edge.requirement, edge.psi});
        if (edge.psi > bottleneck) {
          bottleneck = edge.psi;
          plan.bottleneck_resource = edge.bottleneck;
          plan.bottleneck_alpha = edge.alpha;
        }
      }
      plan.bottleneck_psi = bottleneck < 0.0 ? 0.0 : bottleneck;
      plan.end_to_end_level = sink.level;
      plan.end_to_end_rank = service.rank_of(sink.level);
      plans.push_back(std::move(plan));
      return;
    }
    for (std::uint32_t e : qrg.in_edges(node)) {
      const QrgEdge& edge = qrg.edge(e);
      if (edge.is_translation) stack.push_back(&edge);
      walk(edge.from);
      if (edge.is_translation) stack.pop_back();
    }
  };
  walk(sink_node);

  std::stable_sort(plans.begin(), plans.end(),
                   [](const ReservationPlan& a, const ReservationPlan& b) {
                     return a.bottleneck_psi < b.bottleneck_psi;
                   });
  if (plans.size() > max_plans) plans.resize(max_plans);
  return plans;
}

namespace {

/// Shared tail: extract the plan for `target_rank`, falling back to
/// lower-ranked reachable sinks if the DAG heuristic fails (§4.3.2
/// limitation (1)).
PlanResult finish_plan(const Qrg& qrg, const std::vector<NodeLabel>& labels,
                       std::vector<SinkInfo> sinks, std::size_t target_rank) {
  PlanResult result;
  const auto& ranked = qrg.ranked_sink_nodes();
  for (std::size_t r = target_rank; r < ranked.size(); ++r) {
    if (!sinks[r].reachable) continue;
    if (auto plan = extract_plan(qrg, labels, ranked[r])) {
      result.plan = std::move(plan);
      break;
    }
  }
  result.sinks = std::move(sinks);
  return result;
}

}  // namespace

PlanResult basic_plan_from_labels(const Qrg& qrg,
                                  const std::vector<NodeLabel>& labels) {
  auto sinks = sink_infos(qrg, labels);
  std::size_t best = sinks.size();
  for (std::size_t r = 0; r < sinks.size(); ++r)
    if (sinks[r].reachable) {
      best = r;
      break;
    }
  if (best == sinks.size()) return PlanResult{std::nullopt, std::move(sinks)};
  return finish_plan(qrg, labels, std::move(sinks), best);
}

PlanResult BasicPlanner::plan(const Qrg& qrg, Rng& /*rng*/) const {
  return basic_plan_from_labels(qrg, relax_qrg(qrg, options_));
}

PlanResult TradeoffPlanner::plan(const Qrg& qrg, Rng& /*rng*/) const {
  const auto labels = relax_qrg(qrg, options_);
  auto sinks = sink_infos(qrg, labels);
  std::size_t best = sinks.size();
  for (std::size_t r = 0; r < sinks.size(); ++r)
    if (sinks[r].reachable) {
      best = r;
      break;
    }
  if (best == sinks.size()) return PlanResult{std::nullopt, std::move(sinks)};

  std::size_t target = best;
  const double alpha0 = sinks[best].alpha;
  if (alpha0 < 1.0) {
    // Availability of the bottleneck resource is trending down: settle for
    // the highest-ranked sink whose bottleneck index is <= alpha0 * psi0.
    const double budget = alpha0 * sinks[best].psi;
    std::size_t candidate = sinks.size();
    for (std::size_t r = best; r < sinks.size(); ++r) {
      if (!sinks[r].reachable) continue;
      if (sinks[r].psi <= budget) {
        candidate = r;
        break;
      }
    }
    if (candidate != sinks.size()) target = candidate;
  }
  return finish_plan(qrg, labels, std::move(sinks), target);
}

}  // namespace qres
