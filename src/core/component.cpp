#include "core/component.hpp"

#include "util/assert.hpp"

namespace qres {

ServiceComponent::ServiceComponent(std::string name,
                                   std::vector<QoSVector> out_levels,
                                   TranslationFn translate, HostId host)
    : name_(std::move(name)),
      out_levels_(std::move(out_levels)),
      translate_(std::move(translate)),
      host_(host) {
  QRES_REQUIRE(!name_.empty(), "ServiceComponent: name must be non-empty");
  QRES_REQUIRE(!out_levels_.empty(),
               "ServiceComponent: at least one output QoS level required");
  QRES_REQUIRE(translate_ != nullptr,
               "ServiceComponent: translation function required");
  for (std::size_t i = 1; i < out_levels_.size(); ++i)
    QRES_REQUIRE(out_levels_[i].schema() == out_levels_[0].schema(),
                 "ServiceComponent: output levels must share one schema");
}

const QoSVector& ServiceComponent::out_level(LevelIndex index) const {
  QRES_REQUIRE(index < out_levels_.size(),
               "ServiceComponent::out_level: index out of range");
  return out_levels_[index];
}

std::optional<ResourceVector> ServiceComponent::requirement(
    LevelIndex in, LevelIndex out) const {
  QRES_REQUIRE(out < out_levels_.size(),
               "ServiceComponent::requirement: output index out of range");
  return translate_(in, out);
}

}  // namespace qres
