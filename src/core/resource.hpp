// Resource requirement / availability vectors (paper §2.2, eq. 1) and the
// resource catalog that names them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "util/flat_map.hpp"

namespace qres {

/// Broad class of a reservable resource; informational (brokers and the
/// planner treat all resource types uniformly, as in the paper).
enum class ResourceKind : std::uint8_t {
  kCpu,
  kMemory,
  kDiskBandwidth,
  kNetworkBandwidth,
  kOther,
};

const char* to_string(ResourceKind kind) noexcept;

/// A sparse vector of per-resource amounts. Used both for requirements
/// (R^req) and availabilities (R^avail). Amounts are non-negative.
class ResourceVector {
 public:
  ResourceVector() = default;

  bool empty() const noexcept { return amounts_.empty(); }
  std::size_t size() const noexcept { return amounts_.size(); }

  /// Sets the amount for a resource (overwrites). Requires amount >= 0 and
  /// a valid id.
  void set(ResourceId id, double amount);

  /// Adds to the amount for a resource (creates it at 0 if absent).
  void add(ResourceId id, double amount);

  /// Amount for the resource, or 0 when absent.
  double get(ResourceId id) const noexcept;

  bool contains(ResourceId id) const noexcept { return amounts_.contains(id); }

  auto begin() const noexcept { return amounts_.begin(); }
  auto end() const noexcept { return amounts_.end(); }

  /// Component-wise sum (aggregating plan steps that touch the same
  /// resource).
  ResourceVector& operator+=(const ResourceVector& other);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }

  /// Uniform scaling, used for the paper's "fat" sessions whose
  /// requirement is N times the base requirement. Requires factor >= 0.
  ResourceVector scaled(double factor) const;

  /// Partial order (paper §2.2): every amount of *this is <= the amount of
  /// `other` for the same resource. Resources absent from *this count as 0;
  /// resources present here but absent in `other` compare against 0.
  bool all_leq(const ResourceVector& other) const noexcept;

  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.amounts_ == b.amounts_;
  }

 private:
  FlatMap<ResourceId, double> amounts_;
};

/// Registry mapping resource ids to names/kinds/owning hosts. The catalog
/// is append-only; ids are dense indices into it.
class ResourceCatalog {
 public:
  /// Registers a resource and returns its id. Name must be non-empty.
  ResourceId add(std::string name, ResourceKind kind,
                 HostId host = HostId{});

  std::size_t size() const noexcept { return entries_.size(); }

  const std::string& name(ResourceId id) const;
  ResourceKind kind(ResourceId id) const;
  HostId host(ResourceId id) const;

  /// Finds a resource by name; nullopt when absent.
  std::optional<ResourceId> find(const std::string& name) const noexcept;

 private:
  struct Entry {
    std::string name;
    ResourceKind kind;
    HostId host;
  };
  const Entry& entry(ResourceId id) const;
  std::vector<Entry> entries_;
};

}  // namespace qres
