// Graphviz export of QoS-Resource Graphs.
//
// Renders a QRG — and optionally a computed reservation plan highlighted
// on top of it — in DOT format, reproducing the visual language of the
// paper's figures 4/5/7/8: one cluster per service component, input and
// output QoS-level nodes labeled Qa, Qb, ..., translation edges annotated
// with their contention-index weight, the selected plan drawn bold.
//
//   dot -Tsvg qrg.dot -o qrg.svg
#pragma once

#include <iosfwd>
#include <string>

#include "core/plan.hpp"
#include "core/qrg.hpp"

namespace qres {

struct DotOptions {
  /// Print edge weights (psi) on translation edges.
  bool show_weights = true;
  /// Highlight this plan's nodes and translation edges (optional).
  const ReservationPlan* plan = nullptr;
  /// Graph title; defaults to the service name.
  std::string title;
};

/// Writes the QRG in Graphviz DOT format.
void write_dot(std::ostream& os, const Qrg& qrg,
               const DotOptions& options = {});

std::string to_dot(const Qrg& qrg, const DotOptions& options = {});

}  // namespace qres
