#include "core/model_io.hpp"

#include <algorithm>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace qres {

namespace {

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

double parse_number(const std::string& token, std::size_t line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw ModelParseError(line, "expected a number, got '" + token + "'");
  }
  if (consumed != token.size())
    throw ModelParseError(line, "trailing junk in number '" + token + "'");
  return value;
}

std::uint32_t parse_index(const std::string& token, std::size_t line) {
  const double value = parse_number(token, line);
  if (value < 0 || value != static_cast<std::uint32_t>(value))
    throw ModelParseError(line, "expected a non-negative integer, got '" +
                                    token + "'");
  return static_cast<std::uint32_t>(value);
}

}  // namespace

ServiceDefinition ModelDescription::instantiate() const {
  QRES_REQUIRE(source_schema.size() == source_values.size(),
               "ModelDescription: source arity mismatch");
  std::vector<ServiceComponent> runtime;
  runtime.reserve(components.size());
  for (const ComponentDescription& c : components)
    runtime.emplace_back(c.name, c.out_levels, c.table.as_function(),
                         c.host);
  ServiceDefinition service(service_name, std::move(runtime), edges,
                            QoSVector(source_schema, source_values));
  if (!ranking.empty()) service.set_end_to_end_ranking(ranking);
  return service;
}

std::vector<ResourceId> ModelDescription::footprint() const {
  std::vector<ResourceId> ids;
  for (const ComponentDescription& c : components)
    for (const auto& [key, requirement] : c.table)
      for (const auto& [id, amount] : requirement) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

ModelDescription parse_model(std::istream& input,
                             const ResourceCatalog& catalog) {
  ModelDescription model;
  ComponentDescription* current = nullptr;
  std::vector<std::string> source_params;
  bool have_service = false;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "service") {
      if (tokens.size() != 2)
        throw ModelParseError(line_number, "service expects one name");
      model.service_name = tokens[1];
      have_service = true;
    } else if (keyword == "source_param") {
      if (tokens.size() < 2)
        throw ModelParseError(line_number,
                              "source_param expects parameter names");
      source_params.assign(tokens.begin() + 1, tokens.end());
      model.source_schema = QoSSchema(source_params);
    } else if (keyword == "source") {
      if (model.source_schema.empty())
        throw ModelParseError(line_number,
                              "source before source_param");
      if (tokens.size() - 1 != model.source_schema.size())
        throw ModelParseError(line_number,
                              "source value count does not match "
                              "source_param");
      model.source_values.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i)
        model.source_values.push_back(parse_number(tokens[i], line_number));
    } else if (keyword == "component") {
      if (tokens.size() < 2)
        throw ModelParseError(line_number, "component expects a name");
      ComponentDescription component;
      component.name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].rfind("host=", 0) == 0) {
          component.host =
              HostId{parse_index(tokens[i].substr(5), line_number)};
        } else {
          throw ModelParseError(line_number,
                                "unknown component attribute '" +
                                    tokens[i] + "'");
        }
      }
      model.components.push_back(std::move(component));
      current = &model.components.back();
    } else if (keyword == "param") {
      if (current == nullptr)
        throw ModelParseError(line_number, "param outside a component");
      if (tokens.size() < 2)
        throw ModelParseError(line_number, "param expects names");
      current->schema =
          QoSSchema(std::vector<std::string>(tokens.begin() + 1,
                                             tokens.end()));
    } else if (keyword == "out") {
      if (current == nullptr)
        throw ModelParseError(line_number, "out outside a component");
      if (current->schema.empty())
        throw ModelParseError(line_number, "out before param");
      if (tokens.size() - 1 != current->schema.size())
        throw ModelParseError(line_number,
                              "out value count does not match param");
      std::vector<double> values;
      for (std::size_t i = 1; i < tokens.size(); ++i)
        values.push_back(parse_number(tokens[i], line_number));
      current->out_levels.emplace_back(current->schema, std::move(values));
    } else if (keyword == "translate") {
      if (current == nullptr)
        throw ModelParseError(line_number, "translate outside a component");
      if (tokens.size() < 4)
        throw ModelParseError(
            line_number, "translate expects: in out res=amount ...");
      const LevelIndex in = parse_index(tokens[1], line_number);
      const LevelIndex out = parse_index(tokens[2], line_number);
      ResourceVector requirement;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].rfind('=');
        if (eq == std::string::npos || eq == 0)
          throw ModelParseError(line_number,
                                "expected res=amount, got '" + tokens[i] +
                                    "'");
        const std::string name = tokens[i].substr(0, eq);
        const auto id = catalog.find(name);
        if (!id)
          throw ModelParseError(line_number,
                                "unknown resource '" + name + "'");
        requirement.set(*id,
                        parse_number(tokens[i].substr(eq + 1), line_number));
      }
      current->table.set(in, out, std::move(requirement));
    } else if (keyword == "link") {
      if (tokens.size() != 3)
        throw ModelParseError(line_number, "link expects: from to");
      model.edges.push_back({parse_index(tokens[1], line_number),
                             parse_index(tokens[2], line_number)});
    } else if (keyword == "ranking") {
      if (tokens.size() < 2)
        throw ModelParseError(line_number, "ranking expects level indices");
      model.ranking.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i)
        model.ranking.push_back(parse_index(tokens[i], line_number));
    } else {
      throw ModelParseError(line_number,
                            "unknown keyword '" + keyword + "'");
    }
  }

  if (!have_service) throw ModelParseError(line_number, "missing 'service'");
  if (model.components.empty())
    throw ModelParseError(line_number, "no components defined");
  if (model.source_values.empty())
    throw ModelParseError(line_number, "missing 'source'");
  return model;
}

ModelDescription parse_model(const std::string& text,
                             const ResourceCatalog& catalog) {
  std::istringstream stream(text);
  return parse_model(stream, catalog);
}

void write_model(std::ostream& output, const ModelDescription& model,
                 const ResourceCatalog& catalog) {
  // Round-trip exactness: print doubles with enough digits to recover the
  // same value on parse.
  const auto old_precision = output.precision(
      std::numeric_limits<double>::max_digits10);
  output << "service " << model.service_name << "\n";
  output << "source_param";
  for (std::size_t i = 0; i < model.source_schema.size(); ++i)
    output << ' ' << model.source_schema.name(i);
  output << "\nsource";
  for (double v : model.source_values) output << ' ' << v;
  output << "\n";
  for (const ComponentDescription& c : model.components) {
    output << "\ncomponent " << c.name;
    if (c.host.valid()) output << " host=" << c.host.value();
    output << "\nparam";
    for (std::size_t i = 0; i < c.schema.size(); ++i)
      output << ' ' << c.schema.name(i);
    output << "\n";
    for (const QoSVector& level : c.out_levels) {
      output << "out";
      for (double v : level.values()) output << ' ' << v;
      output << "\n";
    }
    for (const auto& [key, requirement] : c.table) {
      output << "translate " << key.first << ' ' << key.second;
      for (const auto& [id, amount] : requirement)
        output << ' ' << catalog.name(id) << '=' << amount;
      output << "\n";
    }
  }
  output << "\n";
  for (const auto& [from, to] : model.edges)
    output << "link " << from << ' ' << to << "\n";
  if (!model.ranking.empty()) {
    output << "ranking";
    for (LevelIndex level : model.ranking) output << ' ' << level;
    output << "\n";
  }
  output.precision(old_precision);
}

std::string write_model(const ModelDescription& model,
                        const ResourceCatalog& catalog) {
  std::ostringstream stream;
  write_model(stream, model, catalog);
  return stream.str();
}

}  // namespace qres
