// Exhaustive reference planner.
//
// Enumerates every feasible embedded graph (every assignment of one output
// level per component whose induced translation edges all exist in the
// QRG) and returns the plan with the smallest bottleneck contention index
// Psi_G among those achieving the highest reachable end-to-end QoS level.
//
// This is the ground truth the paper's algorithms approximate: on chains
// the basic planner must match it exactly (tested), on DAGs it bounds the
// two-pass heuristic's optimality gap (measured by the DAG ablation
// bench). Exponential in the component count — intended for small
// services and for validation only.
#pragma once

#include "core/planner.hpp"

namespace qres {

class ExhaustivePlanner final : public IPlanner {
 public:
  /// `max_assignments` caps the enumeration (product of output level
  /// counts); construction of a plan for a larger service throws.
  explicit ExhaustivePlanner(std::size_t max_assignments = 1u << 20)
      : max_assignments_(max_assignments) {}

  PlanResult plan(const Qrg& qrg, Rng& rng) const override;
  std::string name() const override { return "exhaustive"; }

 private:
  std::size_t max_assignments_;
};

}  // namespace qres
