// The reservation-environment simulation driver (paper §5.1).
//
// Sessions arrive as a Poisson process; each arrival draws a session
// specification (service instance, traits) from a pluggable session
// source, runs the three-phase establishment through the session's
// coordinator, and — on success — holds the reservations until a departure
// event releases them.
//
// Determinism: everything derives from SimulationConfig::seed; two runs
// with the same configuration and session source produce identical
// statistics.
#pragma once

#include <functional>
#include <string>

#include "proxy/qos_proxy.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"

namespace qres {

/// One sampled session: which service instance it requests (the paper's
/// (service type, client domain) pair resolves to one coordinator), its
/// workload traits, and the histogram group for table-1/2 path recording
/// (empty = do not record).
struct SessionSpec {
  SessionCoordinator* coordinator = nullptr;
  SessionTraits traits;
  std::string path_group;
};

/// Draws the next session at simulation time `now`. The source may keep
/// state (e.g. the paper's dynamically changing service popularity).
using SessionSource = std::function<SessionSpec(Rng& rng, double now)>;

struct SimulationConfig {
  /// Session arrival rate in sessions per time unit (the paper sweeps
  /// 60..240 sessions per 60 TUs, i.e. 1.0..4.0 here).
  double arrival_rate = 1.0;
  /// Arrivals are generated for [0, run_length] (paper: 10800 TUs).
  double run_length = 10800.0;
  std::uint64_t seed = 1;
  /// Maximum observation staleness E (§5.2.4). Each resource of each
  /// establishment is observed U(0, E) time units in the past; 0 =
  /// accurate observations.
  double staleness_max = 0.0;
  /// Record per-session reservation paths (tables 1/2). Costs memory on
  /// long sweeps; disable when not needed.
  bool record_paths = true;
};

class Simulation {
 public:
  Simulation(SessionSource source, const IPlanner* planner,
             SimulationConfig config);

  /// Runs the full simulation and returns the collected statistics.
  SimulationStats run();

 private:
  SessionSource source_;
  const IPlanner* planner_;
  SimulationConfig config_;
};

}  // namespace qres
