#include "sim/stats.hpp"

#include "util/assert.hpp"

namespace qres {

void SimulationStats::record_session(SessionClass session_class, bool success,
                                     double qos_level, bool planning_failed) {
  overall_.record(success);
  per_class_[static_cast<std::size_t>(session_class)].record(success);
  if (success) {
    qos_.add(qos_level);
    qos_per_class_[static_cast<std::size_t>(session_class)].add(qos_level);
  } else if (planning_failed) {
    ++plan_failures_;
  } else {
    ++admission_failures_;
  }
}

void SimulationStats::record_path(const std::string& group,
                                  const std::string& path) {
  ++paths_[group][path];
}

void SimulationStats::record_bottleneck(ResourceId resource) {
  QRES_REQUIRE(resource.valid(), "record_bottleneck: invalid resource");
  ++bottlenecks_[resource.value()];
}

void SimulationStats::merge(const SimulationStats& other) {
  overall_.merge(other.overall_);
  qos_.merge(other.qos_);
  for (std::size_t i = 0; i < kSessionClassCount; ++i) {
    per_class_[i].merge(other.per_class_[i]);
    qos_per_class_[i].merge(other.qos_per_class_[i]);
  }
  plan_failures_ += other.plan_failures_;
  admission_failures_ += other.admission_failures_;
  for (const auto& [group, histogram] : other.paths_)
    for (const auto& [path, count] : histogram) paths_[group][path] += count;
  for (const auto& [resource, count] : other.bottlenecks_)
    bottlenecks_[resource] += count;
}

}  // namespace qres
