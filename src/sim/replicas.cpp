#include "sim/replicas.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qres {

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64 over (base, index) gives well-separated streams.
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(state);
}

SimulationStats run_replicas(
    std::size_t count, std::uint64_t base_seed,
    const std::function<SimulationStats(std::uint64_t, std::size_t)>& run_one,
    ThreadPool* pool) {
  QRES_REQUIRE(count > 0, "run_replicas: at least one replica required");
  QRES_REQUIRE(run_one != nullptr, "run_replicas: null replica function");
  std::vector<SimulationStats> results(count);
  if (pool != nullptr) {
    pool->parallel_for(count, [&](std::size_t i) {
      results[i] = run_one(replica_seed(base_seed, i), i);
    });
  } else {
    for (std::size_t i = 0; i < count; ++i)
      results[i] = run_one(replica_seed(base_seed, i), i);
  }
  SimulationStats merged;
  for (const SimulationStats& r : results) merged.merge(r);
  return merged;
}

}  // namespace qres
