#include "sim/failover.hpp"

#include "util/assert.hpp"

namespace qres {

FailoverCoordinator::FailoverCoordinator(BrokerRegistry* registry,
                                         ReplicationDirectory* directory,
                                         HostId coordinator_host,
                                         FailoverConfig config)
    : registry_(registry),
      directory_(directory),
      coordinator_host_(coordinator_host),
      config_(config) {
  QRES_REQUIRE(registry != nullptr && directory != nullptr,
               "FailoverCoordinator: null registry/directory");
  QRES_REQUIRE(config_.miss_threshold >= 1,
               "FailoverCoordinator: miss_threshold must be >= 1");
}

void FailoverCoordinator::watch(ResourceId resource) {
  ReplicatedBroker* rep = registry_->replicated(resource);
  QRES_REQUIRE(rep != nullptr,
               "FailoverCoordinator::watch: not a replicated resource");
  watches_.push_back(Watch{resource, 0});
  directory_->update(resource, rep->epoch(), rep->primary_host());
}

void FailoverCoordinator::attach_channel(rpc::RpcChannel* channel,
                                         rpc::ReplicationLink* link) {
  channel_ = channel;
  link_ = link;
}

int FailoverCoordinator::misses(ResourceId resource) const {
  for (const Watch& w : watches_)
    if (w.resource == resource) return w.misses;
  return 0;
}

bool FailoverCoordinator::primary_alive(const ReplicatedBroker& rep,
                                        double now) {
  // A crashed primary process shows as an invalid primary host before
  // any network probe; the ping then covers the network path (and its
  // verdict goes through the channel's breaker like every other call).
  const HostId primary = rep.primary_host();
  if (!primary.valid()) return false;
  if (channel_ == nullptr) return true;
  return channel_->ping(coordinator_host_, primary, now).ok();
}

void FailoverCoordinator::tick(double now) {
  for (Watch& watch : watches_) {
    ReplicatedBroker* rep = registry_->replicated(watch.resource);
    QRES_REQUIRE(rep != nullptr, "FailoverCoordinator: group disappeared");
    ++stats_.heartbeats;
    if (primary_alive(*rep, now)) {
      watch.misses = 0;
      // Keep the directory fresh: a promotion someone else performed
      // (a second coordinator, a test) still re-homes our clients.
      directory_->update(watch.resource, rep->epoch(), rep->primary_host());
      continue;
    }
    ++stats_.missed;
    if (++watch.misses < config_.miss_threshold) continue;
    fail_over(watch, *rep, now);
  }
}

void FailoverCoordinator::fail_over(Watch& watch, ReplicatedBroker& rep,
                                    double now) {
  // Most-caught-up up standby; ties break toward the earliest host in
  // group order so racing coordinators converge on the same candidate.
  HostId candidate;
  std::uint64_t best = 0;
  for (HostId host : rep.hosts()) {
    if (rep.role_of(host) != ReplicaRole::kStandby || !rep.replica_up(host))
      continue;
    const std::uint64_t mark = rep.watermark_of(host);
    if (!candidate.valid() || mark > best) {
      candidate = host;
      best = mark;
    }
  }
  if (!candidate.valid()) {
    // Headless and nothing to promote: keep counting misses; a standby
    // restart (journal recovery) makes a later tick succeed.
    ++stats_.no_candidate;
    return;
  }
  const std::uint64_t new_epoch = rep.next_epoch();
  if (link_ != nullptr) {
    const std::optional<rpc::PromoteReply> reply = link_->send_promote(
        coordinator_host_, candidate, watch.resource, new_epoch, now);
    if (!reply.has_value()) {
      ++stats_.promote_lost;  // retried on the next tick
      return;
    }
    if (reply->code != rpc::RpcCode::kOk) {
      ++stats_.promote_refused;  // raced a newer epoch; re-observe
      watch.misses = 0;
      return;
    }
  } else {
    if (!rep.promote(candidate, new_epoch, now)) {
      ++stats_.promote_refused;
      watch.misses = 0;
      return;
    }
  }
  watch.misses = 0;
  ++stats_.failovers;
  directory_->update(watch.resource, rep.epoch(), rep.primary_host());
  if (listener_) listener_(watch.resource, candidate, rep.epoch(), now);
}

}  // namespace qres
