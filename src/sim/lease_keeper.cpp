#include "sim/lease_keeper.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

LeaseKeeper::LeaseKeeper(EventQueue* queue, BrokerRegistry* registry,
                         LeaseConfig config)
    : queue_(queue), registry_(registry), config_(config) {
  QRES_REQUIRE(queue != nullptr, "LeaseKeeper: null event queue");
  QRES_REQUIRE(registry != nullptr, "LeaseKeeper: null registry");
  QRES_REQUIRE(config_.renew_period > 0.0 &&
                   config_.lease > config_.renew_period,
               "LeaseKeeper: lease must exceed the renew period");
}

void LeaseKeeper::manage(SessionId session, HostId owner,
                         std::vector<ResourceId> resources) {
  QRES_REQUIRE(session.valid(), "LeaseKeeper::manage: invalid session");
  QRES_REQUIRE(!resources.empty(),
               "LeaseKeeper::manage: nothing to manage");
  Entry entry;
  entry.owner = owner;
  entry.resources = std::move(resources);
  entry.epoch = next_epoch_++;
  const std::uint64_t epoch = entry.epoch;
  sessions_.insert_or_assign(session, std::move(entry));
  schedule_renewals(session, epoch);
}

void LeaseKeeper::forget(SessionId session) { sessions_.erase(session); }

void LeaseKeeper::schedule_renewals(SessionId session, std::uint64_t epoch) {
  queue_->schedule_in(config_.renew_period, [this, session, epoch] {
    renewal_tick(session, epoch);
  });
}

void LeaseKeeper::renewal_tick(SessionId session, std::uint64_t epoch) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.epoch != epoch) return;
  const double now = queue_->now();
  // Copy: the expiry sweep below may erase entries and invalidate `it`.
  const Entry entry = it->second;

  bool lost = false;
  if (faults_ != nullptr && entry.owner.valid() &&
      !faults_->host_up(entry.owner, now)) {
    // The owning proxy is crashed: no renewals go out this period. The
    // loop keeps ticking — the host may come back before the lease runs
    // out, and if it does not, the renewals below start failing.
  } else {
    for (ResourceId resource : entry.resources) {
      IBroker& broker = registry_->broker(resource);
      // A down broker is unavailable, not a refusal: the journal restores
      // its leases at restart with a grace window, and reconciliation —
      // not the keeper — decides the session's fate there.
      if (!broker.up()) continue;
      if (!broker.renew_lease(now, session, config_.lease)) lost = true;
    }
  }

  // Sweep the session's brokers so expiry happens on schedule even when
  // no admission decision would trigger the lazy path. Any session the
  // sweep reclaims (this one or another sharing the brokers) is reported.
  std::vector<SessionId> expired;
  for (ResourceId resource : entry.resources) {
    IBroker& broker = registry_->broker(resource);
    if (broker.up()) broker.expire_due(now, &expired);
  }
  std::sort(expired.begin(), expired.end(),
            [](SessionId a, SessionId b) { return a.value() < b.value(); });
  expired.erase(std::unique(expired.begin(), expired.end()),
                expired.end());
  for (SessionId gone : expired) {
    if (gone == session) lost = true;
    if (sessions_.erase(gone) && expiry_listener_ && gone != session)
      expiry_listener_(gone);
  }

  if (lost) {
    // Some broker no longer honors this session's lease: the holdings
    // (wherever they survived) are released to keep accounting whole,
    // and the session leaves management.
    for (ResourceId resource : entry.resources)
      registry_->broker(resource).release(now, session);
    sessions_.erase(session);
    if (expiry_listener_) expiry_listener_(session);
    return;
  }
  schedule_renewals(session, epoch);
}

}  // namespace qres
