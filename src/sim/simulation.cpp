#include "sim/simulation.hpp"

#include <memory>

#include "core/event_queue.hpp"
#include "util/assert.hpp"

namespace qres {

Simulation::Simulation(SessionSource source, const IPlanner* planner,
                       SimulationConfig config)
    : source_(std::move(source)), planner_(planner), config_(config) {
  QRES_REQUIRE(source_ != nullptr, "Simulation: null session source");
  QRES_REQUIRE(planner_ != nullptr, "Simulation: null planner");
  QRES_REQUIRE(config_.arrival_rate > 0.0,
               "Simulation: arrival rate must be positive");
  QRES_REQUIRE(config_.run_length > 0.0,
               "Simulation: run length must be positive");
  QRES_REQUIRE(config_.staleness_max >= 0.0,
               "Simulation: negative staleness");
}

SimulationStats Simulation::run() {
  SimulationStats stats;
  EventQueue queue;
  Rng rng(config_.seed);
  std::uint32_t next_session = 0;

  // The arrival closure reschedules itself until run_length.
  std::function<void()> arrival = [&] {
    const double now = queue.now();

    const SessionSpec spec = source_(rng, now);
    QRES_ASSERT(spec.coordinator != nullptr);
    const SessionId session{next_session++};

    // Observation staleness (§5.2.4): each resource may have been observed
    // up to E time units ago, independently.
    std::function<double(ResourceId)> staleness;
    if (config_.staleness_max > 0.0) {
      staleness = [&rng, this](ResourceId) {
        return rng.uniform(0.0, config_.staleness_max);
      };
    }

    EstablishResult result = spec.coordinator->establish(
        session, now, *planner_, rng, spec.traits.scale, staleness);

    const std::size_t level_count =
        spec.coordinator->service().end_to_end_ranking().size();
    const double qos_level =
        result.plan ? static_cast<double>(level_count -
                                          result.plan->end_to_end_rank)
                    : 0.0;
    stats.record_session(spec.traits.session_class(), result.success,
                         qos_level, !result.plan.has_value());
    if (result.plan) {
      if (result.plan->bottleneck_resource.valid())
        stats.record_bottleneck(result.plan->bottleneck_resource);
      if (result.success && config_.record_paths && !spec.path_group.empty())
        stats.record_path(spec.path_group,
                          plan_path_string(spec.coordinator->service(),
                                           *result.plan));
    }

    if (result.success) {
      // Hold the reservations until departure.
      auto holdings = std::make_shared<
          std::vector<std::pair<ResourceId, double>>>(
          std::move(result.holdings));
      SessionCoordinator* coordinator = spec.coordinator;
      queue.schedule_in(spec.traits.duration,
                        [holdings, coordinator, session, &queue] {
                          coordinator->teardown(*holdings, session,
                                                queue.now());
                        });
    }

    const double next_time = now + rng.exponential(config_.arrival_rate);
    if (next_time <= config_.run_length) queue.schedule(next_time, arrival);
  };

  queue.schedule(rng.exponential(config_.arrival_rate), arrival);
  queue.run_all();
  return stats;
}

}  // namespace qres
