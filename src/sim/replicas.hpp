// Parallel multi-replica experiment runner.
//
// Experiments average several independent simulation replicas. Replicas
// are embarrassingly parallel: each gets a deterministically derived seed
// and an output slot indexed by replica number, and results are merged in
// index order — so the aggregate is bit-identical regardless of how many
// worker threads execute the replicas.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/stats.hpp"
#include "util/thread_pool.hpp"

namespace qres {

/// Derives the seed for replica `index` from `base_seed`.
std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t index);

/// Runs `count` replicas of `run_one(seed, index)` and merges their
/// statistics in index order. Uses `pool` when provided, otherwise runs
/// sequentially.
SimulationStats run_replicas(
    std::size_t count, std::uint64_t base_seed,
    const std::function<SimulationStats(std::uint64_t, std::size_t)>& run_one,
    ThreadPool* pool = nullptr);

}  // namespace qres
