// Failover coordinator: lease-style liveness detection over replicated
// broker groups and standby promotion (DESIGN.md §14).
//
// The BrokerSupervisor makes crashes *happen*; this coordinator makes
// the world survive them. Each tick it heartbeats every watched group's
// primary — through the RpcChannel when one is attached, so heartbeats
// share the channel's per-peer circuit breakers and fault plane, exactly
// like any other control message — and after `miss_threshold`
// consecutive misses declares the primary dead and fails over:
//
//   1. candidate selection: the most-caught-up *up* standby (largest
//      replication watermark; ties break toward the earliest host in the
//      group's host order, so two coordinators racing the same
//      observation pick the same candidate);
//   2. promotion under epoch = group.next_epoch(): via a typed
//      PromoteRequest frame when a ReplicationLink is attached (the ack
//      may be lost — the next tick retries; the receiver answers kOk for
//      an epoch already in force so a lost ack cannot wedge the group),
//      else by calling ReplicatedBroker::promote in-process;
//   3. re-homing: the ReplicationDirectory learns the new primary and
//      epoch, so SessionCoordinator dispatches route there and stale
//      clients are bounced kNotPrimary with the same hint; the
//      on_failover hook is where session reconciliation
//      (SessionCoordinator::reconcile_broker) and the service's replay
//      cache rebuild (BrokerService::rebuild_dedup) start.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "broker/registry.hpp"
#include "broker/replication.hpp"
#include "rpc/channel.hpp"
#include "rpc/replication_link.hpp"

namespace qres {

struct FailoverConfig {
  /// Consecutive missed heartbeats before a primary is declared dead.
  /// (The heartbeat cadence itself is whoever calls tick() — the sim
  /// schedules ticks on its event queue.)
  int miss_threshold = 3;
};

class FailoverCoordinator {
 public:
  FailoverCoordinator(BrokerRegistry* registry,
                      ReplicationDirectory* directory, HostId coordinator_host,
                      FailoverConfig config = {});

  /// Watches `resource` (must name a replicated group). Seeds the
  /// directory with the group's current primary and epoch.
  void watch(ResourceId resource);

  /// Routes heartbeats through `channel` (ping, breakers, fault plane)
  /// and promotions through `link` as typed PromoteRequest frames.
  /// Without this, liveness is observed in-process and promote() is a
  /// direct call.
  void attach_channel(rpc::RpcChannel* channel, rpc::ReplicationLink* link);

  /// One heartbeat round at `now` across every watched group.
  void tick(double now);

  /// Fires after each completed failover (promotion acked, directory
  /// updated): (resource, new primary, new epoch, now). Reconciliation
  /// and dedup rebuild hang off this.
  using FailoverListener =
      std::function<void(ResourceId, HostId, std::uint64_t, double)>;
  void on_failover(FailoverListener listener) {
    listener_ = std::move(listener);
  }

  struct Stats {
    std::uint64_t heartbeats = 0;        ///< primary probes sent
    std::uint64_t missed = 0;            ///< probes that found no live primary
    std::uint64_t failovers = 0;         ///< completed promotions
    std::uint64_t promote_lost = 0;      ///< promotion RPCs with no usable ack
    std::uint64_t promote_refused = 0;   ///< promotions answered kNotPrimary
    std::uint64_t no_candidate = 0;      ///< dead primary, no up standby
  };
  const Stats& stats() const noexcept { return stats_; }

  int misses(ResourceId resource) const;

 private:
  struct Watch {
    ResourceId resource;
    int misses = 0;
  };

  bool primary_alive(const ReplicatedBroker& rep, double now);
  void fail_over(Watch& watch, ReplicatedBroker& rep, double now);

  BrokerRegistry* registry_;
  ReplicationDirectory* directory_;
  HostId coordinator_host_;
  FailoverConfig config_;
  rpc::RpcChannel* channel_ = nullptr;
  rpc::ReplicationLink* link_ = nullptr;
  std::vector<Watch> watches_;
  FailoverListener listener_;
  Stats stats_;
};

}  // namespace qres
