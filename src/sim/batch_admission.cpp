#include "sim/batch_admission.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace qres {

namespace {

void accumulate(CoordinationStats* into, const CoordinationStats& from) {
  into->participating_proxies += from.participating_proxies;
  into->availability_messages += from.availability_messages;
  into->dispatch_messages += from.dispatch_messages;
  into->reservations_attempted += from.reservations_attempted;
  into->reservations_rolled_back += from.reservations_rolled_back;
  into->retransmissions += from.retransmissions;
  into->unreachable_proxies += from.unreachable_proxies;
  into->replans += from.replans;
}

}  // namespace

std::vector<EstablishResult> establish_batch(
    const std::vector<BatchRequest>& requests, double now,
    const IPlanner& planner, Rng& rng, const BatchOptions& options) {
  std::vector<EstablishResult> results(requests.size());
  if (requests.empty()) return results;

  // Phase 1 (sequential, arrival order): snapshots mutate world state —
  // broker observations advance alpha history and polling spends RPC
  // rounds — so their order is part of the determinism contract. The
  // per-request seeds are drawn here, in arrival order, for the same
  // reason.
  std::vector<SessionCoordinator::PlanningSnapshot> snapshots;
  snapshots.reserve(requests.size());
  std::vector<std::uint64_t> seeds(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const BatchRequest& request = requests[i];
    QRES_REQUIRE(request.coordinator != nullptr,
                 "establish_batch: null coordinator");
    QRES_REQUIRE(request.session.valid(), "establish_batch: invalid session");
    snapshots.push_back(
        request.coordinator->snapshot_for_planning(now, request.staleness));
    seeds[i] = rng();
  }

  // Phase 2 (parallel): pure planning into slots indexed by arrival
  // position, each slot on its own derived RNG stream — the sim-replica
  // determinism idiom, so the merge is independent of worker count and
  // scheduling order.
  std::vector<PlanResult> planned(requests.size());
  auto plan_one = [&](std::size_t i) {
    if (snapshots[i].overloaded) return;
    Rng slot_rng(seeds[i]);
    planned[i] = requests[i].coordinator->plan_on_snapshot(
        snapshots[i], planner, slot_rng, requests[i].scale);
  };
  if (options.pool)
    options.pool->parallel_for(requests.size(), plan_one, options.grain);
  else
    for (std::size_t i = 0; i < requests.size(); ++i) plan_one(i);

  // Phase 3 (sequential, arrival order): commits mutate broker state.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const BatchRequest& request = requests[i];
    results[i] = request.coordinator->commit_planned(
        request.session, now, snapshots[i], std::move(planned[i]));
    if (results[i].outcome == EstablishOutcome::kAdmission &&
        options.replan_on_conflict) {
      // An earlier batch member consumed the capacity this plan assumed
      // (plans were made against pre-batch snapshots). One sequential
      // retry against fresh state; the retry seed derives from the
      // request's own stream, not from worker scheduling.
      const CoordinationStats first_attempt = results[i].stats;
      std::uint64_t mix = seeds[i] ^ 0x9e3779b97f4a7c15ULL;
      Rng retry_rng(splitmix64(mix));
      results[i] =
          request.coordinator->establish(request.session, now, planner,
                                         retry_rng, request.scale,
                                         request.staleness);
      accumulate(&results[i].stats, first_attempt);
      ++results[i].stats.replans;
    }
  }
  return results;
}

BatchAdmissionQueue::BatchAdmissionQueue(EventQueue* queue,
                                         const IPlanner* planner, Rng* rng,
                                         BatchOptions options)
    : queue_(queue),
      planner_(planner),
      rng_(rng),
      options_(options) {
  QRES_REQUIRE(queue != nullptr, "BatchAdmissionQueue: null event queue");
  QRES_REQUIRE(planner != nullptr, "BatchAdmissionQueue: null planner");
  QRES_REQUIRE(rng != nullptr, "BatchAdmissionQueue: null rng");
}

void BatchAdmissionQueue::submit(double time, BatchRequest request,
                                 Completion done) {
  QRES_REQUIRE(request.coordinator != nullptr,
               "BatchAdmissionQueue::submit: null coordinator");
  auto& bucket = pending_[time];
  const bool first_at_time = bucket.empty();
  bucket.push_back(Pending{std::move(request), std::move(done)});
  // One drain event per distinct timestamp, scheduled when the first
  // request for that time arrives (lane 0: the drain runs before any
  // completion events it will post on lanes >= 1).
  if (first_at_time)
    queue_->schedule(time, [this, time] { drain(time); });
}

void BatchAdmissionQueue::drain(double time) {
  auto it = pending_.find(time);
  QRES_ENSURE(it != pending_.end(),
              "BatchAdmissionQueue: drain for an unknown timestamp");
  std::vector<Pending> batch = std::move(it->second);
  pending_.erase(it);

  std::vector<BatchRequest> requests;
  requests.reserve(batch.size());
  for (const Pending& pending : batch) requests.push_back(pending.request);
  std::vector<EstablishResult> results =
      establish_batch(requests, time, *planner_, *rng_, options_);

  ++batches_;
  max_batch_ = std::max(max_batch_, batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].success) ++admitted_;
    if (!batch[i].done) continue;
    // Completions are events of their own, on lane 1 + arrival slot:
    // the EventQueue's (time, lane, seq) tie-break pins their pop order
    // to arrival order no matter which thread scheduled what first.
    queue_->schedule_lane(
        static_cast<std::uint32_t>(1 + i), time,
        [done = std::move(batch[i].done),
         result = std::move(results[i])] { done(result); });
  }
}

}  // namespace qres
