// Soft-state renewal agent for leased host reservations.
//
// RSVP keeps link state alive with periodic refreshes; the LeaseKeeper
// plays the same role for host reservations made in lease mode
// (IBroker::reserve_leased). Each managed session has an owning proxy
// host; every renew_period the keeper sends one renewal per leased
// resource — unless the owner host is inside a scripted crash window of
// the attached FaultPlane, in which case the renewals are simply not
// sent. A crashed proxy therefore stops renewing and its holdings expire
// at the brokers within one lease, instead of leaking capacity forever.
//
// The keeper also performs the expiry sweeps: brokers reclaim lazily (on
// their next admission decision), but a simulation with no further
// arrivals still needs expired capacity returned and accounted, so each
// renewal tick sweeps the session's brokers and reports reclaimed
// sessions to the expiry listener (typically the ReservationAuditor glue).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "broker/registry.hpp"
#include "core/ids.hpp"
#include "core/event_queue.hpp"
#include "signal/fault_plane.hpp"
#include "util/flat_map.hpp"

namespace qres {

struct LeaseConfig {
  double lease = 10.0;         ///< holding lifetime without renewal
  double renew_period = 3.0;   ///< renewal interval (must be < lease)
};

class LeaseKeeper {
 public:
  LeaseKeeper(EventQueue* queue, BrokerRegistry* registry,
              LeaseConfig config = {});

  /// Renewals from a crashed owner host are suppressed while `faults`
  /// says the host is down. Without a plane every renewal goes through.
  void attach_faults(FaultPlane* faults) { faults_ = faults; }

  const LeaseConfig& config() const noexcept { return config_; }

  /// Starts renewing `session`'s leases on `resources`; the session's
  /// liveness is tied to `owner` (the proxy host that reserved them).
  void manage(SessionId session, HostId owner,
              std::vector<ResourceId> resources);

  /// Stops renewing (clean teardown path releases the holdings itself).
  void forget(SessionId session);

  bool managing(SessionId session) const noexcept {
    return sessions_.contains(session);
  }
  std::size_t managed_count() const noexcept { return sessions_.size(); }

  /// Fires once per session whose leases expired at the brokers (the
  /// session is no longer managed afterwards).
  void set_expiry_listener(std::function<void(SessionId)> listener) {
    expiry_listener_ = std::move(listener);
  }

 private:
  struct Entry {
    HostId owner;
    std::vector<ResourceId> resources;
    std::uint64_t epoch = 0;  ///< invalidates stale renewal events
  };

  void schedule_renewals(SessionId session, std::uint64_t epoch);
  void renewal_tick(SessionId session, std::uint64_t epoch);

  EventQueue* queue_;
  BrokerRegistry* registry_;
  LeaseConfig config_;
  FaultPlane* faults_ = nullptr;
  FlatMap<SessionId, Entry> sessions_;
  std::function<void(SessionId)> expiry_listener_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace qres
