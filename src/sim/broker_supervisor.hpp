// Broker supervisor: journals the registry's leaf brokers and drives
// scripted crash–restart outages through them.
//
// The FaultPlane scripts *when* a broker process is down
// (FaultPlane::crash_broker windows); this supervisor makes it actually
// happen in a simulated world: it owns one MemoryJournal per leaf broker,
// attaches them (attach_all), and schedules, for every outage window
// [from, until), a crash() event at `from` and a restart() event at
// `until`. Restart recovers from the journal — or comes back blank when
// the supervisor runs in the un-journaled baseline mode, which is the
// lose-everything comparison arm of bench/ext_recovery.
//
// The crash model optionally loses an un-fsynced journal tail: at each
// crash up to `max_lost_tail` trailing records (never past the newest
// snapshot, the fsync barrier) are dropped, drawn from the supervisor's
// own seeded RNG. The reconciliation protocol
// (SessionCoordinator::reconcile_broker) is what heals the resulting
// divergence between sessions and the journal's truth.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "broker/journal.hpp"
#include "broker/registry.hpp"
#include "core/event_queue.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace qres {

class FaultPlane;

struct SupervisorConfig {
  /// Journal every leaf broker on attach_all(); false = lose-everything
  /// baseline (brokers restart blank).
  bool journaled = true;
  /// Mutations between self-contained snapshots (journal compaction).
  std::size_t snapshot_every = 64;
  /// Extra lease time granted at restart, measured from the restart
  /// instant: the reconciliation window during which restored holders can
  /// re-assert themselves before their leases expire.
  double lease_grace = 4.0;
  /// Crash drops up to this many un-fsynced trailing journal records
  /// (uniform draw per crash; 0 = every record survives).
  std::size_t max_lost_tail = 0;
};

class BrokerSupervisor {
 public:
  BrokerSupervisor(EventQueue* queue, BrokerRegistry* registry,
                   std::uint64_t seed, SupervisorConfig config = {});

  /// Attaches a fresh journal to every leaf broker (no-op in baseline
  /// mode). Call once, after the world's brokers exist and before any
  /// reservations.
  void attach_all(double now = 0.0);

  /// Schedules one outage: crash at `from`, restart (with recovery and
  /// lease grace) at `until`. Windows for one resource must not overlap.
  void schedule_outage(ResourceId resource, double from, double until);

  /// Mirrors every broker window already scripted in `faults` into
  /// scheduled outages, so fault scripts stay in one place.
  void adopt_schedule(const FaultPlane& faults);

  /// Called after each restart completes (broker is up and recovered) —
  /// the hook where session reconciliation starts.
  using RestartListener = std::function<void(ResourceId, double)>;
  void on_restart(RestartListener listener) {
    restart_listener_ = std::move(listener);
  }

  /// This resource's journal, or nullptr (baseline mode / not a leaf).
  MemoryJournal* journal_of(ResourceId resource);

  const SupervisorConfig& config() const noexcept { return config_; }

  struct Totals {
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t lost_records = 0;  ///< journal tail records lost to crashes
  };
  const Totals& totals() const noexcept { return totals_; }

 private:
  void crash(ResourceId resource, double now);
  void restart(ResourceId resource, double now);

  EventQueue* queue_;
  BrokerRegistry* registry_;
  Rng rng_;
  SupervisorConfig config_;
  FlatMap<ResourceId, std::unique_ptr<MemoryJournal>> journals_;
  RestartListener restart_listener_;
  Totals totals_;
};

}  // namespace qres
