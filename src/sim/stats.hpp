// Metric collection for simulation runs.
//
// Records the paper's two key metrics — overall reservation success rate
// and average end-to-end QoS level of *successful* sessions — overall and
// per session class, plus the table-1/2 path-selection histograms and
// per-resource bottleneck counts.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "core/ids.hpp"
#include "sim/workload.hpp"
#include "util/summary.hpp"

namespace qres {

class SimulationStats {
 public:
  /// Records one session attempt. `qos_level` is the paper-style level
  /// value of the achieved end-to-end QoS (L = best, 1 = worst; the rank
  /// converted by the caller); only consumed when success is true.
  /// `planning_failed` distinguishes "no feasible plan existed" from
  /// "plan existed but the reservation was rejected" (possible under
  /// stale observations).
  void record_session(SessionClass session_class, bool success,
                      double qos_level, bool planning_failed);

  /// Records the selected end-to-end reservation path (tables 1/2) under
  /// a histogram group (e.g. the figure-10(a) vs 10(b) QoS tables).
  void record_path(const std::string& group, const std::string& path);

  /// Records which resource was the bottleneck of a computed plan.
  void record_bottleneck(ResourceId resource);

  // --- accessors -----------------------------------------------------
  const Ratio& overall_success() const noexcept { return overall_; }
  const Ratio& class_success(SessionClass c) const {
    return per_class_[static_cast<std::size_t>(c)];
  }
  const Summary& overall_qos() const noexcept { return qos_; }
  const Summary& class_qos(SessionClass c) const {
    return qos_per_class_[static_cast<std::size_t>(c)];
  }
  std::uint64_t planning_failures() const noexcept { return plan_failures_; }
  std::uint64_t admission_failures() const noexcept {
    return admission_failures_;
  }

  /// group -> path -> count.
  const std::map<std::string, std::map<std::string, std::uint64_t>>&
  path_histogram() const noexcept {
    return paths_;
  }

  const std::map<std::uint32_t, std::uint64_t>& bottleneck_counts()
      const noexcept {
    return bottlenecks_;
  }

  /// Merges another run's statistics (replica aggregation).
  void merge(const SimulationStats& other);

 private:
  Ratio overall_;
  std::array<Ratio, kSessionClassCount> per_class_;
  Summary qos_;
  std::array<Summary, kSessionClassCount> qos_per_class_;
  std::uint64_t plan_failures_ = 0;
  std::uint64_t admission_failures_ = 0;
  std::map<std::string, std::map<std::string, std::uint64_t>> paths_;
  std::map<std::uint32_t, std::uint64_t> bottlenecks_;
};

}  // namespace qres
