// Metric collection for simulation runs.
//
// Records the paper's two key metrics — overall reservation success rate
// and average end-to-end QoS level of *successful* sessions — overall and
// per session class, plus the table-1/2 path-selection histograms and
// per-resource bottleneck counts.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "core/ids.hpp"
#include "sim/workload.hpp"
#include "util/summary.hpp"

namespace qres {

/// Counters for the adaptation layer (src/adapt): what the engine did to
/// live sessions, what the governor refused, and how often the watchdog's
/// hysteresis saved the system from thrashing. Surfaced in the bench
/// tables (ext_adaptation, ext_renegotiation) and `qresctl contention`.
struct AdaptationStats {
  std::uint64_t upgrades = 0;            ///< committed rank improvements
  std::uint64_t downgrades = 0;          ///< committed rank degradations
  std::uint64_t upgrade_attempts = 0;    ///< AIMD additive probes started
  std::uint64_t downgrade_attempts = 0;  ///< watchdog-triggered renegotiations
  std::uint64_t mbb_aborts = 0;     ///< renegotiations aborted; old plan kept
  std::uint64_t preemptions = 0;    ///< sessions evicted for a higher priority
  std::uint64_t preempt_downgrades = 0;  ///< sessions shed by downgrade instead
  std::uint64_t overload_rejects = 0;    ///< governor kOverload fast-rejects
  std::uint64_t suppressed_flaps = 0;    ///< hysteresis vetoes of raw flips

  /// Merges another run's counters (replica aggregation, like
  /// SimulationStats::merge).
  void merge(const AdaptationStats& other);
};

class SimulationStats {
 public:
  /// Records one session attempt. `qos_level` is the paper-style level
  /// value of the achieved end-to-end QoS (L = best, 1 = worst; the rank
  /// converted by the caller); only consumed when success is true.
  /// `planning_failed` distinguishes "no feasible plan existed" from
  /// "plan existed but the reservation was rejected" (possible under
  /// stale observations).
  void record_session(SessionClass session_class, bool success,
                      double qos_level, bool planning_failed);

  /// Records the selected end-to-end reservation path (tables 1/2) under
  /// a histogram group (e.g. the figure-10(a) vs 10(b) QoS tables).
  void record_path(const std::string& group, const std::string& path);

  /// Records which resource was the bottleneck of a computed plan.
  void record_bottleneck(ResourceId resource);

  // --- accessors -----------------------------------------------------
  const Ratio& overall_success() const noexcept { return overall_; }
  const Ratio& class_success(SessionClass c) const {
    return per_class_[static_cast<std::size_t>(c)];
  }
  const Summary& overall_qos() const noexcept { return qos_; }
  const Summary& class_qos(SessionClass c) const {
    return qos_per_class_[static_cast<std::size_t>(c)];
  }
  std::uint64_t planning_failures() const noexcept { return plan_failures_; }
  std::uint64_t admission_failures() const noexcept {
    return admission_failures_;
  }

  /// group -> path -> count.
  const std::map<std::string, std::map<std::string, std::uint64_t>>&
  path_histogram() const noexcept {
    return paths_;
  }

  const std::map<std::uint32_t, std::uint64_t>& bottleneck_counts()
      const noexcept {
    return bottlenecks_;
  }

  /// Merges another run's statistics (replica aggregation).
  void merge(const SimulationStats& other);

 private:
  Ratio overall_;
  std::array<Ratio, kSessionClassCount> per_class_;
  Summary qos_;
  std::array<Summary, kSessionClassCount> qos_per_class_;
  std::uint64_t plan_failures_ = 0;
  std::uint64_t admission_failures_ = 0;
  std::map<std::string, std::map<std::string, std::uint64_t>> paths_;
  std::map<std::uint32_t, std::uint64_t> bottlenecks_;
};

}  // namespace qres
