// Workload model of the paper's evaluation (§5.1).
//
// Sessions are heterogeneous along two axes:
//  * resource requirement: "normal" sessions reserve the base requirement,
//    "fat" sessions reserve N times the base with N in {2, 10}; the
//    normal:fat ratio is 1:2;
//  * duration: drawn from [20, 600] time units with a forced short:long
//    ratio of 2:1 around the 60-TU threshold (short ~ U(20,60),
//    long ~ U(60,600)) — a single uniform draw over [20,600] could not
//    satisfy the paper's stated 2:1 ratio.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace qres {

/// The four session classes of the paper's tables 3/4.
enum class SessionClass : std::uint8_t {
  kNormalShort = 0,
  kNormalLong = 1,
  kFatShort = 2,
  kFatLong = 3,
};

constexpr std::size_t kSessionClassCount = 4;

const char* to_string(SessionClass c) noexcept;

struct WorkloadConfig {
  /// P(session is fat); the paper's normal:fat = 1:2.
  double fat_fraction = 2.0 / 3.0;
  /// Among fat sessions, P(N = 10) (otherwise N = 2).
  double fat10_fraction = 0.5;
  double fat_scale_small = 2.0;
  double fat_scale_large = 10.0;

  /// P(session is long); the paper's long:short = 1:2.
  double long_fraction = 1.0 / 3.0;
  double short_min = 20.0;
  double short_max = 60.0;  ///< the paper's long/short threshold
  double long_min = 60.0;
  double long_max = 600.0;
};

struct SessionTraits {
  bool fat = false;
  bool is_long = false;
  /// Requirement multiplier (1, 2 or 10).
  double scale = 1.0;
  double duration = 0.0;
  SessionClass session_class() const noexcept {
    return static_cast<SessionClass>((fat ? 2 : 0) + (is_long ? 1 : 0));
  }
};

/// Samples one session's traits.
SessionTraits sample_traits(const WorkloadConfig& config, Rng& rng);

/// Mean session duration implied by the configuration (used by load
/// calculations and tests).
double mean_duration(const WorkloadConfig& config) noexcept;

/// Mean requirement multiplier implied by the configuration.
double mean_scale(const WorkloadConfig& config) noexcept;

}  // namespace qres
