// Batch planning of concurrent session arrivals (DESIGN.md §11).
//
// Under flash-crowd rates many establishment requests carry the same
// simulation timestamp, and the expensive part of each — building the
// QRG and running the minimax-Dijkstra planner — is a pure function of
// its phase-1 snapshot (SessionCoordinator::plan_on_snapshot). A batch
// therefore runs in three phases:
//   1. snapshots are captured sequentially in arrival order (observing
//      brokers advances alpha history and spends RPC rounds — ordering
//      is part of the determinism contract),
//   2. planning fans across the ThreadPool into result slots indexed by
//      arrival position, each request on its own pre-derived RNG stream
//      (the sim-replica determinism idiom),
//   3. commits run sequentially in arrival order (they mutate broker
//      state).
// Results are bit-identical for every worker count, including no pool at
// all — qres_fuzz --mode parallel enforces this differentially.
//
// Because every plan in a batch was made against a pre-batch snapshot,
// an earlier batch member can consume the capacity a later plan assumed;
// the later commit then fails with kAdmission exactly like a stale
// observation would, and (by default) retries once sequentially against
// fresh state.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "core/event_queue.hpp"
#include "proxy/qos_proxy.hpp"
#include "util/thread_pool.hpp"

namespace qres {

/// One admission request in a batch.
struct BatchRequest {
  SessionCoordinator* coordinator = nullptr;
  SessionId session;
  double scale = 1.0;  ///< requirement multiplier (fat sessions)
  std::function<double(ResourceId)> staleness;  ///< null = accurate
};

struct BatchOptions {
  /// Pool the planning phase fans across; null plans inline (the
  /// reference order the differential fuzz compares against).
  ThreadPool* pool = nullptr;
  /// Requests per parallel_for chunk (0 = the pool's automatic grain).
  std::size_t grain = 1;
  /// On a kAdmission commit conflict (an earlier batch member took the
  /// capacity this plan assumed), retry once sequentially against a
  /// fresh snapshot, like a staleness replan. The retry consumes a
  /// deterministically derived RNG stream and counts in stats.replans.
  bool replan_on_conflict = true;
};

/// Establishes every request at time `now`, merging results in arrival
/// order. `rng` seeds one derived stream per request (drawn in arrival
/// order), so results do not depend on worker count or scheduling.
std::vector<EstablishResult> establish_batch(
    const std::vector<BatchRequest>& requests, double now,
    const IPlanner& planner, Rng& rng, const BatchOptions& options = {});

/// Drains same-tick admission requests from the event loop as batches.
/// submit() buckets requests by timestamp; when the EventQueue reaches a
/// bucket's time, the whole bucket establishes via establish_batch and
/// each completion callback fires as its own event at the same time, in
/// arrival order — completions are posted on lane 1 + arrival slot, so
/// the pop order is fixed by the EventQueue's lane tie-break rather than
/// by which worker thread finished first.
class BatchAdmissionQueue {
 public:
  using Completion = std::function<void(const EstablishResult&)>;

  BatchAdmissionQueue(EventQueue* queue, const IPlanner* planner, Rng* rng,
                      BatchOptions options = {});

  /// Enqueues an admission request arriving at absolute `time`
  /// (>= queue->now()); `done` (optional) receives the result.
  void submit(double time, BatchRequest request, Completion done = nullptr);

  std::size_t batches() const noexcept { return batches_; }
  std::size_t admitted() const noexcept { return admitted_; }
  std::size_t max_batch() const noexcept { return max_batch_; }

 private:
  struct Pending {
    BatchRequest request;
    Completion done;
  };

  void drain(double time);

  EventQueue* queue_;
  const IPlanner* planner_;
  Rng* rng_;
  BatchOptions options_;
  std::map<double, std::vector<Pending>> pending_;
  std::size_t batches_ = 0;
  std::size_t admitted_ = 0;
  std::size_t max_batch_ = 0;
};

}  // namespace qres
