#include "sim/broker_supervisor.hpp"

#include "signal/fault_plane.hpp"
#include "util/assert.hpp"

namespace qres {

BrokerSupervisor::BrokerSupervisor(EventQueue* queue,
                                   BrokerRegistry* registry,
                                   std::uint64_t seed,
                                   SupervisorConfig config)
    : queue_(queue), registry_(registry), rng_(seed), config_(config) {
  QRES_REQUIRE(queue_ != nullptr, "BrokerSupervisor: null event queue");
  QRES_REQUIRE(registry_ != nullptr, "BrokerSupervisor: null registry");
  QRES_REQUIRE(config_.snapshot_every > 0,
               "BrokerSupervisor: snapshot_every must be positive");
  QRES_REQUIRE(config_.lease_grace >= 0.0,
               "BrokerSupervisor: negative lease grace");
}

void BrokerSupervisor::attach_all(double now) {
  if (!config_.journaled) return;  // lose-everything baseline arm
  for (std::uint32_t value = 0; value < registry_->size(); ++value) {
    const ResourceId id{value};
    ResourceBroker* broker = registry_->leaf(id);
    if (broker == nullptr || broker->journal() != nullptr) continue;
    auto journal = std::make_unique<MemoryJournal>();
    broker->attach_journal(journal.get(), config_.snapshot_every, now);
    journals_.insert_or_assign(id, std::move(journal));
  }
}

void BrokerSupervisor::schedule_outage(ResourceId resource, double from,
                                       double until) {
  QRES_REQUIRE(resource.valid(),
               "BrokerSupervisor: invalid resource for outage");
  QRES_REQUIRE(until > from, "BrokerSupervisor: empty outage window");
  QRES_REQUIRE(registry_->leaf(resource) != nullptr,
               "BrokerSupervisor: outages apply to leaf brokers");
  queue_->schedule(from, [this, resource] { crash(resource, queue_->now()); });
  queue_->schedule(until,
                   [this, resource] { restart(resource, queue_->now()); });
}

void BrokerSupervisor::adopt_schedule(const FaultPlane& faults) {
  for (const FaultPlane::BrokerOutage& outage : faults.broker_outages())
    schedule_outage(ResourceId{outage.resource}, outage.from, outage.until);
}

MemoryJournal* BrokerSupervisor::journal_of(ResourceId resource) {
  auto it = journals_.find(resource);
  return it == journals_.end() ? nullptr : it->second.get();
}

void BrokerSupervisor::crash(ResourceId resource, double now) {
  ResourceBroker* broker = registry_->leaf(resource);
  QRES_REQUIRE(broker != nullptr && broker->up(),
               "BrokerSupervisor: crash of a broker that is already down "
               "(overlapping outage windows?)");
  broker->crash(now);
  ++totals_.crashes;
  if (config_.max_lost_tail > 0) {
    if (MemoryJournal* journal = journal_of(resource)) {
      const auto want = static_cast<std::uint64_t>(config_.max_lost_tail);
      const std::uint64_t lose = rng_.uniform_u64(0, want);
      totals_.lost_records +=
          journal->drop_tail(static_cast<std::size_t>(lose));
    }
  }
}

void BrokerSupervisor::restart(ResourceId resource, double now) {
  ResourceBroker* broker = registry_->leaf(resource);
  QRES_REQUIRE(broker != nullptr && !broker->up(),
               "BrokerSupervisor: restart of a broker that is already up");
  broker->restart(now, config_.lease_grace);
  ++totals_.restarts;
  if (restart_listener_) restart_listener_(resource, now);
}

}  // namespace qres
