#include "sim/workload.hpp"

#include "util/assert.hpp"

namespace qres {

const char* to_string(SessionClass c) noexcept {
  switch (c) {
    case SessionClass::kNormalShort:
      return "norm.-short";
    case SessionClass::kNormalLong:
      return "norm.-long";
    case SessionClass::kFatShort:
      return "fat-short";
    case SessionClass::kFatLong:
      return "fat-long";
  }
  return "unknown";
}

SessionTraits sample_traits(const WorkloadConfig& config, Rng& rng) {
  QRES_REQUIRE(config.short_min > 0.0 && config.short_min <= config.short_max,
               "WorkloadConfig: bad short duration range");
  QRES_REQUIRE(config.long_min <= config.long_max,
               "WorkloadConfig: bad long duration range");
  SessionTraits traits;
  traits.fat = rng.bernoulli(config.fat_fraction);
  if (traits.fat) {
    traits.scale = rng.bernoulli(config.fat10_fraction)
                       ? config.fat_scale_large
                       : config.fat_scale_small;
  }
  traits.is_long = rng.bernoulli(config.long_fraction);
  traits.duration = traits.is_long
                        ? rng.uniform(config.long_min, config.long_max)
                        : rng.uniform(config.short_min, config.short_max);
  return traits;
}

double mean_duration(const WorkloadConfig& config) noexcept {
  const double short_mean = 0.5 * (config.short_min + config.short_max);
  const double long_mean = 0.5 * (config.long_min + config.long_max);
  return (1.0 - config.long_fraction) * short_mean +
         config.long_fraction * long_mean;
}

double mean_scale(const WorkloadConfig& config) noexcept {
  const double fat_mean = config.fat10_fraction * config.fat_scale_large +
                          (1.0 - config.fat10_fraction) * config.fat_scale_small;
  return (1.0 - config.fat_fraction) * 1.0 + config.fat_fraction * fat_mean;
}

}  // namespace qres
