// Deterministic fault-injection plane for the simulated control plane.
//
// Every protocol message of the runtime — RSVP Path/Resv/Tear trains
// (src/signal/rsvp.*), the SessionCoordinator report/dispatch rounds and
// the DistributedSession forward/backward/reserve passes (src/proxy/*) —
// can be routed through a FaultPlane, which decides each transmission's
// fate from a seeded RNG plus scripted outage windows:
//
//   * random per-edge faults: drop / duplicate / extra delay, with an
//     optional per-link override of the default distribution;
//   * scripted host-crash and link-down windows [from, until): a message
//     whose endpoint host is crashed or whose link is down at the moment
//     of a transmission attempt is lost deterministically;
//   * reliable sends retransmit with capped exponential backoff and give
//     up after a bounded number of attempts (RetryPolicy); the plan of a
//     whole retransmission train is computed eagerly (attempt times are
//     known in advance and window schedules are scripted), so one logical
//     message costs one scheduled event regardless of how many
//     retransmissions it needed;
//   * frame-level faults for the typed RPC control plane (rpc::wire
//     frames): payload corruption (one flipped byte), frame duplication
//     and hold-back reordering, via the rpc::IFrameFaults hook the
//     RpcChannel routes every serialized frame through.
//
// Determinism: the plane draws from its own xoshiro stream in a fixed
// per-attempt order (drop, delay gate, delay value, duplicate gate,
// duplicate offset, backoff jitter) and a fixed per-frame order (reorder
// gate, corrupt gate, corrupt index, corrupt mask, duplicate gate), and
// skips every draw whose probability is zero. A plane with all
// probabilities zero and no scripted windows therefore draws nothing and
// delivers every message after exactly its nominal latency — protocols
// behave identically to running without a plane (differential-tested in
// tests/fuzz/fault_fuzz.cpp and tests/fuzz/rpc_fuzz.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/ids.hpp"
#include "core/transport.hpp"
#include "core/event_queue.hpp"
#include "rpc/frame.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace qres {

/// Per-edge message fault distribution.
struct FaultConfig {
  double drop_prob = 0.0;       ///< P[one transmission attempt is lost]
  double duplicate_prob = 0.0;  ///< P[a delivered message arrives twice]
  double delay_prob = 0.0;      ///< P[a delivered message is delayed]
  double delay_max = 0.0;       ///< extra delay ~ U(0, delay_max)

  bool inert() const noexcept {
    return drop_prob == 0.0 && duplicate_prob == 0.0 && delay_prob == 0.0;
  }
};

// RetryPolicy lives in core/transport.hpp (shared with the RPC shim's
// deadline-budget truncation).

/// Why a (reliable) message ultimately failed to get through.
enum class DeliveryFailure : std::uint8_t {
  kDropped,   ///< every attempt lost to random drops (silent loss)
  kLinkDown,  ///< the link was inside a scripted down window
  kHostDown,  ///< an endpoint host was inside a scripted crash window
};

class FaultPlane : public IControlTransport, public rpc::IFrameFaults {
 public:
  /// The plane schedules deliveries on `queue` and draws every random
  /// decision from a stream seeded with `seed`.
  FaultPlane(EventQueue* queue, std::uint64_t seed,
             FaultConfig defaults = {});

  void set_default_config(const FaultConfig& config);
  /// Overrides the fault distribution for one specific link.
  void set_link_config(LinkId link, const FaultConfig& config);

  /// Scripts a crash window [from, until) for a host: messages to or from
  /// it are lost, and protocols that poll host_up() see it down.
  void crash_host(HostId host, double from, double until);
  /// Scripts a down window [from, until) for a link.
  void link_down(LinkId link, double from, double until);

  /// Scripts a crash window [from, until) for a *broker process* —
  /// distinct from crash_host: the host keeps exchanging messages, but the
  /// broker for this resource is down (typed BrokerUnavailable at the
  /// establishment layer, recovery-from-journal on restart). Windows for
  /// the same resource must not overlap. The plane only keeps the
  /// schedule; a BrokerSupervisor turns it into actual crash()/restart()
  /// calls on the broker objects.
  void crash_broker(ResourceId resource, double from, double until);

  bool host_up(HostId host, double t) const;
  bool link_up(LinkId link, double t) const;
  bool broker_up(ResourceId resource, double t) const;

  /// Scripted broker outages as (resource id value, from, until), in
  /// scripting order. Consumed by BrokerSupervisor::adopt_schedule().
  struct BrokerOutage {
    std::uint32_t resource;
    double from;
    double until;
  };
  std::vector<BrokerOutage> broker_outages() const;

  /// The computed fate of one logical message (with retransmissions).
  struct MessagePlan {
    bool delivered = false;
    /// Failure cause of the last attempt (meaningful when !delivered).
    DeliveryFailure failure = DeliveryFailure::kDropped;
    /// Delivery time when delivered; the sender's give-up time (last
    /// attempt + its timeout) when not.
    double at = 0.0;
    int attempts = 1;  ///< transmissions used (>= 1)
    bool duplicate = false;
    double duplicate_at = 0.0;  ///< second copy's delivery time
  };

  /// Plans one reliable message sent at `now` across `link` (or a direct
  /// host-to-host control edge when `link` is empty) from `from` to `to`,
  /// taking `latency` per attempt to propagate. Attempt k is evaluated at
  /// its own (precomputed) transmission time, so a scripted window that
  /// opens or closes mid-train is honored. The caller schedules the
  /// delivery; nothing is scheduled here.
  MessagePlan plan_message(std::optional<LinkId> link, HostId from,
                           HostId to, double now, double latency,
                           const RetryPolicy& policy);

  /// Synchronous fate of one logical message between two hosts for the
  /// RPC-style protocols that complete within one simulation instant
  /// (SessionCoordinator / DistributedSession rounds): every attempt is
  /// evaluated at `now`. kTimeout when the retry budget drowned in random
  /// drops, kPeerDown when the last attempt hit a scripted host or link
  /// window.
  ExchangeResult try_message(HostId from, HostId to, double now,
                             const RetryPolicy& policy);

  /// Retry policy used by the IControlTransport implementation (the
  /// coordination-protocol RPC rounds).
  void set_rpc_policy(const RetryPolicy& policy);

  // IControlTransport — lets the proxy-layer protocols cross the plane
  // without qres_proxy depending on qres_sim.
  ExchangeResult exchange(HostId from, HostId to, double now) override;
  ExchangeResult exchange_budgeted(HostId from, HostId to, double now,
                                   const RetryPolicy& policy) override;
  bool reachable(HostId host, double t) const override;

  /// Frame-level fault distribution for the typed RPC control plane.
  void set_frame_config(const rpc::FrameFaultConfig& config);

  // rpc::IFrameFaults — seeded corruption / duplication / hold-back
  // reordering of serialized rpc::wire frames.
  void transmit_frame(const std::vector<std::uint8_t>& frame,
                      std::vector<std::vector<std::uint8_t>>* delivered)
      override;
  void flush_frames(
      std::vector<std::vector<std::uint8_t>>* delivered) override;

  /// Running totals, for benches and fuzz statistics.
  struct Totals {
    std::uint64_t messages = 0;         ///< logical messages planned
    std::uint64_t transmissions = 0;    ///< individual attempts
    std::uint64_t drops = 0;            ///< attempts lost (any cause)
    std::uint64_t duplicates = 0;       ///< extra copies delivered
    std::uint64_t failed_messages = 0;  ///< logical messages never through
  };
  const Totals& totals() const noexcept { return totals_; }

  /// Running frame-level totals (typed RPC control plane).
  struct FrameTotals {
    std::uint64_t frames = 0;     ///< frames transmitted
    std::uint64_t corrupted = 0;  ///< frames with a flipped byte
    std::uint64_t duplicated = 0; ///< extra frame copies delivered
    std::uint64_t held_back = 0;  ///< frames held for reordering
  };
  const FrameTotals& frame_totals() const noexcept { return frame_totals_; }

  EventQueue* queue() const noexcept { return queue_; }

 private:
  struct Window {
    std::uint32_t id;  ///< host or link id value
    double from;
    double until;
  };

  /// One transmission attempt at time `t`; returns delivered, and the
  /// failure cause through `why` when lost.
  bool attempt(const FaultConfig& config, std::optional<LinkId> link,
               HostId from, HostId to, double t, DeliveryFailure* why);
  const FaultConfig& config_for(std::optional<LinkId> link) const;

  EventQueue* queue_;
  Rng rng_;
  RetryPolicy rpc_policy_;
  FaultConfig default_config_;
  rpc::FrameFaultConfig frame_config_;
  FlatMap<LinkId, FaultConfig> link_configs_;
  std::vector<Window> host_windows_;
  std::vector<Window> link_windows_;
  std::vector<Window> broker_windows_;
  std::optional<std::vector<std::uint8_t>> held_frame_;
  Totals totals_;
  FrameTotals frame_totals_;
};

}  // namespace qres
