#include "signal/async_establish.hpp"

#include <memory>

#include "util/assert.hpp"

namespace qres {

AsyncEstablisher::AsyncEstablisher(const ServiceDefinition* service,
                                   std::vector<ResourceId> local_footprint,
                                   std::vector<NetBinding> bindings,
                                   BrokerRegistry* registry,
                                   RsvpNetwork* network, EventQueue* queue,
                                   PsiKind psi_kind)
    : service_(service),
      local_footprint_(std::move(local_footprint)),
      bindings_(std::move(bindings)),
      registry_(registry),
      network_(network),
      queue_(queue),
      psi_kind_(psi_kind) {
  QRES_REQUIRE(service != nullptr, "AsyncEstablisher: null service");
  QRES_REQUIRE(registry != nullptr, "AsyncEstablisher: null registry");
  QRES_REQUIRE(network != nullptr, "AsyncEstablisher: null network");
  QRES_REQUIRE(queue != nullptr, "AsyncEstablisher: null queue");
  QRES_REQUIRE(!bindings_.empty() || !local_footprint_.empty(),
               "AsyncEstablisher: empty footprint");
}

void AsyncEstablisher::establish(SessionId session, double scale,
                                 std::function<void(const Result&)> done) {
  QRES_REQUIRE(done != nullptr, "AsyncEstablisher: null callback");
  const double now = queue_->now();

  // 0. Overload governance: reject doomed requests before they touch a
  // broker or open a signaling flow.
  if (governor_ && governor_->should_reject(now, priority_hint_)) {
    Result rejected;
    rejected.status = SignalStatus::kOverload;
    rejected.completed_at = now;
    done(rejected);
    return;
  }

  // 1. Snapshot: local brokers plus signaled network availability.
  AvailabilityView view = registry_->collect(local_footprint_, now);
  for (const NetBinding& binding : bindings_)
    view.set(binding.resource,
             network_->route_available(binding.from, binding.to), 1.0);

  // 2. Plan.
  const Qrg qrg(*service_, view, psi_kind_, scale);
  Rng unused(1);
  PlanResult planned = BasicPlanner().plan(qrg, unused);
  auto result = std::make_shared<Result>();
  if (!planned.plan) {
    result->completed_at = now;
    done(*result);
    return;
  }
  result->plan = std::move(planned.plan);
  const ResourceVector total = result->plan->total_requirement();

  // 3. Host resources reserve immediately (atomic locally).
  for (ResourceId id : local_footprint_) {
    const double amount = total.get(id);
    if (amount <= 0.0) continue;
    if (!registry_->broker(id).reserve(now, session, amount)) {
      for (const auto& [held, held_amount] : result->local_holdings)
        registry_->broker(held).release_amount(now, session, held_amount);
      result->local_holdings.clear();
      result->completed_at = now;
      done(*result);
      return;
    }
    result->local_holdings.push_back({id, amount});
  }

  // 4. One signaling flow per network segment with demand, concurrently.
  struct Pending {
    std::size_t outstanding = 0;
    bool failed = false;
  };
  auto pending = std::make_shared<Pending>();
  std::vector<std::pair<NetBinding, double>> segments;
  for (const NetBinding& binding : bindings_) {
    const double amount = total.get(binding.resource);
    if (amount > 0.0) segments.push_back({binding, amount});
  }
  if (segments.empty()) {
    result->success = true;
    result->status = SignalStatus::kOk;
    result->completed_at = now;
    done(*result);
    return;
  }
  pending->outstanding = segments.size();

  auto finish = [this, result, pending, session, done](SignalStatus status) {
    if (pending->failed) return;  // already aborted
    if (status != SignalStatus::kOk) {
      pending->failed = true;
      result->status = status;
      // Abort: release local holdings and every flow (successful ones
      // included; failed flows were already torn down by the caller).
      for (const auto& [id, amount] : result->local_holdings)
        registry_->broker(id).release_amount(queue_->now(), session,
                                             amount);
      result->local_holdings.clear();
      for (FlowKey flow : result->flows) network_->teardown(flow);
      result->flows.clear();
      result->success = false;
      result->completed_at = queue_->now();
      done(*result);
      return;
    }
    if (--pending->outstanding == 0) {
      result->success = true;
      result->status = SignalStatus::kOk;
      result->completed_at = queue_->now();
      done(*result);
    }
  };

  for (const auto& [binding, amount] : segments) {
    const FlowKey flow = (static_cast<std::uint64_t>(session.value()) << 20) |
                         next_flow_++;
    network_->open_path(flow, binding.from, binding.to);
    result->flows.push_back(flow);
    network_->request_reservation(
        flow, amount, [this, flow, result, finish](const RsvpResult& r) {
          if (!r.ok()) {
            // The failed flow holds nothing; drop it from the teardown
            // list and tear down its path state.
            network_->teardown(flow);
            for (auto it = result->flows.begin();
                 it != result->flows.end(); ++it)
              if (*it == flow) {
                result->flows.erase(it);
                break;
              }
          }
          finish(r.status);
        });
  }
}

void AsyncEstablisher::establish_with_retry(
    SessionId session, double scale, int max_attempts,
    std::function<void(const Result&)> done) {
  QRES_REQUIRE(max_attempts >= 1,
               "AsyncEstablisher: at least one attempt required");
  QRES_REQUIRE(done != nullptr, "AsyncEstablisher: null callback");
  // Self-referencing retry closure: the weak self-pointer avoids the
  // shared_ptr cycle; each establishment's completion callback holds one
  // strong reference for the duration of its signaling.
  auto attempt = std::make_shared<std::function<void(int)>>();
  const std::weak_ptr<std::function<void(int)>> weak = attempt;
  *attempt = [this, session, scale, done, weak](int remaining) {
    establish(session, scale,
              [done, remaining, self = weak.lock()](const Result& r) {
                const bool retryable =
                    !r.success && (r.status == SignalStatus::kTimeout ||
                                   r.status == SignalStatus::kLinkDown);
                if (!retryable || remaining <= 1 || !self) {
                  done(r);
                  return;
                }
                (*self)(remaining - 1);
              });
  };
  (*attempt)(max_attempts);
}

void AsyncEstablisher::teardown(const Result& result, SessionId session) {
  for (const auto& [id, amount] : result.local_holdings)
    registry_->broker(id).release_amount(queue_->now(), session, amount);
  for (FlowKey flow : result.flows) network_->teardown(flow);
}

}  // namespace qres
