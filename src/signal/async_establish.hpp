// Asynchronous session establishment over the signaling plane.
//
// The paper's §5.2.4 attributes observation inaccuracy to "the concurrency
// among multiple service sessions as well as the varying latency in the
// collection of multi-resource availability". The core simulation models
// that with the staleness knob E; this module models the *mechanism*
// itself: planning happens against a snapshot at time t, but the network
// segments are reserved through RSVP signaling that completes hops over
// real (simulated) time — so two establishments whose signaling windows
// overlap genuinely race for the same bandwidth, and the loser gets a
// ResvErr and aborts.
//
// Pipeline per session:
//   1. snapshot: host availability from the broker registry, network
//      availability per bound segment from RsvpNetwork::route_available;
//   2. plan with the unchanged basic algorithm over that snapshot;
//   3. reserve host resources immediately (brokers are local: atomic);
//   4. open one signaling flow per network segment and reserve the plan's
//      bandwidth; flows proceed concurrently;
//   5. when the last flow confirms, the session is established; any flow
//      failure aborts everything (local reservations and sibling flows).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "broker/registry.hpp"
#include "core/admission.hpp"
#include "core/planner.hpp"
#include "signal/rsvp.hpp"

namespace qres {

class AsyncEstablisher {
 public:
  /// Maps a network resource id used by the service's translations to the
  /// (sender, receiver) pair whose route carries the traffic.
  struct NetBinding {
    ResourceId resource;
    HostId from;
    HostId to;
  };

  struct Result {
    bool success = false;
    /// Why the establishment ended the way it did: kOk on success;
    /// kAdmission for planner/broker rejections (hard); kTimeout /
    /// kLinkDown for signaling faults (retryable); kTornDown when the
    /// session was torn down mid-establishment.
    SignalStatus status = SignalStatus::kAdmission;
    std::optional<ReservationPlan> plan;
    /// Simulation time the outcome was known (>= the request time by the
    /// signaling latency).
    double completed_at = 0.0;
    /// Host-resource holdings (for teardown).
    std::vector<std::pair<ResourceId, double>> local_holdings;
    /// Live signaling flows (for teardown).
    std::vector<FlowKey> flows;
  };

  /// `local_footprint` lists the host resources of the service (resolved
  /// against `registry`); `bindings` covers every network resource id the
  /// service's translations reference.
  AsyncEstablisher(const ServiceDefinition* service,
                   std::vector<ResourceId> local_footprint,
                   std::vector<NetBinding> bindings,
                   BrokerRegistry* registry, RsvpNetwork* network,
                   EventQueue* queue, PsiKind psi_kind = PsiKind::kRatio);

  /// Same overload governance as SessionCoordinator: when `governor`
  /// rejects at request time, establish() completes immediately with
  /// kOverload — no snapshot, no local reservations, no signaling flows.
  /// kOverload is a hard rejection; establish_with_retry never retries
  /// it. Null (the default) disables the check.
  void set_admission_governor(const IAdmissionGovernor* governor,
                              int priority_hint = 0) {
    governor_ = governor;
    priority_hint_ = priority_hint;
  }

  /// Starts an establishment; `done` fires once (success or failure).
  void establish(SessionId session, double scale,
                 std::function<void(const Result&)> done);

  /// Like establish(), but a failure whose status is retryable (kTimeout
  /// or kLinkDown — a fault, not a rejection) re-snapshots and re-plans,
  /// up to `max_attempts` establishments in total. The fresh snapshot
  /// routes the plan around whatever capacity the fault took away, at
  /// degraded QoS if need be; hard rejections are never retried.
  void establish_with_retry(SessionId session, double scale,
                            int max_attempts,
                            std::function<void(const Result&)> done);

  /// Releases everything a successful Result holds.
  void teardown(const Result& result, SessionId session);

 private:
  const ServiceDefinition* service_;
  std::vector<ResourceId> local_footprint_;
  std::vector<NetBinding> bindings_;
  BrokerRegistry* registry_;
  RsvpNetwork* network_;
  EventQueue* queue_;
  PsiKind psi_kind_;
  const IAdmissionGovernor* governor_ = nullptr;
  int priority_hint_ = 0;
  std::uint64_t next_flow_ = 1;
};

}  // namespace qres
