#include "signal/rsvp.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace qres {

const char* to_string(SignalStatus status) noexcept {
  switch (status) {
    case SignalStatus::kOk:
      return "ok";
    case SignalStatus::kAdmission:
      return "admission";
    case SignalStatus::kTimeout:
      return "timeout";
    case SignalStatus::kLinkDown:
      return "link-down";
    case SignalStatus::kTornDown:
      return "torn-down";
    case SignalStatus::kOverload:
      return "overload";
  }
  return "?";
}

RsvpNetwork::RsvpNetwork(const Topology* topology,
                         std::vector<double> link_capacities,
                         EventQueue* queue, RsvpConfig config)
    : topology_(topology), queue_(queue), config_(config) {
  QRES_REQUIRE(topology != nullptr, "RsvpNetwork: null topology");
  QRES_REQUIRE(queue != nullptr, "RsvpNetwork: null event queue");
  QRES_REQUIRE(link_capacities.size() == topology->link_count(),
               "RsvpNetwork: one capacity per topology link required");
  QRES_REQUIRE(config_.hop_latency >= 0.0 && config_.refresh_period > 0.0 &&
                   config_.state_lifetime > config_.refresh_period,
               "RsvpNetwork: lifetime must exceed the refresh period");
  links_.resize(link_capacities.size());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    QRES_REQUIRE(link_capacities[l] > 0.0,
                 "RsvpNetwork: link capacity must be positive");
    links_[l].broker = std::make_unique<ResourceBroker>(
        ResourceId{static_cast<std::uint32_t>(l)},
        topology->link_name(LinkId{static_cast<std::uint32_t>(l)}),
        link_capacities[l]);
  }
}

void RsvpNetwork::attach_faults(FaultPlane* faults) {
  QRES_REQUIRE(faults != nullptr, "RsvpNetwork: null fault plane");
  QRES_REQUIRE(faults->queue() == queue_,
               "RsvpNetwork: fault plane must share the event queue");
  QRES_REQUIRE(flows_.empty(),
               "RsvpNetwork: attach the fault plane before opening flows");
  QRES_REQUIRE(config_.resv_timeout > 0.0,
               "RsvpNetwork: resv_timeout must be positive");
  faults_ = faults;
}

void RsvpNetwork::set_hop_listeners(
    std::function<void(FlowKey, LinkId, double)> reserved,
    std::function<void(FlowKey, LinkId)> released) {
  hop_reserved_ = std::move(reserved);
  hop_released_ = std::move(released);
}

std::vector<HostId> RsvpNetwork::route_hosts(const Flow& flow) const {
  std::vector<HostId> nodes;
  nodes.reserve(flow.route.size() + 1);
  nodes.push_back(flow.sender);
  HostId current = flow.sender;
  for (LinkId link : flow.route) {
    const auto [a, b] = topology_->link_endpoints(link);
    current = (a == current) ? b : a;
    nodes.push_back(current);
  }
  return nodes;
}

void RsvpNetwork::open_path(FlowKey flow, HostId sender, HostId receiver) {
  QRES_REQUIRE(!flows_.count(flow), "RsvpNetwork: flow already open");
  Flow state;
  state.sender = sender;
  state.receiver = receiver;
  state.route = topology_->route(sender, receiver);
  QRES_REQUIRE(!state.route.empty(),
               "RsvpNetwork: sender and receiver must differ");
  flows_.emplace(flow, std::move(state));
  // Path propagation installs path state; modeled by the refresh loop
  // (the first refresh doubles as the initial Path message train).
  schedule_refresh(flow);
}

void RsvpNetwork::schedule_refresh(FlowKey flow) {
  queue_->schedule_in(config_.refresh_period, [this, flow] {
    auto it = flows_.find(flow);
    if (it == flows_.end() || it->second.torn_down ||
        !it->second.refreshing)
      return;
    // Path + Resv refresh: push every hop's expiry out. The deadline is
    // stamped at refresh *origin* time in both paths, so a refresh that
    // crosses the fault plane extends exactly as far as the fault-free
    // inline extension would.
    if (it->second.reserved) {
      const double origin = queue_->now();
      const double deadline = origin + config_.state_lifetime;
      if (faults_ == nullptr) {
        for (LinkId link : it->second.route) {
          auto& expiry = links_[link.value()].expiry;
          auto hop = expiry.find(flow);
          if (hop != expiry.end()) hop->second = deadline;
        }
      } else {
        // A reserved flow that lost all its soft state (e.g. its
        // refreshes were suppressed until every hop expired) is dead:
        // drop it so its refresh loop stops.
        bool any_live = false;
        for (LinkId link : it->second.route)
          if (links_[link.value()].expiry.count(flow) > 0) {
            any_live = true;
            break;
          }
        if (!any_live) {
          flows_.erase(it);
          return;
        }
        // Each hop's refresh is an independent transmission: one lost
        // refresh leaves that hop to its previous deadline (it can catch
        // up next period — or expire, if the losses persist).
        const std::vector<HostId> nodes = route_hosts(it->second);
        const std::vector<LinkId>& route = it->second.route;
        for (std::size_t k = 0; k < route.size(); ++k) {
          const auto plan = faults_->plan_message(
              route[k], nodes[k], nodes[k + 1], origin,
              config_.hop_latency * static_cast<double>(k + 1),
              config_.retry);
          if (!plan.delivered) continue;
          queue_->schedule(plan.at, [this, link = route[k], flow,
                                     deadline] {
            auto& expiry = links_[link.value()].expiry;
            auto hop = expiry.find(flow);
            if (hop != expiry.end() && deadline > hop->second)
              hop->second = deadline;
          });
          // A duplicated refresh is absorbed: extending twice to the
          // same deadline is a no-op, so the copy is not even scheduled.
        }
      }
    }
    schedule_refresh(flow);
  });
}

void RsvpNetwork::schedule_expiry_check(LinkId link, FlowKey flow) {
  auto& state = links_[link.value()];
  const auto it = state.expiry.find(flow);
  if (it == state.expiry.end()) return;
  const double deadline = it->second;
  queue_->schedule(deadline, [this, link, flow, deadline] {
    auto& expiry = links_[link.value()].expiry;
    const auto hop = expiry.find(flow);
    if (hop == expiry.end()) return;       // torn down already
    if (hop->second > deadline) {
      // Refreshed in the meantime: re-arm for the new deadline.
      schedule_expiry_check(link, flow);
      return;
    }
    release_hop(link, flow);  // soft-state timeout
  });
}

void RsvpNetwork::release_hop(LinkId link, FlowKey flow) {
  auto& state = links_[link.value()];
  if (state.expiry.erase(flow) > 0) {
    state.broker->release(queue_->now(),
                          SessionId{static_cast<std::uint32_t>(flow)});
    if (hop_released_) hop_released_(flow, link);
  }
}

void RsvpNetwork::request_reservation(
    FlowKey flow, double bandwidth,
    std::function<void(const RsvpResult&)> done) {
  QRES_REQUIRE(bandwidth > 0.0,
               "RsvpNetwork: bandwidth must be positive");
  QRES_REQUIRE(done != nullptr, "RsvpNetwork: null completion callback");
  auto it = flows_.find(flow);
  QRES_REQUIRE(it != flows_.end(), "RsvpNetwork: open_path first");
  QRES_REQUIRE(!it->second.reserved,
               "RsvpNetwork: flow already has a reservation");
  it->second.bandwidth = bandwidth;

  // Copy what the closure chains need.
  const std::vector<LinkId> route = it->second.route;

  if (faults_ == nullptr) {
    // Fault-free plane: the Path train reaches the receiver after one
    // latency per hop, then the Resv walks back reserving hop by hop.
    const double path_delay =
        config_.hop_latency * static_cast<double>(route.size());

    // Same completion guarantee as the faulted plane: a teardown that
    // races the in-flight walk must still complete the callback (with
    // kTornDown, at the same watchdog deadline), never drop it.
    auto fired = std::make_shared<bool>(false);
    queue_->schedule_in(config_.resv_timeout, [this, flow, fired, done] {
      if (*fired) return;
      *fired = true;
      auto flow_it = flows_.find(flow);
      RsvpResult result;
      result.status = SignalStatus::kTornDown;
      if (flow_it != flows_.end() && !flow_it->second.torn_down) {
        result.status = SignalStatus::kTimeout;
        for (LinkId link : flow_it->second.route) release_hop(link, flow);
        flows_.erase(flow_it);
      }
      result.completed_at = queue_->now();
      done(result);
    });

    // Recursive hop processor: index counts from the last hop (receiver
    // side) toward the sender, per footnote 1.
    // The processor must not capture its own shared_ptr strongly — that
    // is a reference cycle and the closure (with the done callback and
    // route) would never be freed. Pending queue events hold the strong
    // refs; the self-reference is weak and locked only to schedule the
    // next hop.
    auto hop_step = std::make_shared<std::function<void(std::size_t)>>();
    const std::weak_ptr<std::function<void(std::size_t)>> weak_step =
        hop_step;
    *hop_step = [this, flow, bandwidth, route, done, fired,
                 weak_step](std::size_t reversed_index) {
      auto flow_it = flows_.find(flow);
      if (flow_it == flows_.end() || flow_it->second.torn_down) return;
      const std::size_t hop = route.size() - 1 - reversed_index;
      LinkState& link = links_[route[hop].value()];
      const bool admitted = link.broker->reserve(
          queue_->now(), SessionId{static_cast<std::uint32_t>(flow)},
          bandwidth);
      if (!admitted) {
        // ResvErr: release the hops already reserved downstream (closer
        // to the receiver) and report failure after the error travels
        // back.
        for (std::size_t r = 0; r < reversed_index; ++r)
          release_hop(route[route.size() - 1 - r], flow);
        const double error_delay =
            config_.hop_latency * static_cast<double>(reversed_index + 1);
        *fired = true;
        queue_->schedule_in(error_delay, [this, done,
                                          link_id = route[hop]] {
          RsvpResult result;
          result.status = SignalStatus::kAdmission;
          result.failed_link = link_id;
          result.completed_at = queue_->now();
          done(result);
        });
        return;
      }
      link.expiry[flow] = queue_->now() + config_.state_lifetime;
      schedule_expiry_check(route[hop], flow);
      if (hop_reserved_) hop_reserved_(flow, route[hop], bandwidth);
      if (reversed_index + 1 == route.size()) {
        // Reached the sender side: reservation complete. Confirmation
        // travels back to the receiver.
        flow_it->second.reserved = true;
        *fired = true;
        queue_->schedule_in(
            config_.hop_latency * static_cast<double>(route.size()),
            [this, done] {
              RsvpResult result;
              result.status = SignalStatus::kOk;
              result.completed_at = queue_->now();
              done(result);
            });
        return;
      }
      queue_->schedule_in(config_.hop_latency,
                          [step = weak_step.lock(), reversed_index] {
                            if (step) (*step)(reversed_index + 1);
                          });
    };
    queue_->schedule_in(path_delay, [hop_step] { (*hop_step)(0); });
    return;
  }

  // --- Faulted plane: every hop message crosses the FaultPlane. ---
  const std::vector<HostId> nodes = route_hosts(it->second);

  // The outcome must reach `done` exactly once; `fired` flips the moment
  // the outcome is *known* (when its delivery is scheduled), so the
  // watchdog cannot race a slow ResvErr or confirmation.
  auto fired = std::make_shared<bool>(false);
  auto finish = [this, done, fired](SignalStatus status, LinkId link,
                                    double when) {
    if (*fired) return;
    *fired = true;
    queue_->schedule(when, [this, done, status, link] {
      RsvpResult result;
      result.status = status;
      result.failed_link = link;
      result.completed_at = queue_->now();
      done(result);
    });
  };

  // Watchdog: signaling that dies silently (lost beyond the retry
  // budget, crashed router) is bounded here. Abandoning the flow also
  // releases whatever hops the walk managed to reserve — a reservation
  // that was never confirmed must not linger until soft-state expiry.
  queue_->schedule_in(config_.resv_timeout, [this, flow, fired, done] {
    if (*fired) return;
    *fired = true;
    auto flow_it = flows_.find(flow);
    RsvpResult result;
    result.status = SignalStatus::kTornDown;
    if (flow_it != flows_.end() && !flow_it->second.torn_down) {
      result.status = SignalStatus::kTimeout;
      for (LinkId link : flow_it->second.route) release_hop(link, flow);
      flows_.erase(flow_it);
    }
    result.completed_at = queue_->now();
    done(result);
  });

  // Path train, sender -> receiver, one reliable message per hop. Nominal
  // arrival times are expressed as origin + k * latency from the train's
  // anchor (not by accumulating one addition per hop), so that a train no
  // fault touches lands on times bit-identical to the fault-free plane's
  // `hop_latency * route.size()`; a hop that deviates (extra delay or a
  // retransmission) re-anchors the remainder of the train at its actual
  // delivery time.
  double anchor = queue_->now();
  std::size_t anchor_hop = 0;
  double path_arrival = anchor;
  for (std::size_t k = 0; k < route.size(); ++k) {
    const double nominal =
        config_.hop_latency * static_cast<double>(k + 1 - anchor_hop);
    const auto plan = faults_->plan_message(route[k], nodes[k], nodes[k + 1],
                                            anchor, nominal, config_.retry);
    if (!plan.delivered) {
      // A scripted outage produces a PathErr back to the requester;
      // silent losses are left to the watchdog.
      if (plan.failure == DeliveryFailure::kLinkDown)
        finish(SignalStatus::kLinkDown, route[k],
               plan.at + config_.hop_latency * static_cast<double>(k + 1));
      return;
    }
    path_arrival = plan.at;
    if (plan.at != anchor + nominal) {
      anchor = plan.at;
      anchor_hop = k + 1;
    }
    // Duplicate Path messages are absorbed: path state is idempotent.
  }

  auto hop_step = std::make_shared<std::function<void(std::size_t)>>();
  const std::weak_ptr<std::function<void(std::size_t)>> weak_step =
      hop_step;
  *hop_step = [this, flow, bandwidth, route, nodes, finish,
               weak_step](std::size_t reversed_index) {
    auto flow_it = flows_.find(flow);
    if (flow_it == flows_.end() || flow_it->second.torn_down) return;
    const std::size_t hop = route.size() - 1 - reversed_index;
    LinkState& link = links_[route[hop].value()];
    // Duplicate Resv delivery: the hop is already reserved; reserving
    // again would leak bandwidth, so the copy is ignored.
    if (link.expiry.count(flow) > 0) return;
    const bool admitted = link.broker->reserve(
        queue_->now(), SessionId{static_cast<std::uint32_t>(flow)},
        bandwidth);
    if (!admitted) {
      for (std::size_t r = 0; r < reversed_index; ++r)
        release_hop(route[route.size() - 1 - r], flow);
      const double error_delay =
          config_.hop_latency * static_cast<double>(reversed_index + 1);
      finish(SignalStatus::kAdmission, route[hop],
             queue_->now() + error_delay);
      return;
    }
    link.expiry[flow] = queue_->now() + config_.state_lifetime;
    schedule_expiry_check(route[hop], flow);
    if (hop_reserved_) hop_reserved_(flow, route[hop], bandwidth);
    if (reversed_index + 1 == route.size()) {
      flow_it->second.reserved = true;
      // Confirmation train back to the receiver. If any hop of it is
      // lost the receiver never learns of success: the watchdog aborts
      // and releases, which is the safe interpretation. Anchored like the
      // Path train so a fault-free confirmation lands bit-identically to
      // the plain plane's `hop_latency * route.size()` delay.
      double c_anchor = queue_->now();
      std::size_t c_anchor_hop = 0;
      double arrival = c_anchor;
      for (std::size_t k = 0; k < route.size(); ++k) {
        const double nominal =
            config_.hop_latency * static_cast<double>(k + 1 - c_anchor_hop);
        const auto plan =
            faults_->plan_message(route[k], nodes[k], nodes[k + 1], c_anchor,
                                  nominal, config_.retry);
        if (!plan.delivered) return;
        arrival = plan.at;
        if (plan.at != c_anchor + nominal) {
          c_anchor = plan.at;
          c_anchor_hop = k + 1;
        }
      }
      finish(SignalStatus::kOk, LinkId{}, arrival);
      return;
    }
    // Resv message to the next upstream router, crossing the link it is
    // about to reserve.
    const auto plan = faults_->plan_message(
        route[hop - 1], nodes[hop], nodes[hop - 1], queue_->now(),
        config_.hop_latency, config_.retry);
    if (!plan.delivered) {
      if (plan.failure == DeliveryFailure::kLinkDown) {
        // ResvErr: the walk cannot continue across a dead link. Release
        // everything reserved so far and report the culprit.
        for (std::size_t r = 0; r <= reversed_index; ++r)
          release_hop(route[route.size() - 1 - r], flow);
        finish(SignalStatus::kLinkDown, route[hop - 1],
               plan.at + config_.hop_latency *
                             static_cast<double>(reversed_index + 1));
      }
      return;  // silent loss: the watchdog will abandon the flow
    }
    queue_->schedule(plan.at, [step = weak_step.lock(), reversed_index] {
      if (step) (*step)(reversed_index + 1);
    });
    if (plan.duplicate)
      queue_->schedule(plan.duplicate_at,
                       [step = weak_step.lock(), reversed_index] {
                         if (step) (*step)(reversed_index + 1);
                       });
  };
  queue_->schedule(path_arrival, [hop_step] { (*hop_step)(0); });
}

void RsvpNetwork::teardown(FlowKey flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  it->second.torn_down = true;
  if (faults_ == nullptr) {
    for (LinkId link : it->second.route) release_hop(link, flow);
  } else {
    // Per-hop tear messages, modeled as instantaneous but lossy. A lost
    // tear leaves its hop to soft-state expiry: the flow is erased below,
    // so refreshes stop and the hop releases within state_lifetime —
    // teardown is leak-free even when every tear is dropped.
    const std::vector<HostId> nodes = route_hosts(it->second);
    const std::vector<LinkId>& route = it->second.route;
    const double now = queue_->now();
    for (std::size_t k = 0; k < route.size(); ++k) {
      const auto plan = faults_->plan_message(
          route[k], nodes[k], nodes[k + 1], now, 0.0, config_.retry);
      if (!plan.delivered) continue;
      if (plan.at <= now)
        release_hop(route[k], flow);
      else
        queue_->schedule(plan.at, [this, link = route[k], flow] {
          release_hop(link, flow);
        });
    }
  }
  flows_.erase(it);
}

void RsvpNetwork::stop_refreshing(FlowKey flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;  // idempotent: nothing to stop
  it->second.refreshing = false;
}

double RsvpNetwork::link_reserved(LinkId link) const {
  QRES_REQUIRE(link.valid() && link.value() < links_.size(),
               "RsvpNetwork: unknown link");
  return links_[link.value()].broker->reserved();
}

double RsvpNetwork::link_capacity(LinkId link) const {
  QRES_REQUIRE(link.valid() && link.value() < links_.size(),
               "RsvpNetwork: unknown link");
  return links_[link.value()].broker->capacity();
}

double RsvpNetwork::route_available(HostId from, HostId to) const {
  const std::vector<LinkId> route = topology_->route(from, to);
  QRES_REQUIRE(!route.empty(), "route_available: hosts must differ");
  double minimum = std::numeric_limits<double>::infinity();
  for (LinkId link : route) {
    const LinkState& state = links_[link.value()];
    minimum = std::min(minimum, state.broker->available());
  }
  return minimum;
}

std::size_t RsvpNetwork::link_flow_count(LinkId link) const {
  QRES_REQUIRE(link.valid() && link.value() < links_.size(),
               "RsvpNetwork: unknown link");
  return links_[link.value()].expiry.size();
}

}  // namespace qres
