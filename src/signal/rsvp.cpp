#include "signal/rsvp.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace qres {

RsvpNetwork::RsvpNetwork(const Topology* topology,
                         std::vector<double> link_capacities,
                         EventQueue* queue, RsvpConfig config)
    : topology_(topology), queue_(queue), config_(config) {
  QRES_REQUIRE(topology != nullptr, "RsvpNetwork: null topology");
  QRES_REQUIRE(queue != nullptr, "RsvpNetwork: null event queue");
  QRES_REQUIRE(link_capacities.size() == topology->link_count(),
               "RsvpNetwork: one capacity per topology link required");
  QRES_REQUIRE(config_.hop_latency >= 0.0 && config_.refresh_period > 0.0 &&
                   config_.state_lifetime > config_.refresh_period,
               "RsvpNetwork: lifetime must exceed the refresh period");
  links_.resize(link_capacities.size());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    QRES_REQUIRE(link_capacities[l] > 0.0,
                 "RsvpNetwork: link capacity must be positive");
    links_[l].broker = std::make_unique<ResourceBroker>(
        ResourceId{static_cast<std::uint32_t>(l)},
        topology->link_name(LinkId{static_cast<std::uint32_t>(l)}),
        link_capacities[l]);
  }
}

void RsvpNetwork::open_path(FlowKey flow, HostId sender, HostId receiver) {
  QRES_REQUIRE(!flows_.count(flow), "RsvpNetwork: flow already open");
  Flow state;
  state.sender = sender;
  state.receiver = receiver;
  state.route = topology_->route(sender, receiver);
  QRES_REQUIRE(!state.route.empty(),
               "RsvpNetwork: sender and receiver must differ");
  flows_.emplace(flow, std::move(state));
  // Path propagation installs path state; modeled by the refresh loop
  // (the first refresh doubles as the initial Path message train).
  schedule_refresh(flow);
}

void RsvpNetwork::schedule_refresh(FlowKey flow) {
  queue_->schedule_in(config_.refresh_period, [this, flow] {
    auto it = flows_.find(flow);
    if (it == flows_.end() || it->second.torn_down ||
        !it->second.refreshing)
      return;
    // Path + Resv refresh: push every hop's expiry out.
    if (it->second.reserved) {
      const double deadline = queue_->now() + config_.state_lifetime;
      for (LinkId link : it->second.route) {
        auto& expiry = links_[link.value()].expiry;
        auto hop = expiry.find(flow);
        if (hop != expiry.end()) hop->second = deadline;
      }
    }
    schedule_refresh(flow);
  });
}

void RsvpNetwork::schedule_expiry_check(LinkId link, FlowKey flow) {
  auto& state = links_[link.value()];
  const auto it = state.expiry.find(flow);
  if (it == state.expiry.end()) return;
  const double deadline = it->second;
  queue_->schedule(deadline, [this, link, flow, deadline] {
    auto& expiry = links_[link.value()].expiry;
    const auto hop = expiry.find(flow);
    if (hop == expiry.end()) return;       // torn down already
    if (hop->second > deadline) {
      // Refreshed in the meantime: re-arm for the new deadline.
      schedule_expiry_check(link, flow);
      return;
    }
    release_hop(link, flow);  // soft-state timeout
  });
}

void RsvpNetwork::release_hop(LinkId link, FlowKey flow) {
  auto& state = links_[link.value()];
  if (state.expiry.erase(flow) > 0)
    state.broker->release(queue_->now(),
                          SessionId{static_cast<std::uint32_t>(flow)});
}

void RsvpNetwork::request_reservation(
    FlowKey flow, double bandwidth,
    std::function<void(const RsvpResult&)> done) {
  QRES_REQUIRE(bandwidth > 0.0,
               "RsvpNetwork: bandwidth must be positive");
  QRES_REQUIRE(done != nullptr, "RsvpNetwork: null completion callback");
  auto it = flows_.find(flow);
  QRES_REQUIRE(it != flows_.end(), "RsvpNetwork: open_path first");
  QRES_REQUIRE(!it->second.reserved,
               "RsvpNetwork: flow already has a reservation");
  it->second.bandwidth = bandwidth;

  // The Path train must first reach the receiver (route hops), then the
  // Resv walks back reserving hop by hop. We simulate the walk-back as a
  // chain of per-hop events in reverse route order.
  const double path_delay =
      config_.hop_latency * static_cast<double>(it->second.route.size());
  // Copy what the closure chain needs.
  const std::vector<LinkId> route = it->second.route;

  // Recursive hop processor: index counts from the last hop (receiver
  // side) toward the sender, per footnote 1.
  // The processor must not capture its own shared_ptr strongly — that is
  // a reference cycle and the closure (with the done callback and route)
  // would never be freed. Pending queue events hold the strong refs; the
  // self-reference is weak and locked only to schedule the next hop.
  auto hop_step = std::make_shared<std::function<void(std::size_t)>>();
  const std::weak_ptr<std::function<void(std::size_t)>> weak_step = hop_step;
  *hop_step = [this, flow, bandwidth, route, done,
               weak_step](std::size_t reversed_index) {
    auto flow_it = flows_.find(flow);
    if (flow_it == flows_.end() || flow_it->second.torn_down) return;
    const std::size_t hop = route.size() - 1 - reversed_index;
    LinkState& link = links_[route[hop].value()];
    const bool admitted = link.broker->reserve(
        queue_->now(), SessionId{static_cast<std::uint32_t>(flow)},
        bandwidth);
    if (!admitted) {
      // ResvErr: release the hops already reserved downstream (closer to
      // the receiver) and report failure after the error travels back.
      for (std::size_t r = 0; r < reversed_index; ++r)
        release_hop(route[route.size() - 1 - r], flow);
      const double error_delay =
          config_.hop_latency * static_cast<double>(reversed_index + 1);
      queue_->schedule_in(error_delay, [this, done, link_id = route[hop]] {
        RsvpResult result;
        result.success = false;
        result.failed_link = link_id;
        result.completed_at = queue_->now();
        done(result);
      });
      return;
    }
    link.expiry[flow] = queue_->now() + config_.state_lifetime;
    schedule_expiry_check(route[hop], flow);
    if (reversed_index + 1 == route.size()) {
      // Reached the sender side: reservation complete. Confirmation
      // travels back to the receiver.
      flow_it->second.reserved = true;
      queue_->schedule_in(
          config_.hop_latency * static_cast<double>(route.size()),
          [this, done] {
            RsvpResult result;
            result.success = true;
            result.completed_at = queue_->now();
            done(result);
          });
      return;
    }
    queue_->schedule_in(config_.hop_latency,
                        [step = weak_step.lock(), reversed_index] {
                          if (step) (*step)(reversed_index + 1);
                        });
  };
  queue_->schedule_in(path_delay, [hop_step] { (*hop_step)(0); });
}

void RsvpNetwork::teardown(FlowKey flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  it->second.torn_down = true;
  for (LinkId link : it->second.route) release_hop(link, flow);
  flows_.erase(it);
}

void RsvpNetwork::stop_refreshing(FlowKey flow) {
  auto it = flows_.find(flow);
  QRES_REQUIRE(it != flows_.end(), "RsvpNetwork: unknown flow");
  it->second.refreshing = false;
}

double RsvpNetwork::link_reserved(LinkId link) const {
  QRES_REQUIRE(link.valid() && link.value() < links_.size(),
               "RsvpNetwork: unknown link");
  return links_[link.value()].broker->reserved();
}

double RsvpNetwork::link_capacity(LinkId link) const {
  QRES_REQUIRE(link.valid() && link.value() < links_.size(),
               "RsvpNetwork: unknown link");
  return links_[link.value()].broker->capacity();
}

double RsvpNetwork::route_available(HostId from, HostId to) const {
  const std::vector<LinkId> route = topology_->route(from, to);
  QRES_REQUIRE(!route.empty(), "route_available: hosts must differ");
  double minimum = std::numeric_limits<double>::infinity();
  for (LinkId link : route) {
    const LinkState& state = links_[link.value()];
    minimum = std::min(minimum, state.broker->available());
  }
  return minimum;
}

std::size_t RsvpNetwork::link_flow_count(LinkId link) const {
  QRES_REQUIRE(link.valid() && link.value() < links_.size(),
               "RsvpNetwork: unknown link");
  return links_[link.value()].expiry.size();
}

}  // namespace qres
