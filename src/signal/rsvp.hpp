// Receiver-initiated, soft-state bandwidth signaling — the "RSVP-enabled
// bandwidth broker on each router" that the paper's two-level network
// brokerage sits on (§3, footnote 1: "to be compatible with RSVP, the
// network Resource Broker on the receiver side initiates an end-to-end
// network bandwidth reservation").
//
// The protocol follows RSVP's shape (Zhang et al. [3]):
//   * Path messages travel sender -> receiver along the route, installing
//     per-hop path state (the reverse-hop pointer);
//   * Resv messages travel receiver -> sender along the reverse path,
//     reserving bandwidth hop by hop on each link's broker; an admission
//     failure generates a ResvErr back to the receiver and releases the
//     hops already reserved downstream;
//   * all state is *soft*: it expires `state_lifetime` after the last
//     refresh unless Path/Resv refreshes re-arm it (scheduled every
//     `refresh_period`); expiry releases the link bandwidth;
//   * PathTear/ResvTear remove state explicitly.
//
// Message propagation is simulated on an EventQueue with a per-hop
// latency, so setup latency scales with hop count and races are real.
//
// Optionally every message crosses an attached FaultPlane: transmissions
// can be dropped, duplicated or delayed, links and hosts can be scripted
// down, and reliable hops retransmit with capped exponential backoff
// (RsvpConfig::retry). A reservation whose signaling dies silently is
// bounded by the resv_timeout watchdog, which abandons the flow, releases
// any hops it managed to reserve, and reports kTimeout. Lost tear
// messages are covered by the soft state itself: the flow stops
// refreshing, so surviving hops expire within state_lifetime. Without an
// attached plane the protocol behaves exactly as before.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/resource_broker.hpp"
#include "util/annotations.hpp"
#include "core/event_queue.hpp"
#include "signal/fault_plane.hpp"
#include "core/topology.hpp"

namespace qres {

/// Identifies one end-to-end flow (session) in the signaling plane.
using FlowKey = std::uint64_t;

struct RsvpConfig {
  double hop_latency = 0.05;     ///< message propagation per hop (TU)
  double refresh_period = 3.0;   ///< Path/Resv refresh interval
  double state_lifetime = 10.0;  ///< soft-state expiry without refresh
  /// Reliable-send policy per hop when a FaultPlane is attached.
  RetryPolicy retry;
  /// Watchdog: how long the receiver waits for the reservation outcome
  /// before abandoning the flow (only armed when a FaultPlane is
  /// attached; must exceed the fault-free round trip).
  double resv_timeout = 8.0;
};

/// Why a signaling operation concluded the way it did. Distinguishes hard
/// rejections (admission) from retryable faults, so callers can decide to
/// re-plan around a dead link instead of giving up.
enum class QRES_NODISCARD SignalStatus : std::uint8_t {
  kOk,         ///< reservation in place, confirmation delivered
  kAdmission,  ///< a link broker rejected the bandwidth (hard failure)
  kTimeout,    ///< signaling lost beyond the retry budget (retryable)
  kLinkDown,   ///< a scripted link outage blocked signaling (retryable)
  kTornDown,   ///< the flow was torn down while establishing
  kOverload,   ///< fast-rejected by the admission governor (no signaling)
};

const char* to_string(SignalStatus status) noexcept;

/// Outcome of a reservation request, delivered asynchronously once the
/// Resv (or ResvErr) completes — or once the watchdog gives up.
struct QRES_NODISCARD RsvpResult {
  SignalStatus status = SignalStatus::kTimeout;
  /// Link on which admission failed or the outage hit (invalid
  /// otherwise).
  LinkId failed_link;
  /// Time the outcome was known at the receiver.
  double completed_at = 0.0;

  bool ok() const noexcept { return status == SignalStatus::kOk; }
};

class RsvpNetwork {
 public:
  /// `link_capacity[l]` is the bandwidth of topology link l. The network
  /// drives its timers/messages off `queue`.
  RsvpNetwork(const Topology* topology,
              std::vector<double> link_capacities, EventQueue* queue,
              RsvpConfig config = {});

  /// Routes every subsequent message through `faults` (must share the
  /// event queue and outlive this network). Attach before opening flows.
  void attach_faults(FaultPlane* faults);

  /// Observers for hop-level accounting (the ReservationAuditor glue):
  /// `reserved` fires when a hop's bandwidth is reserved, `released`
  /// whenever a hop lets go of it (tear, expiry, or error rollback).
  void set_hop_listeners(
      std::function<void(FlowKey, LinkId, double)> reserved,
      std::function<void(FlowKey, LinkId)> released);

  /// Starts Path signaling for a flow from `sender` to `receiver`; path
  /// state installs hop by hop and is refreshed automatically until
  /// teardown (or stop_refreshing). Requires a route to exist.
  void open_path(FlowKey flow, HostId sender, HostId receiver);

  /// Receiver-initiated reservation of `bandwidth` along the flow's
  /// (reverse) path. `done` fires when the outcome is known. Requires
  /// open_path first; the Resv starts once path state has reached the
  /// receiver (it is scheduled after the Path propagation delay).
  void request_reservation(FlowKey flow, double bandwidth,
                           std::function<void(const RsvpResult&)> done);

  /// Explicit teardown (PathTear + ResvTear). Without faults every hop
  /// releases now; under faults each hop's tear message can be lost, in
  /// which case that hop's soft state expires on its own (the flow stops
  /// refreshing the moment it is torn down). Idempotent: unknown or
  /// already-torn-down flows are a no-op.
  void teardown(FlowKey flow);

  /// Stops refreshing a flow's state (simulates endpoint failure); the
  /// soft state then expires and releases within state_lifetime.
  /// Idempotent: unknown flows are a no-op.
  void stop_refreshing(FlowKey flow);

  /// Reserved bandwidth currently held on a link (enforcement view).
  double link_reserved(LinkId link) const;
  double link_capacity(LinkId link) const;

  /// Current end-to-end availability between two hosts: the minimum
  /// unreserved bandwidth along the route (what a higher-level network
  /// Resource Broker reports to the QoSProxy, §3).
  double route_available(HostId from, HostId to) const;

  /// Number of flows with live reservation state on the link.
  std::size_t link_flow_count(LinkId link) const;

 private:
  struct Flow {
    HostId sender;
    HostId receiver;
    std::vector<LinkId> route;  // sender -> receiver order
    double bandwidth = 0.0;
    bool reserved = false;
    bool refreshing = true;
    bool torn_down = false;
  };

  /// Host sequence along a flow's route (sender first, receiver last).
  std::vector<HostId> route_hosts(const Flow& flow) const;

  /// Per-link soft reservation state.
  struct LinkState {
    std::unique_ptr<ResourceBroker> broker;
    /// flow -> expiry deadline (refresh pushes it out).
    std::map<FlowKey, double> expiry;
  };

  void schedule_refresh(FlowKey flow);
  void schedule_expiry_check(LinkId link, FlowKey flow);
  void release_hop(LinkId link, FlowKey flow);

  const Topology* topology_;
  EventQueue* queue_;
  RsvpConfig config_;
  FaultPlane* faults_ = nullptr;
  std::function<void(FlowKey, LinkId, double)> hop_reserved_;
  std::function<void(FlowKey, LinkId)> hop_released_;
  std::vector<LinkState> links_;
  std::map<FlowKey, Flow> flows_;
};

}  // namespace qres
