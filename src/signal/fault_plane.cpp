#include "signal/fault_plane.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

FaultPlane::FaultPlane(EventQueue* queue, std::uint64_t seed,
                       FaultConfig defaults)
    : queue_(queue), rng_(seed), default_config_(defaults) {
  QRES_REQUIRE(queue != nullptr, "FaultPlane: null event queue");
  set_default_config(defaults);
}

namespace {

void require_valid(const FaultConfig& config) {
  QRES_REQUIRE(config.drop_prob >= 0.0 && config.drop_prob <= 1.0 &&
                   config.duplicate_prob >= 0.0 &&
                   config.duplicate_prob <= 1.0 &&
                   config.delay_prob >= 0.0 && config.delay_prob <= 1.0,
               "FaultPlane: probabilities must be in [0, 1]");
  QRES_REQUIRE(config.delay_max >= 0.0,
               "FaultPlane: delay_max must be non-negative");
}

}  // namespace

void FaultPlane::set_default_config(const FaultConfig& config) {
  require_valid(config);
  default_config_ = config;
}

void FaultPlane::set_link_config(LinkId link, const FaultConfig& config) {
  QRES_REQUIRE(link.valid(), "FaultPlane: invalid link");
  require_valid(config);
  link_configs_[link] = config;
}

void FaultPlane::crash_host(HostId host, double from, double until) {
  QRES_REQUIRE(host.valid(), "FaultPlane: invalid host");
  QRES_REQUIRE(until > from, "FaultPlane: empty crash window");
  host_windows_.push_back({host.value(), from, until});
}

void FaultPlane::link_down(LinkId link, double from, double until) {
  QRES_REQUIRE(link.valid(), "FaultPlane: invalid link");
  QRES_REQUIRE(until > from, "FaultPlane: empty down window");
  link_windows_.push_back({link.value(), from, until});
}

void FaultPlane::crash_broker(ResourceId resource, double from,
                              double until) {
  QRES_REQUIRE(resource.valid(), "FaultPlane: invalid resource");
  QRES_REQUIRE(until > from, "FaultPlane: empty broker crash window");
  for (const Window& w : broker_windows_)
    QRES_REQUIRE(w.id != resource.value() || until <= w.from ||
                     from >= w.until,
                 "FaultPlane: overlapping broker crash windows");
  broker_windows_.push_back({resource.value(), from, until});
}

bool FaultPlane::broker_up(ResourceId resource, double t) const {
  for (const Window& w : broker_windows_)
    if (resource.valid() && w.id == resource.value() && t >= w.from &&
        t < w.until)
      return false;
  return true;
}

std::vector<FaultPlane::BrokerOutage> FaultPlane::broker_outages() const {
  std::vector<BrokerOutage> outages;
  outages.reserve(broker_windows_.size());
  for (const Window& w : broker_windows_)
    outages.push_back({w.id, w.from, w.until});
  return outages;
}

bool FaultPlane::host_up(HostId host, double t) const {
  for (const Window& w : host_windows_)
    if (host.valid() && w.id == host.value() && t >= w.from && t < w.until)
      return false;
  return true;
}

bool FaultPlane::link_up(LinkId link, double t) const {
  for (const Window& w : link_windows_)
    if (link.valid() && w.id == link.value() && t >= w.from && t < w.until)
      return false;
  return true;
}

const FaultConfig& FaultPlane::config_for(
    std::optional<LinkId> link) const {
  if (link) {
    const auto it = link_configs_.find(*link);
    if (it != link_configs_.end()) return it->second;
  }
  return default_config_;
}

bool FaultPlane::attempt(const FaultConfig& config,
                         std::optional<LinkId> link, HostId from, HostId to,
                         double t, DeliveryFailure* why) {
  ++totals_.transmissions;
  if (!host_up(from, t) || !host_up(to, t)) {
    ++totals_.drops;
    *why = DeliveryFailure::kHostDown;
    return false;
  }
  if (link && !link_up(*link, t)) {
    ++totals_.drops;
    *why = DeliveryFailure::kLinkDown;
    return false;
  }
  // Zero probabilities draw nothing, so an all-zero plane leaves the RNG
  // stream untouched (part of the zero-fault equivalence contract).
  if (config.drop_prob > 0.0 && rng_.bernoulli(config.drop_prob)) {
    ++totals_.drops;
    *why = DeliveryFailure::kDropped;
    return false;
  }
  return true;
}

FaultPlane::MessagePlan FaultPlane::plan_message(std::optional<LinkId> link,
                                                 HostId from, HostId to,
                                                 double now, double latency,
                                                 const RetryPolicy& policy) {
  QRES_REQUIRE(latency >= 0.0, "FaultPlane: negative latency");
  QRES_REQUIRE(policy.max_attempts >= 1 && policy.timeout > 0.0 &&
                   policy.backoff >= 1.0 &&
                   policy.max_timeout >= policy.timeout,
               "FaultPlane: malformed retry policy");
  ++totals_.messages;
  const FaultConfig& config = config_for(link);

  MessagePlan plan;
  double attempt_time = now;
  double timeout = policy.timeout;
  for (int k = 0; k < policy.max_attempts; ++k) {
    plan.attempts = k + 1;
    DeliveryFailure why = DeliveryFailure::kDropped;
    if (attempt(config, link, from, to, attempt_time, &why)) {
      double extra = 0.0;
      if (config.delay_prob > 0.0 && rng_.bernoulli(config.delay_prob))
        extra = rng_.uniform(0.0, config.delay_max);
      plan.delivered = true;
      plan.at = attempt_time + latency + extra;
      if (config.duplicate_prob > 0.0 &&
          rng_.bernoulli(config.duplicate_prob)) {
        plan.duplicate = true;
        // The copy straggles behind the original by up to one delay_max
        // (or one latency when no delay distribution is configured).
        const double straggle =
            config.delay_max > 0.0 ? config.delay_max : latency;
        plan.duplicate_at = plan.at + rng_.uniform(0.0, straggle);
        ++totals_.duplicates;
      }
      return plan;
    }
    plan.failure = why;
    // A positive jitter stretches this wait by U(1, 1 + jitter); zero
    // jitter draws nothing (zero-fault equivalence contract).
    double wait = timeout;
    if (policy.jitter > 0.0)
      wait *= 1.0 + rng_.uniform(0.0, policy.jitter);
    plan.at = attempt_time + wait;  // give-up time if this was the last
    attempt_time += wait;
    timeout = std::min(timeout * policy.backoff, policy.max_timeout);
  }
  ++totals_.failed_messages;
  return plan;
}

void FaultPlane::set_rpc_policy(const RetryPolicy& policy) {
  QRES_REQUIRE(policy.max_attempts >= 1,
               "FaultPlane: malformed retry policy");
  rpc_policy_ = policy;
}

ExchangeResult FaultPlane::exchange(HostId from, HostId to, double now) {
  return try_message(from, to, now, rpc_policy_);
}

ExchangeResult FaultPlane::exchange_budgeted(HostId from, HostId to,
                                             double now,
                                             const RetryPolicy& policy) {
  return try_message(from, to, now, policy);
}

bool FaultPlane::reachable(HostId host, double t) const {
  return host_up(host, t);
}

ExchangeResult FaultPlane::try_message(HostId from, HostId to, double now,
                                       const RetryPolicy& policy) {
  QRES_REQUIRE(policy.max_attempts >= 1,
               "FaultPlane: malformed retry policy");
  ++totals_.messages;
  const FaultConfig& config = config_for(std::nullopt);
  DeliveryFailure why = DeliveryFailure::kDropped;
  for (int k = 0; k < policy.max_attempts; ++k)
    if (attempt(config, std::nullopt, from, to, now, &why))
      return {ExchangeStatus::kOk, k + 1};
  ++totals_.failed_messages;
  // The last attempt's failure cause types the whole exchange: scripted
  // windows mean the peer (or its link) was down; pure random loss is a
  // silent timeout.
  const ExchangeStatus status = why == DeliveryFailure::kDropped
                                    ? ExchangeStatus::kTimeout
                                    : ExchangeStatus::kPeerDown;
  return {status, policy.max_attempts};
}

void FaultPlane::set_frame_config(const rpc::FrameFaultConfig& config) {
  QRES_REQUIRE(config.corrupt_prob >= 0.0 && config.corrupt_prob <= 1.0 &&
                   config.duplicate_prob >= 0.0 &&
                   config.duplicate_prob <= 1.0 &&
                   config.reorder_prob >= 0.0 && config.reorder_prob <= 1.0,
               "FaultPlane: frame probabilities must be in [0, 1]");
  frame_config_ = config;
}

void FaultPlane::transmit_frame(
    const std::vector<std::uint8_t>& frame,
    std::vector<std::vector<std::uint8_t>>* delivered) {
  QRES_REQUIRE(delivered != nullptr, "FaultPlane: null delivery sink");
  ++frame_totals_.frames;
  // Fixed per-frame draw order: reorder gate, corrupt gate, corrupt
  // index, corrupt mask, duplicate gate. Zero probabilities draw nothing.
  const bool hold = frame_config_.reorder_prob > 0.0 &&
                    rng_.bernoulli(frame_config_.reorder_prob);
  std::vector<std::uint8_t> working = frame;
  if (frame_config_.corrupt_prob > 0.0 && !working.empty() &&
      rng_.bernoulli(frame_config_.corrupt_prob)) {
    const std::size_t index = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(working.size()) - 1));
    const auto mask = static_cast<std::uint8_t>(rng_.uniform_int(1, 255));
    working[index] ^= mask;
    ++frame_totals_.corrupted;
  }
  const bool duplicate = frame_config_.duplicate_prob > 0.0 &&
                         rng_.bernoulli(frame_config_.duplicate_prob);
  if (hold) {
    // The frame is held back one slot; a previously held frame finally
    // goes out now. A duplicate copy still escapes ahead of the held
    // original (retransmission racing past it), which is exactly the
    // interleaving the at-least-once dedup has to survive.
    ++frame_totals_.held_back;
    if (held_frame_) delivered->push_back(std::move(*held_frame_));
    if (duplicate) {
      delivered->push_back(working);
      ++frame_totals_.duplicated;
    }
    held_frame_ = std::move(working);
    return;
  }
  delivered->push_back(working);
  if (duplicate) {
    delivered->push_back(working);
    ++frame_totals_.duplicated;
  }
  if (held_frame_) {  // the held frame arrives late, after this one
    delivered->push_back(std::move(*held_frame_));
    held_frame_.reset();
  }
}

void FaultPlane::flush_frames(
    std::vector<std::vector<std::uint8_t>>* delivered) {
  QRES_REQUIRE(delivered != nullptr, "FaultPlane: null delivery sink");
  if (!held_frame_) return;
  delivered->push_back(std::move(*held_frame_));
  held_frame_.reset();
}

}  // namespace qres
