// Counters for the adaptation layer (src/adapt): what the engine did to
// live sessions, what the governor refused, and how often the watchdog's
// hysteresis saved the system from thrashing. Surfaced in the bench
// tables (ext_adaptation, ext_renegotiation) and `qresctl contention`.
//
// Lives in src/adapt (not src/sim) so the layer DAG stays acyclic: the
// engine owns and fills the counters; the simulation above merely
// aggregates them across replicas.
#pragma once

#include <cstdint>

namespace qres {

struct AdaptationStats {
  std::uint64_t upgrades = 0;            ///< committed rank improvements
  std::uint64_t downgrades = 0;          ///< committed rank degradations
  std::uint64_t upgrade_attempts = 0;    ///< AIMD additive probes started
  std::uint64_t downgrade_attempts = 0;  ///< watchdog-triggered renegotiations
  std::uint64_t mbb_aborts = 0;     ///< renegotiations aborted; old plan kept
  std::uint64_t preemptions = 0;    ///< sessions evicted for a higher priority
  std::uint64_t preempt_downgrades = 0;  ///< sessions shed by downgrade instead
  std::uint64_t overload_rejects = 0;    ///< governor kOverload fast-rejects
  std::uint64_t suppressed_flaps = 0;    ///< hysteresis vetoes of raw flips

  /// Merges another run's counters (replica aggregation, like
  /// SimulationStats::merge).
  void merge(const AdaptationStats& other) {
    upgrades += other.upgrades;
    downgrades += other.downgrades;
    upgrade_attempts += other.upgrade_attempts;
    downgrade_attempts += other.downgrade_attempts;
    mbb_aborts += other.mbb_aborts;
    preemptions += other.preemptions;
    preempt_downgrades += other.preempt_downgrades;
    overload_rejects += other.overload_rejects;
    suppressed_flaps += other.suppressed_flaps;
  }
};

}  // namespace qres
