#include "adapt/contention_monitor.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace qres::adapt {

const char* to_string(ContentionLevel level) noexcept {
  switch (level) {
    case ContentionLevel::kCalm: return "calm";
    case ContentionLevel::kContended: return "contended";
  }
  return "?";
}

ContentionMonitor::ContentionMonitor(const BrokerRegistry* registry,
                                     std::vector<ResourceId> watched,
                                     MonitorConfig config)
    : registry_(registry), watched_(std::move(watched)), config_(config) {
  QRES_REQUIRE(registry != nullptr, "ContentionMonitor: null registry");
  QRES_REQUIRE(!watched_.empty(), "ContentionMonitor: nothing to watch");
  QRES_REQUIRE(config_.ewma_halflife > 0.0,
               "ContentionMonitor: EWMA half-life must be positive");
  QRES_REQUIRE(config_.enter_contended > 0.0 &&
                   config_.enter_contended <= config_.exit_contended,
               "ContentionMonitor: hysteresis band must satisfy "
               "0 < enter_contended <= exit_contended");
  for (ResourceId id : watched_) {
    registry_->broker(id);  // validates existence
    states_.insert_or_assign(id, ResourceContention{});
  }
}

void ContentionMonitor::sample(double now) {
  for (ResourceId id : watched_) {
    ResourceContention& s = states_.at(id);
    const double alpha = registry_->broker(id).observe(now).alpha;
    if (!s.sampled) {
      s.ewma_alpha = alpha;
      s.sampled = true;
    } else {
      // Irregular-interval EWMA: the old smoothed value decays with the
      // configured half-life, so the smoothing is invariant to the tick
      // period. dt == 0 keeps the previous value (idempotent re-sample).
      const double dt = now - s.last_sample;
      const double keep =
          dt <= 0.0 ? 1.0 : std::pow(0.5, dt / config_.ewma_halflife);
      s.ewma_alpha = alpha + (s.ewma_alpha - alpha) * keep;
    }
    s.last_alpha = alpha;
    s.last_sample = now;

    if (s.level == ContentionLevel::kCalm) {
      if (s.ewma_alpha < config_.enter_contended) {
        s.level = ContentionLevel::kContended;
        ++s.flips;
      } else if (alpha < config_.enter_contended) {
        // The raw sample says "contended" but the smoothed value holds
        // the line — a flap the watchdog suppressed.
        ++s.suppressed_flaps;
      }
    } else {
      if (s.ewma_alpha > config_.exit_contended) {
        s.level = ContentionLevel::kCalm;
        ++s.flips;
      } else if (alpha > config_.exit_contended) {
        ++s.suppressed_flaps;
      }
    }
  }
}

const ResourceContention& ContentionMonitor::state(ResourceId id) const {
  return states_.at(id);
}

bool ContentionMonitor::contended(ResourceId id) const {
  const auto it = states_.find(id);
  return it != states_.end() &&
         it->second.level == ContentionLevel::kContended;
}

double ContentionMonitor::bottleneck_ewma() const noexcept {
  double worst = 1.0;
  for (const auto& [id, s] : states_)
    if (s.sampled && s.ewma_alpha < worst) worst = s.ewma_alpha;
  return worst;
}

ResourceId ContentionMonitor::bottleneck_resource() const noexcept {
  ResourceId bottleneck;
  double worst = 1.0;
  for (const auto& [id, s] : states_) {
    if (s.sampled && s.ewma_alpha < worst) {
      worst = s.ewma_alpha;
      bottleneck = id;
    }
  }
  return bottleneck;
}

std::uint64_t ContentionMonitor::total_suppressed_flaps() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, s] : states_) total += s.suppressed_flaps;
  return total;
}

std::uint64_t ContentionMonitor::total_flips() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, s] : states_) total += s.flips;
  return total;
}

}  // namespace qres::adapt
