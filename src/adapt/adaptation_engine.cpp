#include "adapt/adaptation_engine.hpp"

#include "util/assert.hpp"

namespace qres::adapt {
namespace {
constexpr double kEps = 1e-9;
}  // namespace

const char* to_string(SessionPriority priority) noexcept {
  switch (priority) {
    case SessionPriority::kBackground: return "background";
    case SessionPriority::kStandard: return "standard";
    case SessionPriority::kCritical: return "critical";
  }
  return "?";
}

const char* to_string(AdaptationEvent::Kind kind) noexcept {
  switch (kind) {
    case AdaptationEvent::Kind::kAdmit: return "admit";
    case AdaptationEvent::Kind::kOverloadReject: return "overload-reject";
    case AdaptationEvent::Kind::kUpgrade: return "upgrade";
    case AdaptationEvent::Kind::kDowngrade: return "downgrade";
    case AdaptationEvent::Kind::kMbbAbort: return "mbb-abort";
    case AdaptationEvent::Kind::kPreemptDowngrade: return "preempt-downgrade";
    case AdaptationEvent::Kind::kEvict: return "evict";
    case AdaptationEvent::Kind::kDepart: return "depart";
  }
  return "?";
}

ContentionGovernor::ContentionGovernor(const ContentionMonitor* monitor,
                                       double alpha_reject,
                                       int protect_priority)
    : monitor_(monitor),
      alpha_reject_(alpha_reject),
      protect_priority_(protect_priority) {
  QRES_REQUIRE(monitor != nullptr, "ContentionGovernor: null monitor");
  QRES_REQUIRE(alpha_reject > 0.0 && alpha_reject <= 1.0,
               "ContentionGovernor: alpha_reject must be in (0, 1]");
}

bool ContentionGovernor::should_reject(double /*now*/, int priority) const {
  return priority < protect_priority_ &&
         monitor_->bottleneck_ewma() < alpha_reject_;
}

AdaptationEngine::AdaptationEngine(SessionCoordinator* coordinator,
                                   ContentionMonitor* monitor,
                                   const IPlanner* admit_planner,
                                   const IPlanner* degrade_planner,
                                   EngineConfig config)
    : coordinator_(coordinator),
      monitor_(monitor),
      admit_planner_(admit_planner),
      degrade_planner_(degrade_planner),
      config_(config) {
  QRES_REQUIRE(coordinator != nullptr, "AdaptationEngine: null coordinator");
  QRES_REQUIRE(monitor != nullptr, "AdaptationEngine: null monitor");
  QRES_REQUIRE(admit_planner != nullptr && degrade_planner != nullptr,
               "AdaptationEngine: null planner");
  QRES_REQUIRE(config_.upgrade_cooldown >= 0.0,
               "AdaptationEngine: negative upgrade cooldown");
}

const SessionRecord* AdaptationEngine::record(SessionId session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

const FlatMap<ResourceId, double>* AdaptationEngine::floor(
    SessionId session) const {
  const auto it = floors_.find(session);
  return it == floors_.end() ? nullptr : &it->second;
}

void AdaptationEngine::push_event(AdaptationEvent::Kind kind, double time,
                                  SessionId session, std::size_t old_rank,
                                  std::size_t new_rank) {
  events_.push_back({kind, time, session, old_rank, new_rank});
}

void AdaptationEngine::audit_transition(
    SessionId id, const std::vector<std::pair<ResourceId, double>>& before,
    const std::vector<std::pair<ResourceId, double>>& after) {
  if (!auditor_) return;
  FlatMap<ResourceId, double> b;
  FlatMap<ResourceId, double> a;
  for (const auto& [res, amt] : before) b[res] += amt;
  for (const auto& [res, amt] : after) a[res] += amt;
  for (const auto& [res, amt] : a) {
    const auto it = b.find(res);
    const double had = it == b.end() ? 0.0 : it->second;
    if (amt - had > kEps) auditor_->on_reserved(id, res, amt - had);
  }
  for (const auto& [res, amt] : b) {
    const auto it = a.find(res);
    const double have = it == a.end() ? 0.0 : it->second;
    if (amt - have > kEps) auditor_->on_released(id, res, amt - have);
  }
}

bool AdaptationEngine::renegotiate_session(SessionId id, SessionRecord& rec,
                                           double now,
                                           const IPlanner& planner,
                                           std::size_t min_rank, Rng& rng) {
  const std::vector<std::pair<ResourceId, double>> before = rec.holdings;
  EstablishResult r = coordinator_->renegotiate(
      id, now, planner, rng, rec.scale, rec.holdings, min_rank, nullptr,
      [this, id](const std::vector<std::pair<ResourceId, double>>&
                     committed) {
        // Commit point: every delta reserved, nothing released yet. The
        // session's guaranteed floor switches from the old plan to the
        // new one at this very instant.
        FlatMap<ResourceId, double>& floor = floors_[id];
        floor.clear();
        for (const auto& [res, amt] : committed)
          floor.insert_or_assign(res, amt);
      });
  if (r.success) {
    rec.rank = r.plan->end_to_end_rank;
    rec.holdings = r.holdings;
    audit_transition(id, before, rec.holdings);
    return true;
  }
  // Abort: the old plan stands (and so does the old floor). Delta
  // reservations whose rollback release could not be dispatched stay
  // held; fold them into the book so it keeps matching the broker.
  if (!r.leaked.empty()) {
    FlatMap<ResourceId, double> book;
    for (const auto& [res, amt] : rec.holdings) book[res] += amt;
    for (const auto& [res, amt] : r.leaked) book[res] += amt;
    std::vector<std::pair<ResourceId, double>> after(book.begin(),
                                                     book.end());
    audit_transition(id, before, after);
    rec.holdings = std::move(after);
  }
  return false;
}

SessionId AdaptationEngine::pick_victim(ResourceId contested,
                                        SessionPriority max_priority) const {
  SessionId best;
  SessionPriority best_priority = max_priority;
  for (const auto& [id, rec] : sessions_) {
    if (rec.priority >= max_priority) continue;
    // An invalid contested id (kNoPlan: saturation without a named
    // resource) lets any lower-priority holder qualify.
    bool holds = !contested.valid();
    for (const auto& [res, amt] : rec.holdings)
      if (res == contested && amt > kEps) {
        holds = true;
        break;
      }
    if (!holds) continue;
    if (!best.valid() || rec.priority < best_priority) {
      best = id;
      best_priority = rec.priority;
    }
  }
  return best;
}

bool AdaptationEngine::shed_one(SessionId victim, double now, Rng& rng) {
  auto it = sessions_.find(victim);
  QRES_REQUIRE(it != sessions_.end(), "shed_one: victim is not live");
  SessionRecord& rec = it->second;
  // Graceful first: push the victim to the worst end-to-end rank, which
  // frees the difference without killing it.
  if (rec.rank + 1 < rec.num_ranks) {
    const std::size_t old_rank = rec.rank;
    if (renegotiate_session(victim, rec, now, *degrade_planner_,
                            rec.num_ranks - 1, rng)) {
      ++stats_.preempt_downgrades;
      push_event(AdaptationEvent::Kind::kPreemptDowngrade, now, victim,
                 old_rank, rec.rank);
      if (on_rank_changed) on_rank_changed(victim, old_rank, rec.rank);
      return true;
    }
  }
  // Last resort: evict. teardown releases through the local brokers, so
  // this cannot be stranded by control-plane faults.
  coordinator_->teardown(rec.holdings, victim, now);
  if (auditor_) auditor_->on_session_released(victim);
  ++stats_.preemptions;
  push_event(AdaptationEvent::Kind::kEvict, now, victim, rec.rank, rec.rank);
  sessions_.erase(victim);
  floors_.erase(victim);
  if (on_evicted) on_evicted(victim);
  return true;
}

EstablishResult AdaptationEngine::admit(SessionId session, double now,
                                        SessionPriority priority,
                                        double scale, Rng& rng) {
  QRES_REQUIRE(session.valid(), "AdaptationEngine::admit: invalid session");
  QRES_REQUIRE(!live(session),
               "AdaptationEngine::admit: session already live");
  coordinator_->set_priority_hint(static_cast<int>(priority));
  FlatMap<ResourceId, double> leaked_book;
  const auto track_leaks = [&](const EstablishResult& r) {
    for (const auto& [res, amt] : r.leaked) {
      leaked_book[res] += amt;
      if (auditor_) auditor_->on_reserved(session, res, amt);
    }
  };

  EstablishResult result =
      coordinator_->establish(session, now, *admit_planner_, rng, scale);
  track_leaks(result);
  if (result.outcome == EstablishOutcome::kOverload) {
    ++stats_.overload_rejects;
    push_event(AdaptationEvent::Kind::kOverloadReject, now, session, 0, 0);
    return result;
  }

  // Priority shedding: a capacity rejection may displace strictly
  // lower-priority holders — downgrade first, evict as the last resort —
  // then retry, a bounded number of times. kAdmission names the
  // contested resource; kNoPlan (the usual face of saturation under
  // accurate observations) does not, so any holder qualifies then.
  if (config_.enabled && config_.allow_preemption &&
      priority > SessionPriority::kBackground) {
    std::size_t shed = 0;
    while (!result.success &&
           (result.outcome == EstablishOutcome::kAdmission ||
            result.outcome == EstablishOutcome::kNoPlan) &&
           shed < config_.max_preemptions_per_admit) {
      const SessionId victim = pick_victim(result.failed_resource, priority);
      if (!victim.valid() || !shed_one(victim, now, rng)) break;
      ++shed;
      result =
          coordinator_->establish(session, now, *admit_planner_, rng, scale);
      track_leaks(result);
    }
  }

  if (!result.success) {
    // Rollback releases stuck on unreachable proxies stay held by a
    // session that was never admitted; remember them for cleanup.
    for (const auto& [res, amt] : leaked_book)
      zombies_.push_back({session, res, amt});
    return result;
  }

  SessionRecord rec;
  rec.priority = priority;
  rec.scale = scale;
  rec.rank = result.plan->end_to_end_rank;
  rec.num_ranks = result.sinks.size();
  rec.admitted_at = now;
  rec.holdings = result.holdings;
  if (auditor_)
    for (const auto& [res, amt] : rec.holdings)
      auditor_->on_reserved(session, res, amt);
  FlatMap<ResourceId, double>& floor = floors_[session];
  floor.clear();
  for (const auto& [res, amt] : rec.holdings) floor[res] += amt;
  // Leaks from earlier failed attempts of this same admission belong to
  // this session too; fold them in so the final teardown settles them.
  if (!leaked_book.empty()) {
    FlatMap<ResourceId, double> book;
    for (const auto& [res, amt] : rec.holdings) book[res] += amt;
    for (const auto& [res, amt] : leaked_book) book[res] += amt;
    rec.holdings.assign(book.begin(), book.end());
  }
  push_event(AdaptationEvent::Kind::kAdmit, now, session, rec.rank,
             rec.rank);
  sessions_.insert_or_assign(session, std::move(rec));
  return result;
}

void AdaptationEngine::depart(SessionId session, double now) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  coordinator_->teardown(it->second.holdings, session, now);
  if (auditor_) auditor_->on_session_released(session);
  push_event(AdaptationEvent::Kind::kDepart, now, session, it->second.rank,
             it->second.rank);
  sessions_.erase(session);
  floors_.erase(session);
}

std::size_t AdaptationEngine::release_zombies(double now) {
  const std::size_t released = zombies_.size();
  for (const ZombieHolding& z : zombies_) {
    coordinator_->teardown({{z.resource, z.amount}}, z.session, now);
    if (auditor_) auditor_->on_released(z.session, z.resource, z.amount);
  }
  zombies_.clear();
  return released;
}

void AdaptationEngine::tick(double now, Rng& rng) {
  if (!config_.enabled) return;
  monitor_->sample(now);
  stats_.suppressed_flaps = monitor_->total_suppressed_flaps();
  const double calm_gate = monitor_->config().exit_contended;
  for (auto& [id, rec] : sessions_) {
    bool held_contended = false;
    if (!config_.upgrade_only)
      for (const auto& [res, amt] : rec.holdings)
        if (amt > kEps && monitor_->contended(res)) {
          held_contended = true;
          break;
        }
    if (held_contended && rec.rank + 1 < rec.num_ranks) {
      // Watchdog fired: multiplicative decrease. The tradeoff planner's
      // alpha-scaled psi bound decides how far to drop (min_rank only
      // forbids staying put or improving).
      ++stats_.downgrade_attempts;
      const std::size_t old_rank = rec.rank;
      if (renegotiate_session(id, rec, now, *degrade_planner_, rec.rank + 1,
                              rng)) {
        ++stats_.downgrades;
        push_event(AdaptationEvent::Kind::kDowngrade, now, id, old_rank,
                   rec.rank);
        if (on_rank_changed) on_rank_changed(id, old_rank, rec.rank);
      } else {
        ++stats_.mbb_aborts;
        push_event(AdaptationEvent::Kind::kMbbAbort, now, id, old_rank,
                   rec.rank);
      }
    } else if (!held_contended && rec.rank > 0 &&
               now - rec.last_upgrade_try >= config_.upgrade_cooldown &&
               (config_.upgrade_only ||
                monitor_->bottleneck_ewma() >= calm_gate)) {
      // Contention cleared: additive increase — probe exactly one rank
      // up, rate-limited per session. With its own holdings credited the
      // current plan stays feasible, so the probe commits either one
      // rank better or a no-op; it can regress only when a proxy died
      // since the last tick.
      rec.last_upgrade_try = now;
      ++stats_.upgrade_attempts;
      const std::size_t old_rank = rec.rank;
      if (renegotiate_session(id, rec, now, *admit_planner_, rec.rank - 1,
                              rng)) {
        if (rec.rank < old_rank) {
          ++stats_.upgrades;
          push_event(AdaptationEvent::Kind::kUpgrade, now, id, old_rank,
                     rec.rank);
          if (on_rank_changed) on_rank_changed(id, old_rank, rec.rank);
        } else if (rec.rank > old_rank) {
          ++stats_.downgrades;
          push_event(AdaptationEvent::Kind::kDowngrade, now, id, old_rank,
                     rec.rank);
          if (on_rank_changed) on_rank_changed(id, old_rank, rec.rank);
        }
      } else {
        ++stats_.mbb_aborts;
        push_event(AdaptationEvent::Kind::kMbbAbort, now, id, old_rank,
                   rec.rank);
      }
    }
  }
}

}  // namespace qres::adapt
