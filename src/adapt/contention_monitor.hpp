// Contention watchdog (adaptation layer; DESIGN.md §8).
//
// The paper plans once at admission and then only enforces; its §6 names
// dynamic resource fluctuation as the open problem. The ContentionMonitor
// is the watchdog half of our answer: it periodically samples each
// broker's availability change index alpha (eq. 5, alpha < 1 means
// availability is trending down) and maintains
//
//   * an EWMA of alpha per resource, so one noisy report neither triggers
//     a downgrade storm nor lets a genuinely contended resource hide
//     behind a lucky sample, and
//   * a hysteresis band: a resource becomes *contended* only when its
//     EWMA drops below `enter_contended` and becomes *calm* again only
//     when it rises above `exit_contended` (> enter). Raw-alpha crossings
//     that the band vetoes are counted as suppressed flaps — the
//     anti-thrash metric surfaced in bench tables and `qresctl
//     contention`.
//
// The AdaptationEngine consumes the per-resource level to decide when to
// degrade or upgrade sessions; the ContentionGovernor consumes the
// bottleneck EWMA to fast-reject doomed admissions under overload.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/registry.hpp"
#include "util/flat_map.hpp"

namespace qres::adapt {

struct MonitorConfig {
  /// Half-life (in simulation time units) of the per-resource alpha EWMA:
  /// a sample `halflife` old contributes half the weight of a fresh one.
  double ewma_halflife = 2.0;
  /// A calm resource becomes contended when its EWMA alpha drops below
  /// this.
  double enter_contended = 0.85;
  /// A contended resource becomes calm again only above this (must be
  /// >= enter_contended; the gap is the hysteresis band).
  double exit_contended = 0.95;
};

enum class ContentionLevel : std::uint8_t { kCalm, kContended };

const char* to_string(ContentionLevel level) noexcept;

/// Per-resource watchdog state (exposed read-only for tests, benches and
/// the `qresctl contention` dump).
struct ResourceContention {
  double last_alpha = 1.0;   ///< most recent raw alpha sample
  double ewma_alpha = 1.0;   ///< smoothed alpha (what the bands act on)
  double last_sample = 0.0;  ///< time of the most recent sample
  bool sampled = false;      ///< false until the first sample() covers it
  ContentionLevel level = ContentionLevel::kCalm;
  std::uint64_t flips = 0;             ///< committed level transitions
  std::uint64_t suppressed_flaps = 0;  ///< raw crossings the band vetoed
};

class ContentionMonitor {
 public:
  /// Watches `watched` resources of `registry` (which must outlive the
  /// monitor). Sampling order and all state iteration are deterministic.
  ContentionMonitor(const BrokerRegistry* registry,
                    std::vector<ResourceId> watched,
                    MonitorConfig config = {});

  /// Takes one observation of every watched broker at `now` and updates
  /// EWMA + hysteresis state. Re-sampling the same timestamp is
  /// idempotent for the EWMA (zero elapsed time keeps the old smoothed
  /// value's weight at one).
  void sample(double now);

  const ResourceContention& state(ResourceId id) const;
  bool contended(ResourceId id) const;

  /// Smallest EWMA alpha over the watched set (1.0 before any sample):
  /// the contention index of the environment's bottleneck.
  double bottleneck_ewma() const noexcept;
  ResourceId bottleneck_resource() const noexcept;

  std::uint64_t total_suppressed_flaps() const noexcept;
  std::uint64_t total_flips() const noexcept;

  const std::vector<ResourceId>& watched() const noexcept { return watched_; }
  const MonitorConfig& config() const noexcept { return config_; }

 private:
  const BrokerRegistry* registry_;
  std::vector<ResourceId> watched_;
  MonitorConfig config_;
  FlatMap<ResourceId, ResourceContention> states_;
};

}  // namespace qres::adapt
