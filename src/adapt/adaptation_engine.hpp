// Graceful-degradation adaptation engine (DESIGN.md §8).
//
// Sits on top of SessionCoordinator and reacts to the ContentionMonitor's
// watchdog per live session:
//
//   * downgrade — when a session holds a *contended* resource and can
//     still degrade, renegotiate it make-before-break onto the tradeoff
//     planner's choice at a strictly worse end-to-end rank (the
//     multiplicative-decrease half of AIMD: the tradeoff policy's
//     alpha-scaled psi bound drops the session as far as the trend
//     demands, not one rank at a time);
//   * upgrade — when the environment is calm again, probe one rank up
//     (additive increase), rate-limited by a per-session cooldown;
//   * priority shedding — an admission that fails on capacity may, if the
//     arriving session outranks someone, shed the lowest-priority holder
//     of the contested resource: downgrade-to-worst first, evict as the
//     last resort;
//   * overload governance — a ContentionGovernor plugged into the
//     coordinator fast-rejects low-priority admissions (kOverload) while
//     the bottleneck EWMA alpha is below the reject threshold.
//
// Every transition is make-before-break (SessionCoordinator::renegotiate):
// the engine's per-session holdings *floor* — what the broker must hold
// for the session at minimum, at every instant, even mid-transition and
// under control-plane faults — moves only at the renegotiation commit
// point. The fuzz harness (tests/fuzz/adapt_fuzz) audits broker state
// against this floor from inside the transport, i.e. in the middle of the
// make/break windows, and the ReservationAuditor proves conservation of
// every unit the engine touched.
//
// With `enabled = false` the engine never samples a broker and never
// renegotiates — admissions pass straight through to the coordinator, so
// a disabled-engine run is bit-identical to a plain one (fuzzed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "adapt/contention_monitor.hpp"
#include "adapt/stats.hpp"
#include "broker/auditor.hpp"
#include "core/planner.hpp"
#include "proxy/qos_proxy.hpp"
#include "util/flat_map.hpp"

namespace qres::adapt {

/// Session importance for shedding and overload governance. Higher values
/// outrank lower ones; only strictly lower-priority sessions may be shed
/// to admit a session, and the governor only fast-rejects priorities
/// below its protection threshold.
enum class SessionPriority : int {
  kBackground = 0,
  kStandard = 1,
  kCritical = 2,
};

const char* to_string(SessionPriority priority) noexcept;

/// Overload-aware admission governor: while the watchdog's bottleneck
/// EWMA alpha is below `alpha_reject`, establishments with priority below
/// `protect_priority` are rejected fast (kOverload) instead of churning
/// the brokers with plan/reserve/rollback rounds they would lose anyway.
class ContentionGovernor final : public IAdmissionGovernor {
 public:
  ContentionGovernor(const ContentionMonitor* monitor,
                     double alpha_reject = 0.7,
                     int protect_priority =
                         static_cast<int>(SessionPriority::kStandard));

  bool should_reject(double now, int priority) const override;

  double alpha_reject() const noexcept { return alpha_reject_; }
  int protect_priority() const noexcept { return protect_priority_; }

 private:
  const ContentionMonitor* monitor_;
  double alpha_reject_;
  int protect_priority_;
};

struct EngineConfig {
  /// Master switch: disabled, the engine is a transparent pass-through to
  /// the coordinator (bit-identical to not having an engine at all).
  bool enabled = true;
  /// Minimum time between upgrade probes of one session (AIMD additive
  /// increase is deliberately slow; downgrades are never rate-limited).
  double upgrade_cooldown = 10.0;
  /// Highest-priority admissions may shed at most this many victims per
  /// attempt before giving up.
  std::size_t max_preemptions_per_admit = 4;
  /// Allows priority shedding at admission (the "+priorities" bench arm;
  /// off, admissions fail exactly like the plain coordinator's).
  bool allow_preemption = true;
  /// Runs the watchdog pass as pure make-before-break upgrade probing:
  /// contention state is ignored entirely — no downgrades, no calm gate
  /// on upgrades. For environments where graceful degradation is out of
  /// scope and only the renegotiation mechanism is under study
  /// (ext_renegotiation's engine arm).
  bool upgrade_only = false;
};

/// One live session as the engine tracks it.
struct SessionRecord {
  SessionPriority priority = SessionPriority::kStandard;
  double scale = 1.0;
  std::size_t rank = 0;       ///< current end-to-end rank (0 = best)
  std::size_t num_ranks = 1;  ///< sink count; worst rank is num_ranks - 1
  double admitted_at = 0.0;
  double last_upgrade_try = -1e300;
  /// The engine's book of what the brokers hold for this session —
  /// including reservations stuck on unreachable proxies (leaked rollback
  /// releases), folded in so the book always matches broker state.
  std::vector<std::pair<ResourceId, double>> holdings;
};

/// Adaptation decision log entry (dumped by `qresctl contention`).
struct AdaptationEvent {
  enum class Kind : std::uint8_t {
    kAdmit,
    kOverloadReject,
    kUpgrade,
    kDowngrade,
    kMbbAbort,          ///< renegotiation aborted; old plan kept
    kPreemptDowngrade,  ///< victim shed to worst rank for an admission
    kEvict,             ///< victim torn down for an admission
    kDepart,
  };
  Kind kind;
  double time = 0.0;
  SessionId session;
  std::size_t old_rank = 0;
  std::size_t new_rank = 0;
};

const char* to_string(AdaptationEvent::Kind kind) noexcept;

class AdaptationEngine {
 public:
  /// `admit_planner` establishes and probes upgrades (the basic
  /// psi-minimal algorithm in the benches); `degrade_planner` handles
  /// watchdog downgrades and shedding (the §4.3.1 tradeoff policy, whose
  /// alpha-scaled bound is the multiplicative-decrease control law). All
  /// pointers must outlive the engine.
  AdaptationEngine(SessionCoordinator* coordinator,
                   ContentionMonitor* monitor, const IPlanner* admit_planner,
                   const IPlanner* degrade_planner, EngineConfig config = {});

  /// Attaches the conservation auditor: every broker-state change the
  /// engine initiates is mirrored into the model as it happens.
  void set_auditor(ReservationAuditor* auditor) { auditor_ = auditor; }

  /// Fired after a committed rank change (old rank, new rank).
  std::function<void(SessionId, std::size_t, std::size_t)> on_rank_changed;
  /// Fired after a session is evicted by priority shedding.
  std::function<void(SessionId)> on_evicted;

  /// Admits `session` through the coordinator (governor consulted there).
  /// On a capacity rejection, `allow_preemption` and a priority above
  /// kBackground shed lower-priority holders of the contested resource
  /// and retry. On success the session is tracked for adaptation.
  EstablishResult admit(SessionId session, double now,
                        SessionPriority priority, double scale, Rng& rng);

  /// Tears the session down and forgets it (no-op when not live, so
  /// departure races eviction idempotently).
  void depart(SessionId session, double now);

  /// One watchdog pass: sample the monitor, then AIMD-adapt every live
  /// session in deterministic (session-id) order. Never runs disabled.
  void tick(double now, Rng& rng);

  bool live(SessionId session) const { return sessions_.contains(session); }
  const SessionRecord* record(SessionId session) const;
  std::size_t live_count() const noexcept { return sessions_.size(); }
  const FlatMap<SessionId, SessionRecord>& sessions() const noexcept {
    return sessions_;
  }

  /// The make-before-break floor: per live session, the per-resource
  /// amounts its brokers are guaranteed to hold at this very instant,
  /// valid *during* renegotiations (it moves only at commit points).
  /// Null for sessions the engine does not track.
  const FlatMap<ResourceId, double>* floor(SessionId session) const;

  /// Reservations stranded by failed admissions whose rollback release
  /// could not be dispatched (the owning proxy was unreachable). They
  /// stay held on the brokers — leased runs reclaim them by expiry;
  /// release_zombies() models that cleanup explicitly and settles the
  /// auditor's book. Returns the number of holdings released.
  struct ZombieHolding {
    SessionId session;
    ResourceId resource;
    double amount = 0.0;
  };
  const std::vector<ZombieHolding>& zombies() const noexcept {
    return zombies_;
  }
  std::size_t release_zombies(double now);

  const AdaptationStats& stats() const noexcept { return stats_; }
  const std::vector<AdaptationEvent>& events() const noexcept {
    return events_;
  }
  const ContentionMonitor& monitor() const noexcept { return *monitor_; }
  const EngineConfig& config() const noexcept { return config_; }

 private:
  /// Renegotiates one tracked session make-before-break and reconciles
  /// the record, the floor and the auditor with whatever happened
  /// (committed transition, abort, leaked deltas). Returns success.
  bool renegotiate_session(SessionId id, SessionRecord& rec, double now,
                           const IPlanner& planner, std::size_t min_rank,
                           Rng& rng);

  /// Lowest-priority (then lowest-id) live session below `max_priority`
  /// holding `contested`; invalid id when nobody qualifies.
  SessionId pick_victim(ResourceId contested, SessionPriority max_priority)
      const;

  /// Sheds one victim: downgrade-to-worst when it still has ranks to
  /// give, eviction otherwise. Returns false when shedding failed (the
  /// victim could not be moved or released).
  bool shed_one(SessionId victim, double now, Rng& rng);

  /// Applies the auditor delta between two holdings books of a session.
  void audit_transition(
      SessionId id, const std::vector<std::pair<ResourceId, double>>& before,
      const std::vector<std::pair<ResourceId, double>>& after);

  void push_event(AdaptationEvent::Kind kind, double time, SessionId session,
                  std::size_t old_rank, std::size_t new_rank);

  SessionCoordinator* coordinator_;
  ContentionMonitor* monitor_;
  const IPlanner* admit_planner_;
  const IPlanner* degrade_planner_;
  EngineConfig config_;
  ReservationAuditor* auditor_ = nullptr;
  FlatMap<SessionId, SessionRecord> sessions_;
  FlatMap<SessionId, FlatMap<ResourceId, double>> floors_;
  std::vector<ZombieHolding> zombies_;
  AdaptationStats stats_;
  std::vector<AdaptationEvent> events_;
};

}  // namespace qres::adapt
