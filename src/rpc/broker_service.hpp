// The server side of the typed control plane: a BrokerRegistry exposed
// as an IFrameServer (DESIGN.md §12).
//
// Every frame is strictly decoded (undecodable frames produce no reply —
// the client's at-least-once loop retransmits), then routed:
//
//   * mutating requests (reserve/release/renew/reconcile) go through the
//     target broker's bounded ExecutionQueue. A full queue fast-rejects
//     with a typed kBackpressure reply — never blocks, never drops
//     silently. In auto_drain mode (synchronous coordinator calls) the
//     queue is drained immediately after the post; with auto_drain off
//     the caller pipelines posts and calls drain_all() later (the
//     overload bench arm and the fuzz backpressure arm).
//   * QueryRequest is a read-only availability sweep and is served at
//     ingress, bypassing the queues.
//
// At-least-once semantics: executed requests are remembered in a bounded
// request-id -> reply cache, so a redelivered duplicate (retransmission,
// frame duplication, reordering) returns the original reply instead of
// executing twice. Backpressure and deadline fast-rejects are NOT
// cached: a retry of the same request id may succeed once the queue has
// drained. Deadlines are enforced both at ingress and again at drain
// time, so a request that expired while queued is answered
// kDeadlineExceeded rather than executed late.
//
// Crash durability of the cache (DESIGN.md §13): when the target broker
// journals, every executed reply is journaled as a kReplyCache record
// grouped with the mutation records its execution appended, and
// rebuild_dedup() re-derives the cache for a restarted broker from the
// retained journal. Without that rebuild, the model checker's
// demo-dedup topology shows the double grant: executed grant survives
// the crash in the journal, the cache entry does not, and the client's
// retry of the *same request id* executes again on top of the restored
// holding. Two companion rules close the remaining window:
//   * a request for a down broker is answered kBrokerDown at ingress,
//     *before* the replay cache is consulted — a cached kOk from before
//     the crash must not be served while journal recovery may still lose
//     the grant it describes;
//   * the dedup horizon equals the retained journal: compaction drops
//     kReplyCache records older than the newest snapshot, so sinks that
//     compact bound the horizon by snapshot_every (documented trade-off).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "broker/registry.hpp"
#include "rpc/frame.hpp"
#include "rpc/service_queue.hpp"
#include "rpc/wire.hpp"
#include "util/annotations.hpp"
#include "util/flat_map.hpp"

namespace qres::rpc {

class BrokerService : public IFrameServer {
 public:
  struct Config {
    std::size_t queue_capacity = 64;    ///< per-broker execution queue bound
    std::size_t dedup_capacity = 1024;  ///< request-id replay cache entries
    /// Execute queued requests immediately after each post (synchronous
    /// coordinator mode). Off = the caller pipelines and drains.
    bool auto_drain = true;
    /// Answer kBrokerDown at ingress, before the dedup cache is consulted
    /// (the fixed ordering — see the header comment). Off preserves the
    /// pre-fix ordering so the checked-in counterexample trace stays
    /// replayable (tools/testdata/mc_traces/).
    bool down_check_before_dedup = true;
  };

  explicit BrokerService(BrokerRegistry* registry);
  BrokerService(BrokerRegistry* registry, Config config);

  // IFrameServer. Thread-safe for concurrent producers; draining
  // (auto_drain or drain_all) must stay on the single consumer thread.
  void handle_frame(const std::vector<std::uint8_t>& frame, double now,
                    std::vector<std::vector<std::uint8_t>>* replies) override;

  /// Executes every queued request on every broker queue (post order per
  /// broker), appending the replies. Single-consumer side.
  void drain_all(double now, std::vector<std::vector<std::uint8_t>>* replies);

  struct Stats {
    std::uint64_t frames = 0;            ///< frames received
    std::uint64_t decode_rejects = 0;    ///< typed decode failures (no reply)
    std::uint64_t non_requests = 0;      ///< well-formed but not a request
    std::uint64_t executed = 0;          ///< requests actually executed
    std::uint64_t duplicates = 0;        ///< answered from the dedup cache
    std::uint64_t backpressure = 0;      ///< kBackpressure fast-rejects
    std::uint64_t deadline_expired = 0;  ///< kDeadlineExceeded replies
    std::uint64_t bad_requests = 0;      ///< kBadRequest replies
    std::uint64_t broker_down = 0;       ///< kBrokerDown replies
    std::uint64_t not_primary = 0;       ///< stale-epoch redirects issued
    std::uint64_t quorum_rejects = 0;    ///< sync grants reverted (no quorum)
  };
  Stats stats() const QRES_EXCLUDES(mutex_);

  /// One replay-cache entry: the encoded reply plus the resource whose
  /// broker executed it (invalid for queries — they span resources and
  /// are never rebuilt from a journal).
  struct CachedReply {
    std::vector<std::uint8_t> bytes;
    ResourceId resource;
  };

  /// The full replay cache, copyable — the model checker's cloning seam.
  struct DedupState {
    FlatMap<std::uint64_t, CachedReply> entries;
    std::deque<std::uint64_t> order;
  };
  DedupState dedup_state() const QRES_EXCLUDES(mutex_);
  void restore_dedup(DedupState state) QRES_EXCLUDES(mutex_);

  /// Drops every cached reply attributed to `resource` (the service-side
  /// half of a broker crash when cache and broker share a process).
  void forget_dedup(ResourceId resource) QRES_EXCLUDES(mutex_);

  /// Re-derives `resource`'s replay-cache entries from its (restarted)
  /// broker's journal: drops whatever the in-memory cache holds for the
  /// resource, then inserts one entry per retained kReplyCache record.
  /// Call after ResourceBroker::restart() — the cache then agrees with
  /// journal truth even when a lossy tail took executed grants with it.
  /// For a replicated resource the promoted primary's journal is the
  /// source (call after failover). Later records win: a quorum-reverted
  /// grant journals a second kReplyCache record for the same id, and the
  /// rebuilt cache must serve the revised (kBrokerDown) reply, not the
  /// optimistic one. No-op for resources with no journaled broker.
  void rebuild_dedup(ResourceId resource) QRES_EXCLUDES(mutex_);

  /// The deepest any broker's execution queue has ever been.
  std::size_t max_queue_high_water() const;

  /// Per-broker queue statistics (empty entry when a broker has received
  /// no mutating request yet).
  const ExecutionQueue* queue_for(ResourceId resource) const;

 private:
  /// Executes one already-dequeued request at time `now`; returns the
  /// encoded reply (always replies — requests that reach execution are
  /// well-formed).
  std::vector<std::uint8_t> execute(const AnyMessage& request, double now);
  std::vector<std::uint8_t> serve_query(const QueryRequest& request,
                                        double now);
  ExecutionQueue& queue_for_mut(ResourceId resource);
  bool known_resource(ResourceId resource) const;

  /// Dedup cache lookup; true when `request_id` was already executed (the
  /// cached reply is appended to `replies`).
  bool replay_cached(std::uint64_t request_id,
                     std::vector<std::vector<std::uint8_t>>* replies)
      QRES_EXCLUDES(mutex_);
  /// True when the entry was newly inserted (false: id already cached —
  /// the caller must not journal a second kReplyCache record for it).
  bool cache_reply(std::uint64_t request_id,
                   const std::vector<std::uint8_t>& reply, ResourceId resource)
      QRES_EXCLUDES(mutex_);
  /// Replaces an already-cached reply in place (inserts when absent).
  /// Only the replication quorum-revert path uses this: the optimistic
  /// grant reply must never be replayed once the grant was compensated.
  void overwrite_cached_reply(std::uint64_t request_id,
                              const std::vector<std::uint8_t>& reply,
                              ResourceId resource) QRES_EXCLUDES(mutex_);
  void insert_dedup_locked(std::uint64_t request_id, CachedReply entry)
      QRES_REQUIRES(mutex_);

  BrokerRegistry* registry_;
  Config config_;
  /// Queues are created lazily, one per broker; the unique_ptr keeps them
  /// stable (ExecutionQueue owns a Mutex and cannot move).
  FlatMap<ResourceId, std::unique_ptr<ExecutionQueue>> queues_;
  mutable Mutex mutex_;
  FlatMap<std::uint64_t, CachedReply> dedup_ QRES_GUARDED_BY(mutex_);
  std::deque<std::uint64_t> dedup_order_ QRES_GUARDED_BY(mutex_);
  Stats stats_ QRES_GUARDED_BY(mutex_);
};

}  // namespace qres::rpc
