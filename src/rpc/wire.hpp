// Versioned wire format for the broker/proxy control plane (DESIGN.md §12).
//
// Every control-plane message — the broker service vocabulary
// (reserve/release/renew/reconcile/query) and the RSVP signaling trains
// (Path/Resv/Tear) — has an explicit serialized form: a length-prefixed
// frame with a fixed little-endian header followed by a typed payload.
//
//   offset  size  field
//        0     4  magic "QRPC"
//        4     1  wire version (kWireVersion)
//        5     1  MessageType
//        6     2  flags (reserved, must be zero)
//        8     4  payload length in bytes
//       12     8  FNV-1a 64 checksum of header bytes [0, 12) + payload
//       20   ...  payload
//
// The checksum covers the header prefix (magic through length), not just
// the payload: a single flipped type byte must fail the checksum rather
// than silently decode as a different message type whose payload happens
// to share the same layout.
//
// Decoding is strict: truncated frames, bad magic, unknown versions or
// message types, checksum mismatches, malformed payloads (bad counts,
// short fields) and trailing bytes are all rejected as *typed* DecodeStatus
// errors — never UB, never a best-effort partial message. Doubles are
// serialized as their IEEE-754 bit patterns, so every value (including
// ±inf) round-trips bit-exactly; this is what lets the typed transport be
// bit-identical to the legacy implicit exchange (tests/fuzz/rpc_fuzz.cpp).
//
// Versioning: kWireVersion is bumped on any layout change; decoders
// reject frames from other versions (kBadVersion). The golden-bytes tests
// in tests/rpc/test_wire.cpp pin the exact encoding of every message
// type so accidental wire breaks fail loudly. v2 added the authoritative
// `lease_deadline` to ReserveReply/RenewReply: the model checker showed
// that a client deriving the deadline from its own receive time believes
// a lease lives longer than the broker does and keeps acting on a
// reclaimed holding (DESIGN.md §13). v3 added broker replication
// (DESIGN.md §14): a fencing `epoch` in every RequestHeader, the
// kNotPrimary code + RedirectReply redirect hint, and the replication
// vocabulary (JournalShip/ShipAck, PromoteRequest/PromoteReply).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "core/ids.hpp"
#include "util/annotations.hpp"

namespace qres::rpc {

inline constexpr std::uint8_t kWireVersion = 3;
inline constexpr std::size_t kHeaderSize = 20;
/// Upper bound on one frame's payload; larger length fields are rejected
/// before any allocation is sized from attacker-controlled input.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
/// Upper bound on any repeated field's element count.
inline constexpr std::uint32_t kMaxVectorEntries = 4096;

enum class MessageType : std::uint8_t {
  kReserveRequest = 1,
  kReserveReply = 2,
  kReleaseRequest = 3,
  kReleaseReply = 4,
  kRenewRequest = 5,
  kRenewReply = 6,
  kReconcileRequest = 7,
  kReconcileReply = 8,
  kQueryRequest = 9,
  kQueryReply = 10,
  kPathMsg = 11,
  kResvMsg = 12,
  kTearMsg = 13,
  kJournalShip = 14,
  kShipAck = 15,
  kPromoteRequest = 16,
  kPromoteReply = 17,
  kRedirectReply = 18,
};

/// Application-level outcome carried in every reply.
enum class QRES_NODISCARD RpcCode : std::uint8_t {
  kOk = 0,
  kAdmissionReject = 1,    ///< the broker rejected the amount (capacity)
  kBrokerDown = 2,         ///< the target broker process is down
  kBackpressure = 3,       ///< service execution queue full (fast-reject)
  kDeadlineExceeded = 4,   ///< the request's deadline passed before execution
  kBadRequest = 5,         ///< malformed/out-of-range request fields
  kNotPrimary = 6,         ///< peer is fenced/standby or the epoch is stale;
                           ///< the reply is a RedirectReply with the hint
};

/// Why a frame failed to decode. Strictly typed — every corruption mode
/// maps to exactly one of these, and decode never reads past the buffer.
enum class QRES_NODISCARD DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,         ///< shorter than the header or the declared payload
  kBadMagic,          ///< first four bytes are not "QRPC"
  kBadVersion,        ///< version byte != kWireVersion
  kBadType,           ///< unknown MessageType
  kBadLength,         ///< declared payload length exceeds kMaxPayloadBytes
  kChecksumMismatch,  ///< payload bytes do not match the header checksum
  kMalformedPayload,  ///< payload fields short, overlong or out of range
  kTrailingBytes,     ///< bytes left over after the declared payload
};

const char* to_string(MessageType type) noexcept;
const char* to_string(RpcCode code) noexcept;
const char* to_string(DecodeStatus status) noexcept;

/// Fields common to every request: the shim-assigned id (dedup key for
/// at-least-once redelivery), the session on whose behalf the call runs,
/// and the absolute deadline propagated from the caller's budget (+inf =
/// none; the service fast-rejects expired requests as kDeadlineExceeded).
struct RequestHeader {
  std::uint64_t request_id = 0;
  std::uint32_t session = SessionId::kInvalid;
  double deadline = 0.0;
  /// Replication fencing epoch the caller believes the target resource is
  /// in (v3). 0 = unreplicated / unknown — accepted by any serving
  /// replica. A non-zero stale value is rejected kNotPrimary with a
  /// RedirectReply so a client that re-homed once never silently lands a
  /// mutation on a deposed primary (DESIGN.md §14).
  std::uint64_t epoch = 0;

  friend bool operator==(const RequestHeader&, const RequestHeader&) = default;
};

struct ReserveRequest {
  RequestHeader header;
  std::uint32_t resource = ResourceId::kInvalid;
  double amount = 0.0;
  double lease = 0.0;  ///< 0 = permanent reservation

  friend bool operator==(const ReserveRequest&, const ReserveRequest&) =
      default;
};

struct ReserveReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  double available_after = 0.0;
  /// The broker's authoritative lease deadline for the session after this
  /// grant (+inf for permanent reservations and non-grants). Clients must
  /// schedule renewals from this value, never from their own receive time:
  /// the grant executed before the reply travelled, so a receipt-derived
  /// deadline overshoots the broker's and the holding is reclaimed while
  /// the client still believes it is covered.
  double lease_deadline = std::numeric_limits<double>::infinity();

  friend bool operator==(const ReserveReply&, const ReserveReply&) = default;
};

struct ReleaseRequest {
  RequestHeader header;
  std::uint32_t resource = ResourceId::kInvalid;
  std::uint8_t release_all = 0;  ///< 1 = release everything the session holds
  double amount = 0.0;           ///< ignored when release_all

  friend bool operator==(const ReleaseRequest&, const ReleaseRequest&) =
      default;
};

struct ReleaseReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  double released = 0.0;

  friend bool operator==(const ReleaseReply&, const ReleaseReply&) = default;
};

struct RenewRequest {
  RequestHeader header;
  std::uint32_t resource = ResourceId::kInvalid;
  double lease = 0.0;

  friend bool operator==(const RenewRequest&, const RenewRequest&) = default;
};

struct RenewReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  std::uint8_t renewed = 0;  ///< renew_lease()'s boolean result
  /// The broker's lease deadline after the renewal (+inf when the session
  /// holds nothing leased here — renewed == 0). See ReserveReply.
  double lease_deadline = std::numeric_limits<double>::infinity();

  friend bool operator==(const RenewReply&, const RenewReply&) = default;
};

struct ReconcileRequest {
  RequestHeader header;
  std::uint32_t resource = ResourceId::kInvalid;
  double claimed = 0.0;

  friend bool operator==(const ReconcileRequest&, const ReconcileRequest&) =
      default;
};

struct ReconcileReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  double held = 0.0;  ///< what the broker actually holds for the session

  friend bool operator==(const ReconcileReply&, const ReconcileReply&) =
      default;
};

struct QueryEntry {
  std::uint32_t resource = ResourceId::kInvalid;
  double observe_at = 0.0;  ///< observation time (now - staleness)

  friend bool operator==(const QueryEntry&, const QueryEntry&) = default;
};

struct QueryRequest {
  RequestHeader header;
  std::vector<QueryEntry> entries;

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

struct QuerySample {
  std::uint32_t resource = ResourceId::kInvalid;
  double available = 0.0;
  double alpha = 1.0;
  std::uint8_t up = 1;

  friend bool operator==(const QuerySample&, const QuerySample&) = default;
};

struct QueryReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  std::vector<QuerySample> samples;

  friend bool operator==(const QueryReply&, const QueryReply&) = default;
};

/// RSVP Path message: sender template travelling source -> sink along the
/// route's link ids, pinning per-hop path state.
struct PathMsg {
  std::uint64_t request_id = 0;
  std::uint64_t flow = 0;
  std::uint32_t from_host = HostId::kInvalid;
  std::uint32_t to_host = HostId::kInvalid;
  double rate = 0.0;
  std::vector<std::uint32_t> route;  ///< link id values, source to sink

  friend bool operator==(const PathMsg&, const PathMsg&) = default;
};

/// RSVP Resv message: reservation request travelling sink -> source.
struct ResvMsg {
  std::uint64_t request_id = 0;
  std::uint64_t flow = 0;
  double rate = 0.0;
  std::vector<std::uint32_t> route;

  friend bool operator==(const ResvMsg&, const ResvMsg&) = default;
};

/// RSVP Tear message: explicit teardown of a flow's path/resv state.
struct TearMsg {
  std::uint64_t request_id = 0;
  std::uint64_t flow = 0;
  std::vector<std::uint32_t> route;

  friend bool operator==(const TearMsg&, const TearMsg&) = default;
};

/// Primary -> standby: a contiguous batch of journal records, shipped in
/// the broker journal's canonical text form (to_line / parse_line — the
/// same exactly-round-tripping serialization `qresctl journal` replays).
/// `seq_first` is the journal sequence number of records[0]; a standby
/// applies the batch only when seq_first == its watermark (idempotent:
/// lower batches re-ack, gapped batches are refused so the primary
/// rewinds). `epoch` fences: a batch from a deposed primary is dropped.
struct JournalShip {
  RequestHeader header;
  std::uint32_t resource = ResourceId::kInvalid;
  std::uint64_t epoch = 0;
  std::uint64_t seq_first = 0;
  std::vector<std::string> records;

  friend bool operator==(const JournalShip&, const JournalShip&) = default;
};

/// Standby -> primary: replication watermark after applying (or refusing)
/// a shipped batch. `watermark` = number of journal records durably
/// applied, i.e. the sequence number the standby expects next.
struct ShipAck {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  std::uint64_t epoch = 0;
  std::uint64_t watermark = 0;

  friend bool operator==(const ShipAck&, const ShipAck&) = default;
};

/// Coordinator -> standby: adopt `epoch` and serve as primary. The
/// receiver refuses (kNotPrimary) when `epoch` is not strictly newer than
/// its own — double promotions tie-break on epoch, never on wall order.
struct PromoteRequest {
  RequestHeader header;
  std::uint32_t resource = ResourceId::kInvalid;
  std::uint64_t epoch = 0;

  friend bool operator==(const PromoteRequest&, const PromoteRequest&) =
      default;
};

struct PromoteReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kOk;
  std::uint64_t epoch = 0;      ///< the epoch now in force at the receiver
  std::uint64_t watermark = 0;  ///< its journal watermark at promotion

  friend bool operator==(const PromoteReply&, const PromoteReply&) = default;
};

/// Any-service -> client: typed kNotPrimary rejection with a re-homing
/// hint. `primary_host` names the replica the sender believes is serving
/// `epoch` (may itself be stale — clients re-probe, they do not trust it
/// transitively); kInvalid = sender has no hint, client must re-discover.
struct RedirectReply {
  std::uint64_t request_id = 0;
  RpcCode code = RpcCode::kNotPrimary;
  std::uint64_t epoch = 0;
  std::uint32_t primary_host = HostId::kInvalid;

  friend bool operator==(const RedirectReply&, const RedirectReply&) = default;
};

using AnyMessage =
    std::variant<ReserveRequest, ReserveReply, ReleaseRequest, ReleaseReply,
                 RenewRequest, RenewReply, ReconcileRequest, ReconcileReply,
                 QueryRequest, QueryReply, PathMsg, ResvMsg, TearMsg,
                 JournalShip, ShipAck, PromoteRequest, PromoteReply,
                 RedirectReply>;

/// The message's wire type tag.
MessageType message_type(const AnyMessage& message) noexcept;

/// The request id of any message (requests carry it in their header,
/// replies and signaling messages inline).
std::uint64_t request_id_of(const AnyMessage& message) noexcept;

/// True for the five *Request types the broker service executes.
bool is_request(MessageType type) noexcept;

/// True for the replication-plane requests (JournalShip, PromoteRequest)
/// the replication service executes. Disjoint from is_request: the broker
/// service's dedup/backpressure path never sees these.
bool is_replication_request(MessageType type) noexcept;

/// Serializes `message` into one framed buffer (header + payload).
std::vector<std::uint8_t> encode(const AnyMessage& message);

/// Result of a strict decode. `message` is meaningful only when
/// status == kOk.
struct QRES_NODISCARD Decoded {
  DecodeStatus status = DecodeStatus::kOk;
  AnyMessage message;

  bool ok() const noexcept { return status == DecodeStatus::kOk; }
};

/// Strictly decodes one frame. Never reads out of bounds, never throws on
/// malformed input: every failure is a typed DecodeStatus.
Decoded decode_frame(const std::vector<std::uint8_t>& frame);

/// FNV-1a 64-bit over a byte range (the frame checksum).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept;

}  // namespace qres::rpc
