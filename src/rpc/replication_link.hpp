// The RPC adapter between the broker-layer replication protocol and the
// typed wire plane (DESIGN.md §14).
//
// ReplicatedBroker (rank-2 broker code) speaks IShipTransport and knows
// nothing about frames; this file provides both halves of the bridge:
//
//   * ReplicationService — the standby-side IFrameServer. Decodes
//     JournalShip / PromoteRequest frames, routes them into the target
//     ReplicatedBroker (apply_ship / promote) and answers the typed
//     ShipAck / PromoteReply. Replication requests address a *replica*,
//     not a session: the RequestHeader's session field carries the
//     target replica's host id. No dedup cache is needed — apply_ship is
//     idempotent by watermark (a redelivered batch re-acks), and a
//     redelivered promote whose epoch is already in force at the target
//     is answered kOk so a lost ack never wedges the coordinator.
//   * ReplicationLink — the primary-side IShipTransport. Wraps batches
//     in JournalShip frames and carries them through an RpcChannel, with
//     that channel's faults, retries, deadline truncation and per-peer
//     breakers. A call that ends without a usable ShipAck reports
//     nullopt ("batch lost"), which the primary counts and re-ships on
//     the next flush.
//
// RpcCode <-> ShipAckCode mapping (both directions, lossless):
//   kApplied <-> kOk, kGap <-> kBadRequest, kFenced <-> kNotPrimary,
//   kDown <-> kBrokerDown.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "broker/registry.hpp"
#include "broker/replication.hpp"
#include "rpc/channel.hpp"
#include "rpc/frame.hpp"
#include "rpc/wire.hpp"

namespace qres::rpc {

/// Lossless code mapping between the wire and the broker layer (see the
/// file comment). rpc_to_ship_ack returns nullopt for codes that do not
/// name a ship outcome (a malformed ack counts as a lost batch).
RpcCode ship_ack_to_rpc(ShipAckCode code) noexcept;
std::optional<ShipAckCode> rpc_to_ship_ack(RpcCode code) noexcept;

class ReplicationService final : public IFrameServer {
 public:
  explicit ReplicationService(BrokerRegistry* registry);

  void handle_frame(const std::vector<std::uint8_t>& frame, double now,
                    std::vector<std::vector<std::uint8_t>>* replies) override;

  struct Stats {
    std::uint64_t frames = 0;          ///< frames received
    std::uint64_t decode_rejects = 0;  ///< undecodable (no reply; retried)
    std::uint64_t non_replication = 0; ///< well-formed but not ship/promote
    std::uint64_t bad_requests = 0;    ///< unknown resource/replica host
    std::uint64_t ships_applied = 0;   ///< batches answered kApplied
    std::uint64_t ships_refused = 0;   ///< gap/fenced/down answers
    std::uint64_t promotions = 0;      ///< promote answered kOk
    std::uint64_t promote_refusals = 0;///< promote answered kNotPrimary
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  BrokerRegistry* registry_;
  Stats stats_;
};

/// Primary-side transport: install on a ReplicatedBroker with
/// set_transport(). The channel's server must be (or route to) the
/// ReplicationService owning the standby registry.
class ReplicationLink final : public IShipTransport {
 public:
  ReplicationLink(RpcChannel* channel, BrokerRegistry* registry);

  std::optional<ShipAckInfo> ship(HostId to, const ShipBatch& batch,
                                  double now) override;

  /// Sends a typed PromoteRequest (the failover coordinator's wire path):
  /// `to` adopts `epoch` for `resource` and serves as primary. nullopt
  /// when no usable PromoteReply came back.
  std::optional<PromoteReply> send_promote(HostId from, HostId to,
                                           ResourceId resource,
                                           std::uint64_t epoch, double now);

  struct Stats {
    std::uint64_t ships = 0;       ///< batches handed to the channel
    std::uint64_t ship_lost = 0;   ///< calls without a usable ShipAck
    std::uint64_t promotes = 0;    ///< PromoteRequests sent
    std::uint64_t promote_lost = 0;///< calls without a usable PromoteReply
  };
  const Stats& stats() const noexcept { return stats_; }

  RpcChannel* channel() const noexcept { return channel_; }

 private:
  RpcChannel* channel_;
  BrokerRegistry* registry_;
  Stats stats_;
};

}  // namespace qres::rpc
