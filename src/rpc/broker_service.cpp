#include "rpc/broker_service.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace qres::rpc {

namespace {

/// The request header of any of the five *Request alternatives.
RequestHeader header_of(const AnyMessage& request) {
  return std::visit(
      [](const auto& m) -> RequestHeader {
        if constexpr (requires { m.header; })
          return m.header;
        else
          return RequestHeader{};
      },
      request);
}

/// A typed error reply matching the request's type.
AnyMessage error_reply(MessageType type, std::uint64_t request_id,
                       RpcCode code) {
  switch (type) {
    case MessageType::kReserveRequest:
      return ReserveReply{request_id, code, 0.0};
    case MessageType::kReleaseRequest:
      return ReleaseReply{request_id, code, 0.0};
    case MessageType::kRenewRequest:
      return RenewReply{request_id, code, 0};
    case MessageType::kReconcileRequest:
      return ReconcileReply{request_id, code, 0.0};
    case MessageType::kQueryRequest:
      return QueryReply{request_id, code, {}};
    // qres-lint: allow(wire-exhaustive-switch): only the five request types reach error_reply; the QRES_REQUIRE below pins that
    default:
      break;
  }
  QRES_REQUIRE(false, "BrokerService: error reply for a non-request");
  return ReserveReply{};
}

bool finite_nonnegative(double v) noexcept {
  return std::isfinite(v) && v >= 0.0;
}

/// A request is expired when `now` has passed its absolute deadline
/// (the default +inf never expires; a NaN deadline counts as expired).
bool expired(const RequestHeader& header, double now) noexcept {
  return !(now <= header.deadline);
}

}  // namespace

BrokerService::BrokerService(BrokerRegistry* registry)
    : BrokerService(registry, Config{}) {}

BrokerService::BrokerService(BrokerRegistry* registry, Config config)
    : registry_(registry), config_(config) {
  QRES_REQUIRE(registry != nullptr, "BrokerService: null registry");
  QRES_REQUIRE(config.queue_capacity >= 1 && config.dedup_capacity >= 1,
               "BrokerService: capacities must be >= 1");
}

bool BrokerService::known_resource(ResourceId resource) const {
  return resource.valid() && resource.value() < registry_->size();
}

ExecutionQueue& BrokerService::queue_for_mut(ResourceId resource) {
  MutexLock lock(mutex_);
  const auto it = queues_.find(resource);
  if (it != queues_.end()) return *it->second;
  return *queues_.insert_or_assign(
      resource,
      std::make_unique<ExecutionQueue>(config_.queue_capacity));
}

const ExecutionQueue* BrokerService::queue_for(ResourceId resource) const {
  MutexLock lock(mutex_);
  const auto it = queues_.find(resource);
  return it == queues_.end() ? nullptr : it->second.get();
}

std::size_t BrokerService::max_queue_high_water() const {
  // Collect the stable queue pointers under the map lock, then read each
  // queue's own internally-locked stats.
  std::vector<const ExecutionQueue*> queues;
  {
    MutexLock lock(mutex_);
    queues.reserve(queues_.size());
    for (const auto& [id, queue] : queues_) queues.push_back(queue.get());
  }
  std::size_t high = 0;
  for (const ExecutionQueue* queue : queues)
    high = std::max(high, queue->stats().high_water);
  return high;
}

bool BrokerService::replay_cached(
    std::uint64_t request_id,
    std::vector<std::vector<std::uint8_t>>* replies) {
  MutexLock lock(mutex_);
  const auto it = dedup_.find(request_id);
  if (it == dedup_.end()) return false;
  ++stats_.duplicates;
  replies->push_back(it->second.bytes);
  return true;
}

void BrokerService::insert_dedup_locked(std::uint64_t request_id,
                                        CachedReply entry) {
  while (dedup_order_.size() >= config_.dedup_capacity) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
  dedup_.insert_or_assign(request_id, std::move(entry));
  dedup_order_.push_back(request_id);
}

bool BrokerService::cache_reply(std::uint64_t request_id,
                                const std::vector<std::uint8_t>& reply,
                                ResourceId resource) {
  MutexLock lock(mutex_);
  if (dedup_.contains(request_id)) return false;
  insert_dedup_locked(request_id, CachedReply{reply, resource});
  return true;
}

void BrokerService::overwrite_cached_reply(
    std::uint64_t request_id, const std::vector<std::uint8_t>& reply,
    ResourceId resource) {
  MutexLock lock(mutex_);
  if (dedup_.contains(request_id)) {
    dedup_.insert_or_assign(request_id, CachedReply{reply, resource});
    return;
  }
  insert_dedup_locked(request_id, CachedReply{reply, resource});
}

BrokerService::DedupState BrokerService::dedup_state() const {
  MutexLock lock(mutex_);
  return DedupState{dedup_, dedup_order_};
}

void BrokerService::restore_dedup(DedupState state) {
  MutexLock lock(mutex_);
  dedup_ = std::move(state.entries);
  dedup_order_ = std::move(state.order);
}

void BrokerService::forget_dedup(ResourceId resource) {
  MutexLock lock(mutex_);
  std::deque<std::uint64_t> kept;
  for (const std::uint64_t id : dedup_order_) {
    const auto it = dedup_.find(id);
    if (it != dedup_.end() && it->second.resource == resource)
      dedup_.erase(id);
    else
      kept.push_back(id);
  }
  dedup_order_ = std::move(kept);
}

void BrokerService::rebuild_dedup(ResourceId resource) {
  std::vector<JournalRecord> records;
  if (const ReplicatedBroker* rep = registry_->replicated(resource)) {
    // After a failover the promoted primary's journal is the group truth
    // (headless group: no records — every cached entry is dropped).
    records = rep->primary_journal_records();
  } else {
    const ResourceBroker* leaf = registry_->leaf(resource);
    if (leaf == nullptr || leaf->journal() == nullptr) return;
    records = leaf->journal()->load();
  }
  MutexLock lock(mutex_);
  // Drop the in-memory entries first: an entry the retained journal does
  // not confirm describes an execution recovery may not have restored.
  std::deque<std::uint64_t> kept;
  for (const std::uint64_t id : dedup_order_) {
    const auto it = dedup_.find(id);
    if (it != dedup_.end() && it->second.resource == resource)
      dedup_.erase(id);
    else
      kept.push_back(id);
  }
  dedup_order_ = std::move(kept);
  for (const JournalRecord& rec : records) {
    if (rec.op != JournalOp::kReplyCache || rec.resource != resource) continue;
    // Later records win: the replication quorum-revert path journals a
    // revised kReplyCache record under the same request id, and replays
    // must serve the revised refusal, never the optimistic grant.
    if (dedup_.contains(rec.request_id)) {
      dedup_.insert_or_assign(rec.request_id, CachedReply{rec.reply, resource});
      continue;
    }
    insert_dedup_locked(rec.request_id, CachedReply{rec.reply, resource});
  }
}

void BrokerService::handle_frame(
    const std::vector<std::uint8_t>& frame, double now,
    std::vector<std::vector<std::uint8_t>>* replies) {
  QRES_REQUIRE(replies != nullptr, "BrokerService: null reply sink");
  const Decoded decoded = decode_frame(frame);
  {
    MutexLock lock(mutex_);
    ++stats_.frames;
    if (!decoded.ok()) {
      // Corrupted/truncated frames get no reply: the client's
      // at-least-once loop retransmits under the same request id.
      ++stats_.decode_rejects;
      return;
    }
  }
  const MessageType type = message_type(decoded.message);
  if (!is_request(type)) {
    MutexLock lock(mutex_);
    ++stats_.non_requests;
    return;
  }
  const RequestHeader header = header_of(decoded.message);
  const ResourceId resource = std::visit(
      [](const auto& m) -> ResourceId {
        if constexpr (requires { m.resource; })
          return ResourceId{m.resource};
        else
          return ResourceId{};  // QueryRequest: no single target resource
      },
      decoded.message);
  // Epoch fence for replicated resources (DESIGN.md §14): a request
  // stamped with an epoch older than the group's was aimed at a deposed
  // primary. The typed redirect carries the current epoch and primary so
  // the client re-homes instead of burning its retry train here. Epoch 0
  // (a client that has not learned the group yet) passes the fence. Not
  // cached and not deduped — the re-sent request must execute. A
  // headless group falls through to the ordinary down handling.
  if (known_resource(resource) && header.epoch != 0) {
    const ReplicatedBroker* rep = registry_->replicated(resource);
    if (rep != nullptr && rep->up() && header.epoch < rep->epoch()) {
      {
        MutexLock lock(mutex_);
        ++stats_.not_primary;
      }
      replies->push_back(encode(RedirectReply{
          header.request_id, RpcCode::kNotPrimary, rep->epoch(),
          rep->primary_host().value()}));
      return;
    }
  }
  // Down brokers are reported *before* the replay cache is consulted: a
  // cached kOk from before the crash must not be served while journal
  // recovery may still lose the execution it describes (DESIGN.md §13).
  // Not cached — a retry after restart may succeed.
  if (config_.down_check_before_dedup && known_resource(resource) &&
      !registry_->broker(resource).up()) {
    {
      MutexLock lock(mutex_);
      ++stats_.broker_down;
    }
    replies->push_back(
        encode(error_reply(type, header.request_id, RpcCode::kBrokerDown)));
    return;
  }
  if (replay_cached(header.request_id, replies)) return;
  if (expired(header, now)) {
    {
      MutexLock lock(mutex_);
      ++stats_.deadline_expired;
    }
    replies->push_back(encode(
        error_reply(type, header.request_id, RpcCode::kDeadlineExceeded)));
    return;
  }

  // Read-only availability sweeps bypass the execution queues.
  if (type == MessageType::kQueryRequest) {
    std::vector<std::uint8_t> reply =
        serve_query(std::get<QueryRequest>(decoded.message), now);
    cache_reply(header.request_id, reply, ResourceId{});
    replies->push_back(std::move(reply));
    return;
  }

  // Mutating vocabulary: route to the target broker's bounded queue.
  if (!known_resource(resource)) {
    {
      MutexLock lock(mutex_);
      ++stats_.bad_requests;
    }
    replies->push_back(
        encode(error_reply(type, header.request_id, RpcCode::kBadRequest)));
    return;
  }
  ExecutionQueue& queue = queue_for_mut(resource);
  if (!queue.try_post(decoded.message)) {
    {
      MutexLock lock(mutex_);
      ++stats_.backpressure;
    }
    // Not cached: a retry of the same id may succeed once drained.
    replies->push_back(
        encode(error_reply(type, header.request_id, RpcCode::kBackpressure)));
    return;
  }
  if (config_.auto_drain) {
    for (const AnyMessage& queued : queue.drain()) {
      const std::uint64_t id = request_id_of(queued);
      if (replay_cached(id, replies)) continue;
      replies->push_back(execute(queued, now));
    }
  }
}

void BrokerService::drain_all(
    double now, std::vector<std::vector<std::uint8_t>>* replies) {
  QRES_REQUIRE(replies != nullptr, "BrokerService: null reply sink");
  std::vector<ExecutionQueue*> queues;
  {
    MutexLock lock(mutex_);
    queues.reserve(queues_.size());
    for (const auto& [id, queue] : queues_) queues.push_back(queue.get());
  }
  for (ExecutionQueue* queue : queues) {
    for (const AnyMessage& queued : queue->drain()) {
      const std::uint64_t id = request_id_of(queued);
      if (replay_cached(id, replies)) continue;
      replies->push_back(execute(queued, now));
    }
  }
}

std::vector<std::uint8_t> BrokerService::execute(const AnyMessage& request,
                                                 double now) {
  const MessageType type = message_type(request);
  const RequestHeader header = header_of(request);
  const auto reject = [&](RpcCode code) {
    {
      MutexLock lock(mutex_);
      if (code == RpcCode::kDeadlineExceeded) ++stats_.deadline_expired;
      if (code == RpcCode::kBadRequest) ++stats_.bad_requests;
      if (code == RpcCode::kBrokerDown) ++stats_.broker_down;
    }
    return encode(error_reply(type, header.request_id, code));
  };
  // Deadline enforced again at drain time: a request that expired while
  // queued is answered, never executed late.
  if (expired(header, now)) return reject(RpcCode::kDeadlineExceeded);

  const ResourceId resource = std::visit(
      [](const auto& m) -> ResourceId {
        if constexpr (requires { m.resource; })
          return ResourceId{m.resource};
        else
          return ResourceId{};
      },
      request);
  IBroker& broker = registry_->broker(resource);
  if (!broker.up()) return reject(RpcCode::kBrokerDown);

  // The epoch fence again at drain time: a request queued before a
  // failover must not execute against the new primary under the deposed
  // epoch (handle_frame fenced only what it saw at ingress).
  ReplicatedBroker* rep = registry_->replicated(resource);
  if (rep != nullptr && header.epoch != 0 && header.epoch < rep->epoch()) {
    {
      MutexLock lock(mutex_);
      ++stats_.not_primary;
    }
    return encode(RedirectReply{header.request_id, RpcCode::kNotPrimary,
                                rep->epoch(), rep->primary_host().value()});
  }

  // Journaled brokers get the executed reply journaled next to the
  // mutation records its execution appends (dedup crash durability);
  // the appended-count delta decides grouping.
  ResourceBroker* leaf = registry_->leaf(resource);
  if (leaf != nullptr && leaf->journal() == nullptr) leaf = nullptr;
  const std::uint64_t mutations_before =
      leaf != nullptr ? leaf->journaled_mutations()
      : rep != nullptr ? rep->journaled_mutations()
                       : 0;

  // Sync replication runs two-phase: the grant applies locally with
  // auto-commit off, the reply-cache record is journaled next (so the
  // mutation and its grouped reply replicate atomically), and the
  // explicit flush below is the commit gate (DESIGN.md §14).
  const bool two_phase =
      rep != nullptr && rep->config().mode == ReplicationMode::kSync;
  if (two_phase) rep->set_auto_commit(false);

  AnyMessage reply;
  if (const auto* reserve = std::get_if<ReserveRequest>(&request)) {
    if (!finite_nonnegative(reserve->amount) ||
        !finite_nonnegative(reserve->lease))
      return reject(RpcCode::kBadRequest);
    const SessionId session{reserve->header.session};
    const bool granted =
        reserve->lease > 0.0
            ? broker.reserve_leased(now, session, reserve->amount,
                                    reserve->lease)
            : broker.reserve(now, session, reserve->amount);
    reply = ReserveReply{header.request_id,
                         granted ? RpcCode::kOk : RpcCode::kAdmissionReject,
                         broker.available(),
                         granted ? broker.lease_deadline(session)
                                 : std::numeric_limits<double>::infinity()};
  } else if (const auto* release = std::get_if<ReleaseRequest>(&request)) {
    if (!finite_nonnegative(release->amount))
      return reject(RpcCode::kBadRequest);
    const SessionId session{release->header.session};
    const double held = broker.held_by(session);
    double released = 0.0;
    if (release->release_all != 0) {
      released = held;
      broker.release(now, session);
    } else {
      released = std::min(held, release->amount);
      broker.release_amount(now, session, release->amount);
    }
    reply = ReleaseReply{header.request_id, RpcCode::kOk, released};
  } else if (const auto* renew = std::get_if<RenewRequest>(&request)) {
    if (!finite_nonnegative(renew->lease)) return reject(RpcCode::kBadRequest);
    const SessionId session{renew->header.session};
    const bool renewed = broker.renew_lease(now, session, renew->lease);
    reply = RenewReply{header.request_id, RpcCode::kOk,
                       static_cast<std::uint8_t>(renewed ? 1 : 0),
                       renewed ? broker.lease_deadline(session)
                               : std::numeric_limits<double>::infinity()};
  } else if (const auto* reconcile =
                 std::get_if<ReconcileRequest>(&request)) {
    const SessionId session{reconcile->header.session};
    reply = ReconcileReply{header.request_id, RpcCode::kOk,
                           broker.held_by(session)};
  } else {
    return reject(RpcCode::kBadRequest);
  }

  {
    MutexLock lock(mutex_);
    ++stats_.executed;
  }
  std::vector<std::uint8_t> encoded = encode(reply);
  // Performed operations (including admission rejects) are cached so a
  // redelivered duplicate returns this reply instead of executing twice.
  if (cache_reply(header.request_id, encoded, resource) &&
      (leaf != nullptr || rep != nullptr)) {
    // Durable half of the cache entry. `grouped` ties the record to the
    // mutation records this execution just appended, so a lossy tail
    // drops them together or not at all (MemoryJournal::drop_tail).
    // No-mutation executions (failed renew, admission reject) journal an
    // ungrouped record — gluing one to an unrelated predecessor could
    // strand that predecessor's own reply.
    JournalRecord rec;
    rec.op = JournalOp::kReplyCache;
    rec.time = now;
    rec.resource = resource;
    rec.request_id = header.request_id;
    rec.grouped = (leaf != nullptr ? leaf->journaled_mutations()
                                   : rep->journaled_mutations()) >
                  mutations_before;
    rec.reply = encoded;
    // A refused append here leaves the reply cached only in memory: a
    // crash before the next successful snapshot may re-execute the
    // duplicate. That is the pre-journal dedup guarantee, not silent
    // state divergence — holdings were journaled write-ahead above — so
    // the execution is not failed retroactively.
    if (leaf != nullptr)
      // qres-lint: allow(unchecked-status): refusal tolerated per the
      // comment above — dedup degrades to pre-journal, state stays sound
      static_cast<void>(leaf->journal()->append(rec));
    else
      // qres-lint: allow(unchecked-status): same rationale as the leaf arm
      static_cast<void>(rep->append_aux(rec));
  }

  if (two_phase) {
    // Commit phase: everything this execution journaled (mutations and
    // the grouped reply record) must reach the quorum before the caller
    // may learn of a grant.
    const bool confirmed = rep->flush(now);
    rep->set_auto_commit(true);
    const auto* reserve = std::get_if<ReserveRequest>(&request);
    const auto* reserve_reply = std::get_if<ReserveReply>(&reply);
    const bool granted = reserve != nullptr && reserve_reply != nullptr &&
                         reserve_reply->code == RpcCode::kOk;
    if (confirmed) {
      if (granted) rep->note_confirmed_grant();
    } else if (granted) {
      // The quorum never held the grant: compensate it with a journaled
      // inverse release and revise the cached reply, so a duplicate of
      // this request id replays the refusal, never the phantom grant.
      // Releases/renews need no revert — losing one under-reports free
      // capacity, which reconciliation (PR 4) repairs without ever
      // over-granting.
      rep->note_quorum_failure();
      {
        MutexLock lock(mutex_);
        ++stats_.quorum_rejects;
      }
      rep->set_auto_commit(false);
      rep->release_amount(now, SessionId{reserve->header.session},
                          reserve->amount);
      rep->set_auto_commit(true);
      encoded = encode(AnyMessage{ReserveReply{
          header.request_id, RpcCode::kBrokerDown, rep->available(),
          std::numeric_limits<double>::infinity()}});
      overwrite_cached_reply(header.request_id, encoded, resource);
      JournalRecord rec;
      rec.op = JournalOp::kReplyCache;
      rec.time = now;
      rec.resource = resource;
      rec.request_id = header.request_id;
      rec.grouped = true;  // glued to the compensating release record
      rec.reply = encoded;
      // qres-lint: allow(unchecked-status): the revised reply is already in
      // the live cache; a lost record re-executes into the same refusal
      static_cast<void>(rep->append_aux(rec));
      // qres-lint: allow(unchecked-status): best-effort ship of the
      // compensation — the grant was already refused to the caller
      static_cast<void>(rep->flush(now));  // best effort
    }
  }
  return encoded;
}

std::vector<std::uint8_t> BrokerService::serve_query(
    const QueryRequest& request, double now) {
  (void)now;
  QueryReply reply{request.header.request_id, RpcCode::kOk, {}};
  reply.samples.reserve(request.entries.size());
  for (const QueryEntry& entry : request.entries) {
    const ResourceId resource{entry.resource};
    if (!known_resource(resource) || !std::isfinite(entry.observe_at)) {
      MutexLock lock(mutex_);
      ++stats_.bad_requests;
      return encode(QueryReply{request.header.request_id,
                               RpcCode::kBadRequest,
                               {}});
    }
    const IBroker& broker = registry_->broker(resource);
    QuerySample sample;
    sample.resource = entry.resource;
    if (broker.up()) {
      const ResourceObservation obs = broker.observe(entry.observe_at);
      sample.available = obs.available;
      sample.alpha = obs.alpha;
      sample.up = 1;
    } else {
      sample.available = 0.0;
      sample.alpha = 1.0;
      sample.up = 0;
    }
    reply.samples.push_back(sample);
  }
  {
    MutexLock lock(mutex_);
    ++stats_.executed;
  }
  return encode(reply);
}

BrokerService::Stats BrokerService::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace qres::rpc
