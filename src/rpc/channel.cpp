#include "rpc/channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace qres::rpc {

namespace {

/// Worst-case wait after the k-th (1-indexed) transmission, jitter
/// included — what deadline truncation has to budget for.
double worst_case_wait(const RetryPolicy& policy, int k) {
  double timeout = policy.timeout;
  for (int i = 1; i < k; ++i)
    timeout = std::min(timeout * policy.backoff, policy.max_timeout);
  return timeout * (1.0 + std::max(0.0, policy.jitter));
}

/// Truncates the policy's attempt budget so the worst-case cumulative
/// waits before the last attempt fit into `budget`. Always allows at
/// least one attempt (the caller fast-fails a spent budget earlier).
RetryPolicy truncate_to_budget(const RetryPolicy& policy, double budget,
                               bool* truncated) {
  RetryPolicy out = policy;
  double spent = 0.0;
  int attempts = 1;
  while (attempts < policy.max_attempts) {
    spent += worst_case_wait(policy, attempts);
    if (spent > budget) break;
    ++attempts;
  }
  *truncated = attempts < policy.max_attempts;
  out.max_attempts = attempts;
  return out;
}

CallStatus to_call_status(ExchangeStatus status) noexcept {
  switch (status) {
    case ExchangeStatus::kOk: return CallStatus::kOk;
    case ExchangeStatus::kTimeout: return CallStatus::kTimeout;
    case ExchangeStatus::kPeerDown: return CallStatus::kPeerDown;
    case ExchangeStatus::kDeadlineExceeded:
      return CallStatus::kDeadlineExceeded;
  }
  return CallStatus::kTimeout;
}

/// Stamps the request id and deadline into a request's header.
void stamp_header(AnyMessage& request, std::uint64_t id, double deadline) {
  std::visit(
      [&](auto& m) {
        if constexpr (requires { m.header; }) {
          if (m.header.request_id == 0) m.header.request_id = id;
          if (m.header.deadline == 0.0) m.header.deadline = deadline;
        } else {
          if (m.request_id == 0) m.request_id = id;
        }
      },
      request);
}

double deadline_of(const AnyMessage& request) {
  return std::visit(
      [](const auto& m) -> double {
        if constexpr (requires { m.header; })
          return m.header.deadline;
        else
          return RpcChannel::kNoDeadline;
      },
      request);
}

}  // namespace

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

const char* to_string(CallStatus status) noexcept {
  switch (status) {
    case CallStatus::kOk: return "ok";
    case CallStatus::kTimeout: return "timeout";
    case CallStatus::kPeerDown: return "peer-down";
    case CallStatus::kDeadlineExceeded: return "deadline-exceeded";
    case CallStatus::kBreakerOpen: return "breaker-open";
  }
  return "?";
}

RpcChannel::RpcChannel(IControlTransport* transport, IFrameServer* server,
                       IFrameFaults* faults, Config config)
    : transport_(transport),
      server_(server),
      faults_(faults),
      config_(config) {
  QRES_REQUIRE(config.policy.max_attempts >= 1,
               "RpcChannel: malformed retry policy");
  QRES_REQUIRE(config.breaker.failure_threshold >= 0 &&
                   config.breaker.cooldown > 0.0 &&
                   config.breaker.cooldown_backoff >= 1.0 &&
                   config.breaker.max_cooldown >= config.breaker.cooldown,
               "RpcChannel: malformed breaker config");
}

BreakerState RpcChannel::breaker_state(HostId peer, double now) const {
  const auto it = breakers_.find(peer);
  if (it == breakers_.end() || !it->second.open) return BreakerState::kClosed;
  return now < it->second.open_until ? BreakerState::kOpen
                                     : BreakerState::kHalfOpen;
}

bool RpcChannel::breaker_refuses(HostId peer, double now) {
  if (config_.breaker.failure_threshold == 0) return false;
  const auto it = breakers_.find(peer);
  if (it == breakers_.end() || !it->second.open) return false;
  // Past the cooldown the call proceeds as the half-open probe.
  return now < it->second.open_until;
}

void RpcChannel::breaker_on_success(HostId peer) {
  if (config_.breaker.failure_threshold == 0) return;
  Breaker& b = breakers_[peer];
  b.consecutive_failures = 0;
  b.open = false;
}

void RpcChannel::breaker_on_failure(HostId peer, double now) {
  if (config_.breaker.failure_threshold == 0) return;
  Breaker& b = breakers_[peer];
  PeerStats& stats = stats_[peer];
  if (b.open) {
    // A failed half-open probe: re-open with a longer (capped) cooldown.
    b.current_cooldown = std::min(
        b.current_cooldown * config_.breaker.cooldown_backoff,
        config_.breaker.max_cooldown);
    b.open_until = now + b.current_cooldown;
    ++stats.breaker_trips;
    return;
  }
  if (++b.consecutive_failures >= config_.breaker.failure_threshold) {
    b.open = true;
    b.current_cooldown = config_.breaker.cooldown;
    b.open_until = now + b.current_cooldown;
    ++stats.breaker_trips;
  }
}

ExchangeResult RpcChannel::transport_leg(HostId from, HostId to, double now,
                                         double deadline, bool* truncated) {
  *truncated = false;
  // Loopback (from == to) spends no transport attempt: a coordinator
  // talking to its own host never crossed the network before the shim
  // existed either.
  if (transport_ == nullptr || from == to) return {ExchangeStatus::kOk, 0};
  if (std::isinf(deadline) && deadline > 0.0)
    // No deadline: the transport's own policy applies, exactly like the
    // legacy direct exchange (same draws, same result).
    return transport_->exchange(from, to, now);
  const double budget = deadline - now;
  const RetryPolicy policy =
      truncate_to_budget(config_.policy, budget, truncated);
  return transport_->exchange_budgeted(from, to, now, policy);
}

ExchangeResult RpcChannel::ping(HostId from, HostId to, double now,
                                double deadline) {
  PeerStats& stats = stats_[to];
  ++stats.calls;
  if (breaker_refuses(to, now)) {
    ++stats.breaker_fast_fails;
    ++stats.failures;
    return {ExchangeStatus::kTimeout, 0};
  }
  if (!(now <= deadline)) {
    ++stats.deadline_exceeded;
    ++stats.failures;
    return {ExchangeStatus::kDeadlineExceeded, 0};
  }
  bool truncated = false;
  ExchangeResult result = transport_leg(from, to, now, deadline, &truncated);
  if (result.transmissions > 1) stats.retries += result.transmissions - 1;
  if (result.ok()) {
    breaker_on_success(to);
    return result;
  }
  // The deadline, not the retry budget, bound a truncated train.
  if (truncated && result.status == ExchangeStatus::kTimeout)
    result.status = ExchangeStatus::kDeadlineExceeded;
  switch (result.status) {
    case ExchangeStatus::kTimeout: ++stats.timeouts; break;
    case ExchangeStatus::kPeerDown: ++stats.peer_down; break;
    case ExchangeStatus::kDeadlineExceeded:
      ++stats.deadline_exceeded;
      break;
    case ExchangeStatus::kOk: break;
  }
  ++stats.failures;
  breaker_on_failure(to, now);
  return result;
}

CallResult RpcChannel::call(HostId from, HostId to, AnyMessage request,
                            double now) {
  QRES_REQUIRE(server_ != nullptr, "RpcChannel::call: no frame server");
  QRES_REQUIRE(is_request(message_type(request)) ||
                   is_replication_request(message_type(request)),
               "RpcChannel::call: not a request message");
  stamp_header(request, next_request_id(), kNoDeadline);
  const double deadline = deadline_of(request);
  const std::uint64_t id = request_id_of(request);

  PeerStats& stats = stats_[to];
  ++stats.calls;
  if (breaker_refuses(to, now)) {
    ++stats.breaker_fast_fails;
    ++stats.failures;
    return {CallStatus::kBreakerOpen, 0, {}};
  }
  if (!(now <= deadline)) {
    ++stats.deadline_exceeded;
    ++stats.failures;
    return {CallStatus::kDeadlineExceeded, 0, {}};
  }

  const std::vector<std::uint8_t> frame = encode(request);
  CallResult result;
  // At-least-once frame rounds: every round re-sends the SAME request id,
  // so a round whose reply was lost to corruption redelivers and the
  // server's dedup cache answers idempotently.
  for (int round = 0; round < config_.policy.max_attempts; ++round) {
    bool truncated = false;
    const ExchangeResult leg =
        transport_leg(from, to, now, deadline, &truncated);
    result.transmissions += leg.transmissions;
    if (leg.transmissions > 1) stats.retries += leg.transmissions - 1;
    if (!leg.ok()) {
      ExchangeStatus status = leg.status;
      if (truncated && status == ExchangeStatus::kTimeout)
        status = ExchangeStatus::kDeadlineExceeded;
      result.status = to_call_status(status);
      switch (result.status) {
        case CallStatus::kTimeout: ++stats.timeouts; break;
        case CallStatus::kPeerDown: ++stats.peer_down; break;
        case CallStatus::kDeadlineExceeded:
          ++stats.deadline_exceeded;
          break;
        case CallStatus::kOk:
        case CallStatus::kBreakerOpen:
          // kOk cannot reach the failure path; breaker fast-fails are
          // counted where the breaker rejects the call.
          break;
      }
      ++stats.failures;
      breaker_on_failure(to, now);
      return result;
    }

    // Request frames down through the fault hook to the server...
    std::vector<std::vector<std::uint8_t>> raw_replies;
    if (faults_ != nullptr) {
      std::vector<std::vector<std::uint8_t>> delivered;
      faults_->transmit_frame(frame, &delivered);
      for (const auto& f : delivered) {
        stats.bytes_sent += f.size();
        server_->handle_frame(f, now, &raw_replies);
      }
    } else {
      stats.bytes_sent += frame.size();
      server_->handle_frame(frame, now, &raw_replies);
    }
    // ...and reply frames back up through the same hook.
    std::vector<std::vector<std::uint8_t>> replies;
    if (faults_ != nullptr) {
      for (const auto& f : raw_replies) faults_->transmit_frame(f, &replies);
    } else {
      replies = std::move(raw_replies);
    }
    for (const auto& reply_frame : replies) {
      stats.bytes_received += reply_frame.size();
      const Decoded decoded = decode_frame(reply_frame);
      if (!decoded.ok()) continue;
      if (is_request(message_type(decoded.message))) continue;
      if (request_id_of(decoded.message) != id) continue;
      result.status = CallStatus::kOk;
      result.reply = decoded.message;
      breaker_on_success(to);
      return result;
    }
    // No usable reply this round (corrupted, held back, or mismatched):
    // go around again under the same request id.
    ++stats.corrupt_rounds;
  }
  result.status = CallStatus::kTimeout;
  ++stats.timeouts;
  ++stats.failures;
  breaker_on_failure(to, now);
  return result;
}

RoutedResult RpcChannel::call_routed(HostId from, HostId to,
                                     AnyMessage request, double now,
                                     int max_redirects) {
  // Stamp here so every hop re-sends the SAME request id (call() only
  // stamps zeros, so the id and original deadline survive the hops).
  stamp_header(request, next_request_id(), kNoDeadline);
  RoutedResult routed;
  routed.served_by = to;
  int transmissions = 0;
  for (;;) {
    CallResult leg = call(from, to, request, now);
    transmissions += leg.transmissions;
    routed.result = std::move(leg);
    routed.served_by = to;
    if (!routed.result.ok()) break;
    const auto* redirect = std::get_if<RedirectReply>(&routed.result.reply);
    if (redirect == nullptr) break;
    routed.epoch_hint = redirect->epoch;
    const HostId hint{redirect->primary_host};
    // A hint-less redirect or one pointing back at the refuser cannot be
    // followed — surface the redirect so the caller re-discovers.
    if (routed.redirects >= max_redirects || !hint.valid() || hint == to)
      break;
    // Adopt the redirect's epoch: re-sending the stale one would bounce
    // off the new primary's fence too.
    std::visit(
        [&](auto& m) {
          if constexpr (requires { m.header.epoch; })
            m.header.epoch = redirect->epoch;
        },
        request);
    to = hint;
    ++routed.redirects;
  }
  routed.result.transmissions = transmissions;
  return routed;
}

}  // namespace qres::rpc
