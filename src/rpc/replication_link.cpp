#include "rpc/replication_link.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres::rpc {

RpcCode ship_ack_to_rpc(ShipAckCode code) noexcept {
  switch (code) {
    case ShipAckCode::kApplied: return RpcCode::kOk;
    case ShipAckCode::kGap: return RpcCode::kBadRequest;
    case ShipAckCode::kFenced: return RpcCode::kNotPrimary;
    case ShipAckCode::kDown: return RpcCode::kBrokerDown;
  }
  return RpcCode::kBadRequest;
}

std::optional<ShipAckCode> rpc_to_ship_ack(RpcCode code) noexcept {
  switch (code) {
    case RpcCode::kOk: return ShipAckCode::kApplied;
    case RpcCode::kBadRequest: return ShipAckCode::kGap;
    case RpcCode::kNotPrimary: return ShipAckCode::kFenced;
    case RpcCode::kBrokerDown: return ShipAckCode::kDown;
    case RpcCode::kAdmissionReject:
    case RpcCode::kDeadlineExceeded:
    case RpcCode::kBackpressure:
      return std::nullopt;  // not a ship-ack outcome
  }
  return std::nullopt;
}

namespace {

bool known_replica(const ReplicatedBroker& rep, HostId host) {
  const std::vector<HostId>& hosts = rep.hosts();
  return std::find(hosts.begin(), hosts.end(), host) != hosts.end();
}

}  // namespace

ReplicationService::ReplicationService(BrokerRegistry* registry)
    : registry_(registry) {
  QRES_REQUIRE(registry != nullptr, "ReplicationService: null registry");
}

void ReplicationService::handle_frame(
    const std::vector<std::uint8_t>& frame, double now,
    std::vector<std::vector<std::uint8_t>>* replies) {
  QRES_REQUIRE(replies != nullptr, "ReplicationService: null reply sink");
  ++stats_.frames;
  const Decoded decoded = decode_frame(frame);
  if (!decoded.ok()) {
    // No reply: the primary's channel retries under the same request id
    // and the watermark protocol absorbs the redelivery.
    ++stats_.decode_rejects;
    return;
  }

  if (const auto* ship = std::get_if<JournalShip>(&decoded.message)) {
    const ResourceId resource{ship->resource};
    const HostId target{ship->header.session};
    ReplicatedBroker* rep = resource.valid() &&
                                    resource.value() < registry_->size()
                                ? registry_->replicated(resource)
                                : nullptr;
    if (rep == nullptr || !known_replica(*rep, target)) {
      ++stats_.bad_requests;
      replies->push_back(encode(
          ShipAck{ship->header.request_id, RpcCode::kBadRequest, 0, 0}));
      return;
    }
    ShipBatch batch;
    batch.resource = resource;
    batch.epoch = ship->epoch;
    batch.seq_first = ship->seq_first;
    batch.records = ship->records;
    const ShipAckInfo ack = rep->apply_ship(target, batch, now);
    if (ack.code == ShipAckCode::kApplied)
      ++stats_.ships_applied;
    else
      ++stats_.ships_refused;
    replies->push_back(encode(ShipAck{ship->header.request_id,
                                      ship_ack_to_rpc(ack.code), ack.epoch,
                                      ack.watermark}));
    return;
  }

  if (const auto* promote = std::get_if<PromoteRequest>(&decoded.message)) {
    const ResourceId resource{promote->resource};
    const HostId target{promote->header.session};
    ReplicatedBroker* rep = resource.valid() &&
                                    resource.value() < registry_->size()
                                ? registry_->replicated(resource)
                                : nullptr;
    if (rep == nullptr || !known_replica(*rep, target)) {
      ++stats_.bad_requests;
      replies->push_back(encode(
          PromoteReply{promote->header.request_id, RpcCode::kBadRequest, 0,
                       0}));
      return;
    }
    const bool promoted = rep->promote(target, promote->epoch, now);
    // A redelivered promote (its first ack was lost) finds the epoch
    // already in force at a serving target: answer kOk so the
    // coordinator converges instead of wedging on the lost ack.
    const bool in_force = rep->role_of(target) == ReplicaRole::kPrimary &&
                          rep->epoch_of(target) >= promote->epoch &&
                          rep->replica_up(target);
    if (promoted || in_force)
      ++stats_.promotions;
    else
      ++stats_.promote_refusals;
    replies->push_back(encode(PromoteReply{
        promote->header.request_id,
        (promoted || in_force) ? RpcCode::kOk : RpcCode::kNotPrimary,
        rep->epoch_of(target), rep->watermark_of(target)}));
    return;
  }

  ++stats_.non_replication;
}

ReplicationLink::ReplicationLink(RpcChannel* channel, BrokerRegistry* registry)
    : channel_(channel), registry_(registry) {
  QRES_REQUIRE(channel != nullptr && registry != nullptr,
               "ReplicationLink: null channel/registry");
}

std::optional<ShipAckInfo> ReplicationLink::ship(HostId to,
                                                 const ShipBatch& batch,
                                                 double now) {
  ReplicatedBroker* rep = registry_->replicated(batch.resource);
  if (rep == nullptr) return std::nullopt;
  const HostId from = rep->primary_host();
  if (!from.valid()) return std::nullopt;
  JournalShip msg;
  msg.header.session = to.value();  // replication requests address a replica
  msg.header.deadline = RpcChannel::kNoDeadline;
  msg.header.epoch = batch.epoch;
  msg.resource = batch.resource.value();
  msg.epoch = batch.epoch;
  msg.seq_first = batch.seq_first;
  msg.records = batch.records;
  ++stats_.ships;
  const CallResult res = channel_->call(from, to, AnyMessage{msg}, now);
  if (!res.ok()) {
    ++stats_.ship_lost;
    return std::nullopt;
  }
  const auto* ack = std::get_if<ShipAck>(&res.reply);
  if (ack == nullptr) {
    ++stats_.ship_lost;
    return std::nullopt;
  }
  const std::optional<ShipAckCode> code = rpc_to_ship_ack(ack->code);
  if (!code.has_value()) {
    ++stats_.ship_lost;
    return std::nullopt;
  }
  return ShipAckInfo{*code, ack->epoch, ack->watermark};
}

std::optional<PromoteReply> ReplicationLink::send_promote(
    HostId from, HostId to, ResourceId resource, std::uint64_t epoch,
    double now) {
  PromoteRequest msg;
  msg.header.session = to.value();
  msg.header.deadline = RpcChannel::kNoDeadline;
  msg.header.epoch = epoch;
  msg.resource = resource.value();
  msg.epoch = epoch;
  ++stats_.promotes;
  const CallResult res = channel_->call(from, to, AnyMessage{msg}, now);
  if (!res.ok()) {
    ++stats_.promote_lost;
    return std::nullopt;
  }
  const auto* reply = std::get_if<PromoteReply>(&res.reply);
  if (reply == nullptr) {
    ++stats_.promote_lost;
    return std::nullopt;
  }
  return *reply;
}

}  // namespace qres::rpc
