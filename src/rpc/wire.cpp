#include "rpc/wire.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace qres::rpc {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  // IEEE-754 bit pattern: every value (±inf, NaN payloads, -0.0)
  // round-trips bit-exactly.
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian payload reader. Never reads past `size`;
/// a short read flips `ok` and every later read fails fast.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data[pos++];
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  bool done() const { return ok && pos == size; }
};

void put_request_header(std::vector<std::uint8_t>& out,
                        const RequestHeader& header) {
  put_u64(out, header.request_id);
  put_u32(out, header.session);
  put_f64(out, header.deadline);
  put_u64(out, header.epoch);
}

RequestHeader read_request_header(Reader& r) {
  RequestHeader header;
  header.request_id = r.u64();
  header.session = r.u32();
  header.deadline = r.f64();
  header.epoch = r.u64();
  return header;
}

bool read_code(Reader& r, RpcCode* code) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(RpcCode::kNotPrimary)) {
    r.ok = false;
    return false;
  }
  *code = static_cast<RpcCode>(raw);
  return true;
}

/// Length-prefixed byte string. The length is bounded by the payload
/// itself (Reader::take), so no separate cap is needed beyond
/// kMaxPayloadBytes enforced at the frame level.
void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

bool read_string(Reader& r, std::string* s) {
  const std::uint32_t len = r.u32();
  if (!r.take(len)) return false;
  s->assign(reinterpret_cast<const char*>(r.data + r.pos), len);
  r.pos += len;
  return true;
}

/// Reads a u8 that must be 0 or 1 (booleans on the wire).
std::uint8_t read_bool8(Reader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > 1) r.ok = false;
  return raw;
}

bool read_count(Reader& r, std::uint32_t* count) {
  *count = r.u32();
  if (*count > kMaxVectorEntries) {
    r.ok = false;
    return false;
  }
  return r.ok;
}

void put_payload(std::vector<std::uint8_t>& out, const ReserveRequest& m) {
  put_request_header(out, m.header);
  put_u32(out, m.resource);
  put_f64(out, m.amount);
  put_f64(out, m.lease);
}

void put_payload(std::vector<std::uint8_t>& out, const ReserveReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_f64(out, m.available_after);
  put_f64(out, m.lease_deadline);
}

void put_payload(std::vector<std::uint8_t>& out, const ReleaseRequest& m) {
  put_request_header(out, m.header);
  put_u32(out, m.resource);
  put_u8(out, m.release_all);
  put_f64(out, m.amount);
}

void put_payload(std::vector<std::uint8_t>& out, const ReleaseReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_f64(out, m.released);
}

void put_payload(std::vector<std::uint8_t>& out, const RenewRequest& m) {
  put_request_header(out, m.header);
  put_u32(out, m.resource);
  put_f64(out, m.lease);
}

void put_payload(std::vector<std::uint8_t>& out, const RenewReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_u8(out, m.renewed);
  put_f64(out, m.lease_deadline);
}

void put_payload(std::vector<std::uint8_t>& out, const ReconcileRequest& m) {
  put_request_header(out, m.header);
  put_u32(out, m.resource);
  put_f64(out, m.claimed);
}

void put_payload(std::vector<std::uint8_t>& out, const ReconcileReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_f64(out, m.held);
}

void put_payload(std::vector<std::uint8_t>& out, const QueryRequest& m) {
  put_request_header(out, m.header);
  put_u32(out, static_cast<std::uint32_t>(m.entries.size()));
  for (const QueryEntry& e : m.entries) {
    put_u32(out, e.resource);
    put_f64(out, e.observe_at);
  }
}

void put_payload(std::vector<std::uint8_t>& out, const QueryReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_u32(out, static_cast<std::uint32_t>(m.samples.size()));
  for (const QuerySample& s : m.samples) {
    put_u32(out, s.resource);
    put_f64(out, s.available);
    put_f64(out, s.alpha);
    put_u8(out, s.up);
  }
}

void put_route(std::vector<std::uint8_t>& out,
               const std::vector<std::uint32_t>& route) {
  put_u32(out, static_cast<std::uint32_t>(route.size()));
  for (const std::uint32_t link : route) put_u32(out, link);
}

void put_payload(std::vector<std::uint8_t>& out, const PathMsg& m) {
  put_u64(out, m.request_id);
  put_u64(out, m.flow);
  put_u32(out, m.from_host);
  put_u32(out, m.to_host);
  put_f64(out, m.rate);
  put_route(out, m.route);
}

void put_payload(std::vector<std::uint8_t>& out, const ResvMsg& m) {
  put_u64(out, m.request_id);
  put_u64(out, m.flow);
  put_f64(out, m.rate);
  put_route(out, m.route);
}

void put_payload(std::vector<std::uint8_t>& out, const TearMsg& m) {
  put_u64(out, m.request_id);
  put_u64(out, m.flow);
  put_route(out, m.route);
}

void put_payload(std::vector<std::uint8_t>& out, const JournalShip& m) {
  put_request_header(out, m.header);
  put_u32(out, m.resource);
  put_u64(out, m.epoch);
  put_u64(out, m.seq_first);
  put_u32(out, static_cast<std::uint32_t>(m.records.size()));
  for (const std::string& rec : m.records) put_string(out, rec);
}

void put_payload(std::vector<std::uint8_t>& out, const ShipAck& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_u64(out, m.epoch);
  put_u64(out, m.watermark);
}

void put_payload(std::vector<std::uint8_t>& out, const PromoteRequest& m) {
  put_request_header(out, m.header);
  put_u32(out, m.resource);
  put_u64(out, m.epoch);
}

void put_payload(std::vector<std::uint8_t>& out, const PromoteReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_u64(out, m.epoch);
  put_u64(out, m.watermark);
}

void put_payload(std::vector<std::uint8_t>& out, const RedirectReply& m) {
  put_u64(out, m.request_id);
  put_u8(out, static_cast<std::uint8_t>(m.code));
  put_u64(out, m.epoch);
  put_u32(out, m.primary_host);
}

bool read_route(Reader& r, std::vector<std::uint32_t>* route) {
  std::uint32_t count = 0;
  if (!read_count(r, &count)) return false;
  route->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) route->push_back(r.u32());
  return r.ok;
}

Decoded decode_payload(MessageType type, const std::uint8_t* data,
                       std::size_t size) {
  Reader r{data, size};
  Decoded out;
  switch (type) {
    case MessageType::kReserveRequest: {
      ReserveRequest m;
      m.header = read_request_header(r);
      m.resource = r.u32();
      m.amount = r.f64();
      m.lease = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kReserveReply: {
      ReserveReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.available_after = r.f64();
      m.lease_deadline = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kReleaseRequest: {
      ReleaseRequest m;
      m.header = read_request_header(r);
      m.resource = r.u32();
      m.release_all = read_bool8(r);
      m.amount = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kReleaseReply: {
      ReleaseReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.released = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kRenewRequest: {
      RenewRequest m;
      m.header = read_request_header(r);
      m.resource = r.u32();
      m.lease = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kRenewReply: {
      RenewReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.renewed = read_bool8(r);
      m.lease_deadline = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kReconcileRequest: {
      ReconcileRequest m;
      m.header = read_request_header(r);
      m.resource = r.u32();
      m.claimed = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kReconcileReply: {
      ReconcileReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.held = r.f64();
      out.message = m;
      break;
    }
    case MessageType::kQueryRequest: {
      QueryRequest m;
      m.header = read_request_header(r);
      std::uint32_t count = 0;
      if (read_count(r, &count)) {
        m.entries.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          QueryEntry e;
          e.resource = r.u32();
          e.observe_at = r.f64();
          m.entries.push_back(e);
        }
      }
      out.message = m;
      break;
    }
    case MessageType::kQueryReply: {
      QueryReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      std::uint32_t count = 0;
      if (read_count(r, &count)) {
        m.samples.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          QuerySample s;
          s.resource = r.u32();
          s.available = r.f64();
          s.alpha = r.f64();
          s.up = read_bool8(r);
          m.samples.push_back(s);
        }
      }
      out.message = m;
      break;
    }
    case MessageType::kPathMsg: {
      PathMsg m;
      m.request_id = r.u64();
      m.flow = r.u64();
      m.from_host = r.u32();
      m.to_host = r.u32();
      m.rate = r.f64();
      read_route(r, &m.route);
      out.message = m;
      break;
    }
    case MessageType::kResvMsg: {
      ResvMsg m;
      m.request_id = r.u64();
      m.flow = r.u64();
      m.rate = r.f64();
      read_route(r, &m.route);
      out.message = m;
      break;
    }
    case MessageType::kTearMsg: {
      TearMsg m;
      m.request_id = r.u64();
      m.flow = r.u64();
      read_route(r, &m.route);
      out.message = m;
      break;
    }
    case MessageType::kJournalShip: {
      JournalShip m;
      m.header = read_request_header(r);
      m.resource = r.u32();
      m.epoch = r.u64();
      m.seq_first = r.u64();
      std::uint32_t count = 0;
      if (read_count(r, &count)) {
        m.records.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          std::string rec;
          if (!read_string(r, &rec)) break;
          m.records.push_back(std::move(rec));
        }
      }
      out.message = m;
      break;
    }
    case MessageType::kShipAck: {
      ShipAck m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.epoch = r.u64();
      m.watermark = r.u64();
      out.message = m;
      break;
    }
    case MessageType::kPromoteRequest: {
      PromoteRequest m;
      m.header = read_request_header(r);
      m.resource = r.u32();
      m.epoch = r.u64();
      out.message = m;
      break;
    }
    case MessageType::kPromoteReply: {
      PromoteReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.epoch = r.u64();
      m.watermark = r.u64();
      out.message = m;
      break;
    }
    case MessageType::kRedirectReply: {
      RedirectReply m;
      m.request_id = r.u64();
      read_code(r, &m.code);
      m.epoch = r.u64();
      m.primary_host = r.u32();
      out.message = m;
      break;
    }
  }
  if (!r.done()) {
    out.status = DecodeStatus::kMalformedPayload;
    return out;
  }
  out.status = DecodeStatus::kOk;
  return out;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64_accum(std::uint64_t hash, const std::uint8_t* data,
                            std::size_t size) noexcept {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept {
  return fnv1a64_accum(kFnvOffset, data, size);
}

const char* to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::kReserveRequest: return "reserve-request";
    case MessageType::kReserveReply: return "reserve-reply";
    case MessageType::kReleaseRequest: return "release-request";
    case MessageType::kReleaseReply: return "release-reply";
    case MessageType::kRenewRequest: return "renew-request";
    case MessageType::kRenewReply: return "renew-reply";
    case MessageType::kReconcileRequest: return "reconcile-request";
    case MessageType::kReconcileReply: return "reconcile-reply";
    case MessageType::kQueryRequest: return "query-request";
    case MessageType::kQueryReply: return "query-reply";
    case MessageType::kPathMsg: return "path";
    case MessageType::kResvMsg: return "resv";
    case MessageType::kTearMsg: return "tear";
    case MessageType::kJournalShip: return "journal-ship";
    case MessageType::kShipAck: return "ship-ack";
    case MessageType::kPromoteRequest: return "promote-request";
    case MessageType::kPromoteReply: return "promote-reply";
    case MessageType::kRedirectReply: return "redirect-reply";
  }
  return "?";
}

const char* to_string(RpcCode code) noexcept {
  switch (code) {
    case RpcCode::kOk: return "ok";
    case RpcCode::kAdmissionReject: return "admission-reject";
    case RpcCode::kBrokerDown: return "broker-down";
    case RpcCode::kBackpressure: return "backpressure";
    case RpcCode::kDeadlineExceeded: return "deadline-exceeded";
    case RpcCode::kBadRequest: return "bad-request";
    case RpcCode::kNotPrimary: return "not-primary";
  }
  return "?";
}

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kChecksumMismatch: return "checksum-mismatch";
    case DecodeStatus::kMalformedPayload: return "malformed-payload";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
  }
  return "?";
}

MessageType message_type(const AnyMessage& message) noexcept {
  // The variant's alternative order matches the MessageType values 1..18.
  return static_cast<MessageType>(message.index() + 1);
}

std::uint64_t request_id_of(const AnyMessage& message) noexcept {
  return std::visit(
      [](const auto& m) -> std::uint64_t {
        if constexpr (requires { m.header.request_id; })
          return m.header.request_id;
        else
          return m.request_id;
      },
      message);
}

bool is_request(MessageType type) noexcept {
  switch (type) {
    case MessageType::kReserveRequest:
    case MessageType::kReleaseRequest:
    case MessageType::kRenewRequest:
    case MessageType::kReconcileRequest:
    case MessageType::kQueryRequest:
      return true;
    case MessageType::kReserveReply:
    case MessageType::kReleaseReply:
    case MessageType::kRenewReply:
    case MessageType::kReconcileReply:
    case MessageType::kQueryReply:
    case MessageType::kPathMsg:
    case MessageType::kResvMsg:
    case MessageType::kTearMsg:
    case MessageType::kJournalShip:
    case MessageType::kShipAck:
    case MessageType::kPromoteRequest:
    case MessageType::kPromoteReply:
    case MessageType::kRedirectReply:
      return false;
  }
  return false;
}

bool is_replication_request(MessageType type) noexcept {
  return type == MessageType::kJournalShip ||
         type == MessageType::kPromoteRequest;
}

std::vector<std::uint8_t> encode(const AnyMessage& message) {
  std::vector<std::uint8_t> payload;
  std::visit([&payload](const auto& m) { put_payload(payload, m); }, message);
  QRES_REQUIRE(payload.size() <= kMaxPayloadBytes,
               "rpc::encode: payload exceeds kMaxPayloadBytes");

  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.push_back('Q');
  frame.push_back('R');
  frame.push_back('P');
  frame.push_back('C');
  put_u8(frame, kWireVersion);
  put_u8(frame, static_cast<std::uint8_t>(message_type(message)));
  put_u16(frame, 0);  // flags, reserved
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  // Checksum covers the header prefix [0, 12) and the payload.
  std::uint64_t sum = fnv1a64_accum(kFnvOffset, frame.data(), 12);
  sum = fnv1a64_accum(sum, payload.data(), payload.size());
  put_u64(frame, sum);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Decoded decode_frame(const std::vector<std::uint8_t>& frame) {
  Decoded out;
  const auto fail = [&out](DecodeStatus status) {
    out.status = status;
    return out;
  };
  if (frame.size() < kHeaderSize) return fail(DecodeStatus::kTruncated);
  const std::uint8_t* d = frame.data();
  if (d[0] != 'Q' || d[1] != 'R' || d[2] != 'P' || d[3] != 'C')
    return fail(DecodeStatus::kBadMagic);
  if (d[4] != kWireVersion) return fail(DecodeStatus::kBadVersion);
  const std::uint8_t raw_type = d[5];
  if (raw_type < static_cast<std::uint8_t>(MessageType::kReserveRequest) ||
      raw_type > static_cast<std::uint8_t>(MessageType::kRedirectReply))
    return fail(DecodeStatus::kBadType);
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(d[8 + i]) << (8 * i);
  if (length > kMaxPayloadBytes) return fail(DecodeStatus::kBadLength);
  if (frame.size() < kHeaderSize + length)
    return fail(DecodeStatus::kTruncated);
  if (frame.size() > kHeaderSize + length)
    return fail(DecodeStatus::kTrailingBytes);
  std::uint64_t declared = 0;
  for (int i = 0; i < 8; ++i)
    declared |= static_cast<std::uint64_t>(d[12 + i]) << (8 * i);
  std::uint64_t sum = fnv1a64_accum(kFnvOffset, d, 12);
  sum = fnv1a64_accum(sum, d + kHeaderSize, length);
  if (sum != declared) return fail(DecodeStatus::kChecksumMismatch);
  if (d[6] != 0 || d[7] != 0) return fail(DecodeStatus::kMalformedPayload);
  return decode_payload(static_cast<MessageType>(raw_type), d + kHeaderSize,
                        length);
}

}  // namespace qres::rpc
