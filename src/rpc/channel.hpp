// The RPC shim: the single gateway every control-plane call goes through
// (DESIGN.md §12; qres_lint rule rpc-direct-exchange bans direct
// IControlTransport::exchange calls everywhere else).
//
// The channel wraps the raw reliable-exchange primitive with:
//
//   * request ids — a deterministic per-channel counter stamped into
//     every typed request; the at-least-once retry loop re-sends under
//     the SAME id, and the BrokerService dedup cache makes redelivery
//     idempotent;
//   * deadline propagation — a request carries an absolute deadline; the
//     channel fast-fails when the budget is already spent, truncates the
//     transport retry train so its worst-case waits fit the remaining
//     budget, and reports kDeadlineExceeded (not kTimeout) when the
//     budget — not the retry budget — was the binding constraint. The
//     server re-checks the deadline at ingress and at drain;
//   * per-peer circuit breakers — after `failure_threshold` consecutive
//     failures the peer's breaker opens and calls fast-fail (no
//     transport attempt, no RNG draws) until a cooldown passes; the
//     first call after the cooldown is a half-open probe that either
//     closes the breaker or re-opens it with a capped-exponential longer
//     cooldown. failure_threshold = 0 (default) disables the breaker
//     entirely, which keeps the shim bit-identical to the legacy direct
//     exchange;
//   * per-peer stats — calls, retries, timeouts, bytes on the wire,
//     breaker trips and state (dumped by `qresctl rpc`).
//
// Two call styles: ping() is the legacy implicit exchange (no payload,
// no server) used by the coordinator/distributed protocols in implicit
// mode; call() is the typed path — encode, frame faults, server, strict
// decode — used in typed mode and by the rpc fuzz differential.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/ids.hpp"
#include "core/transport.hpp"
#include "rpc/frame.hpp"
#include "rpc/wire.hpp"
#include "util/annotations.hpp"
#include "util/flat_map.hpp"

namespace qres::rpc {

/// Per-peer circuit breaker configuration. The default threshold of 0
/// disables the breaker (every call goes to the transport).
struct BreakerConfig {
  int failure_threshold = 0;      ///< consecutive failures before opening
  double cooldown = 2.0;          ///< open -> half-open after this long
  double cooldown_backoff = 2.0;  ///< cooldown growth per failed probe
  double max_cooldown = 16.0;     ///< cap on the grown cooldown
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state) noexcept;

/// How one shim call ended, from the caller's point of view.
enum class CallStatus : std::uint8_t {
  kOk,                ///< matching well-formed reply received
  kTimeout,           ///< transport retries (or frame rounds) exhausted
  kPeerDown,          ///< the transport reported a down host/link
  kDeadlineExceeded,  ///< the propagated deadline was the binding limit
  kBreakerOpen,       ///< fast-failed by an open circuit breaker
};

const char* to_string(CallStatus status) noexcept;

struct QRES_NODISCARD CallResult {
  CallStatus status = CallStatus::kOk;
  int transmissions = 0;  ///< transport transmissions spent
  AnyMessage reply;       ///< meaningful only when status == kOk

  bool ok() const noexcept { return status == CallStatus::kOk; }
};

/// Result of a redirect-following call (see RpcChannel::call_routed).
struct QRES_NODISCARD RoutedResult {
  CallResult result;
  HostId served_by;              ///< peer that produced result.reply
  int redirects = 0;             ///< kNotPrimary hops followed
  std::uint64_t epoch_hint = 0;  ///< epoch from the last RedirectReply

  bool ok() const noexcept { return result.ok(); }
};

struct PeerStats {
  std::uint64_t calls = 0;              ///< ping() + call() attempts
  std::uint64_t failures = 0;           ///< calls that did not end kOk
  std::uint64_t retries = 0;            ///< extra transmissions beyond one
  std::uint64_t timeouts = 0;           ///< kTimeout outcomes
  std::uint64_t peer_down = 0;          ///< kPeerDown outcomes
  std::uint64_t deadline_exceeded = 0;  ///< kDeadlineExceeded outcomes
  std::uint64_t breaker_trips = 0;      ///< closed/half-open -> open edges
  std::uint64_t breaker_fast_fails = 0; ///< calls refused while open
  std::uint64_t corrupt_rounds = 0;     ///< frame rounds with no usable reply
  std::uint64_t bytes_sent = 0;         ///< request frame bytes handed down
  std::uint64_t bytes_received = 0;     ///< reply frame bytes received
};

class RpcChannel {
 public:
  struct Config {
    /// Frame-round retry budget for call(); also the nominal policy whose
    /// waits the deadline truncation reasons about. ping() does NOT use
    /// it (the transport's own policy applies, exactly like the legacy
    /// direct exchange).
    RetryPolicy policy;
    BreakerConfig breaker;
  };

  /// Any of the three collaborators may be null: no transport = perfect
  /// control plane (exchanges succeed without drawing anything), no
  /// server = implicit mode only (ping), no faults = clean frames.
  RpcChannel(IControlTransport* transport, IFrameServer* server,
             IFrameFaults* faults, Config config = {});

  /// Legacy implicit exchange between two proxy hosts: breaker gate,
  /// transport exchange under the TRANSPORT's own retry policy, stats.
  /// With an infinite deadline this is bit-identical to calling
  /// IControlTransport::exchange directly.
  ExchangeResult ping(HostId from, HostId to, double now,
                      double deadline = kNoDeadline);

  /// Typed call: stamps a request id (when the header's is 0) and the
  /// default deadline (when the header's is 0), encodes, moves frames
  /// through the fault hook and the server, strictly decodes replies and
  /// matches them by request id. Retries whole frame rounds under the
  /// same id up to policy.max_attempts; the server's dedup cache makes
  /// the redelivery idempotent.
  CallResult call(HostId from, HostId to, AnyMessage request, double now);

  /// call() that follows kNotPrimary redirects (DESIGN.md §14): when the
  /// reply is a RedirectReply with a usable hint, the request is re-sent
  /// to the hinted host under the SAME request id, the ORIGINAL deadline
  /// and the redirect's epoch — never back into a retry train against
  /// the peer that just declared itself not primary (that train would
  /// burn the remaining deadline re-probing a deposed replica). Stops
  /// after `max_redirects` hops, on a hint-less redirect, or on a hint
  /// that points back at the refusing peer; the caller then re-discovers
  /// via its directory. `served_by` reports where the final reply (or
  /// final redirect) came from.
  RoutedResult call_routed(HostId from, HostId to, AnyMessage request,
                           double now, int max_redirects = 2);

  /// Next request id this channel would stamp (deterministic counter).
  std::uint64_t next_request_id() noexcept { return next_request_id_++; }

  BreakerState breaker_state(HostId peer, double now) const;

  const FlatMap<HostId, PeerStats>& peer_stats() const noexcept {
    return stats_;
  }

  IControlTransport* transport() const noexcept { return transport_; }
  IFrameServer* server() const noexcept { return server_; }

  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

 private:
  struct Breaker {
    int consecutive_failures = 0;
    bool open = false;
    double open_until = 0.0;
    double current_cooldown = 0.0;
  };

  /// True when the breaker refuses this call (open, cooldown running).
  bool breaker_refuses(HostId peer, double now);
  void breaker_on_success(HostId peer);
  void breaker_on_failure(HostId peer, double now);

  /// One transport leg toward `to`. An infinite deadline uses the
  /// transport's own policy (exchange); a finite one truncates
  /// config_.policy's attempt budget to the remaining time and reports
  /// whether truncation bound the attempts.
  ExchangeResult transport_leg(HostId from, HostId to, double now,
                               double deadline, bool* truncated);

  IControlTransport* transport_;
  IFrameServer* server_;
  IFrameFaults* faults_;
  Config config_;
  std::uint64_t next_request_id_ = 1;
  FlatMap<HostId, Breaker> breakers_;
  FlatMap<HostId, PeerStats> stats_;
};

}  // namespace qres::rpc
