// Bounded single-consumer execution queues for the broker service
// (DESIGN.md §12).
//
// Each broker executes its mutating control-plane requests
// (reserve/release/renew/reconcile) from its own bounded FIFO queue,
// drained by a single consumer — replacing the coarse
// lock-around-everything discipline with an explicit admission point.
// The invariants:
//
//   * bounded: the queue never holds more than `capacity` requests;
//   * fast-reject: a post against a full queue fails immediately with a
//     typed kBackpressure reply — producers never block and requests are
//     never dropped silently;
//   * single consumer: only one thread drains (and therefore touches the
//     broker) at a time; any number of producers may post concurrently
//     (MPSC, TSan-exercised in tests/rpc/test_service_queue.cpp);
//   * FIFO per broker: requests execute in post order.
#pragma once

#include <cstdint>
#include <vector>

#include "rpc/wire.hpp"
#include "util/annotations.hpp"

namespace qres::rpc {

/// One broker's bounded MPSC request queue.
class ExecutionQueue {
 public:
  explicit ExecutionQueue(std::size_t capacity);

  ExecutionQueue(const ExecutionQueue&) = delete;
  ExecutionQueue& operator=(const ExecutionQueue&) = delete;

  /// Producer side: enqueues one decoded request, or returns false
  /// immediately when the queue is full (the caller replies
  /// kBackpressure). Never blocks.
  bool try_post(AnyMessage request) QRES_EXCLUDES(mutex_);

  /// Consumer side: removes and returns everything currently queued, in
  /// post order. The caller is the single consumer.
  std::vector<AnyMessage> drain() QRES_EXCLUDES(mutex_);

  std::size_t capacity() const noexcept { return capacity_; }

  struct Stats {
    std::uint64_t posted = 0;    ///< requests accepted
    std::uint64_t rejected = 0;  ///< fast-rejected (queue full)
    std::uint64_t drained = 0;   ///< requests handed to the consumer
    std::size_t depth = 0;       ///< currently queued
    std::size_t high_water = 0;  ///< max depth ever reached
  };
  Stats stats() const QRES_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<AnyMessage> items_ QRES_GUARDED_BY(mutex_);
  Stats stats_ QRES_GUARDED_BY(mutex_);
};

}  // namespace qres::rpc
