// Frame-level fault injection interface for the typed control plane.
//
// The RPC shim (rpc::RpcChannel) moves every serialized frame — requests
// toward the service, replies back — through an optional IFrameFaults
// hook. The FaultPlane (src/signal) implements it with seeded payload
// corruption, frame duplication and hold-back reordering, which is what
// the rpc fuzz mode (tests/fuzz/rpc_fuzz.cpp) uses to prove the strict
// decoder and the at-least-once dedup keep broker accounting
// conservation-exact under storms. Without a hook frames pass through
// verbatim, preserving the zero-fault bit-identity contract.
#pragma once

#include <cstdint>
#include <vector>

namespace qres::rpc {

/// Per-frame fault distribution (all independent, drawn per transmitted
/// frame from the implementing plane's seeded stream; zero probabilities
/// draw nothing).
struct FrameFaultConfig {
  double corrupt_prob = 0.0;    ///< P[one byte of the frame is flipped]
  double duplicate_prob = 0.0;  ///< P[the frame is delivered twice]
  double reorder_prob = 0.0;    ///< P[the frame is held back one slot]

  bool inert() const noexcept {
    return corrupt_prob == 0.0 && duplicate_prob == 0.0 &&
           reorder_prob == 0.0;
  }
};

/// Transmits encoded frames, deciding each frame's fate. At most one
/// frame is ever held back for reordering; a held frame is delivered
/// after the next frame that passes through (or on flush_frames).
class IFrameFaults {
 public:
  virtual ~IFrameFaults() = default;

  /// Transmits one frame: appends the frames actually delivered — the
  /// (possibly corrupted) frame, a duplicate copy, and/or a previously
  /// held-back frame — to `delivered`, in delivery order. May deliver
  /// nothing (the frame was held back for reordering).
  virtual void transmit_frame(
      const std::vector<std::uint8_t>& frame,
      std::vector<std::vector<std::uint8_t>>* delivered) = 0;

  /// Force-delivers any held-back frame (end of a reordering window).
  virtual void flush_frames(
      std::vector<std::vector<std::uint8_t>>* delivered) {
    (void)delivered;
  }
};

/// Receives frames and produces reply frames — the server side of the
/// typed control plane (rpc::BrokerService). Undecodable frames produce
/// no reply (the client's at-least-once loop retransmits); the server
/// counts every typed rejection.
class IFrameServer {
 public:
  virtual ~IFrameServer() = default;

  /// Handles one received frame at simulation time `now`, appending any
  /// reply frames to `replies`.
  virtual void handle_frame(
      const std::vector<std::uint8_t>& frame, double now,
      std::vector<std::vector<std::uint8_t>>* replies) = 0;
};

}  // namespace qres::rpc
