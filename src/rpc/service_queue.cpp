#include "rpc/service_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace qres::rpc {

ExecutionQueue::ExecutionQueue(std::size_t capacity) : capacity_(capacity) {
  QRES_REQUIRE(capacity >= 1, "ExecutionQueue: capacity must be >= 1");
}

bool ExecutionQueue::try_post(AnyMessage request) {
  MutexLock lock(mutex_);
  if (items_.size() >= capacity_) {
    ++stats_.rejected;
    return false;
  }
  items_.push_back(std::move(request));
  ++stats_.posted;
  stats_.depth = items_.size();
  stats_.high_water = std::max(stats_.high_water, items_.size());
  return true;
}

std::vector<AnyMessage> ExecutionQueue::drain() {
  std::vector<AnyMessage> out;
  MutexLock lock(mutex_);
  out.swap(items_);
  stats_.drained += out.size();
  stats_.depth = 0;
  return out;
}

ExecutionQueue::Stats ExecutionQueue::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace qres::rpc
