#include "enforce/sfq.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

FlowId SfqScheduler::add_flow(double weight) {
  QRES_REQUIRE(weight > 0.0, "SfqScheduler: weight must be positive");
  Flow flow;
  flow.weight = weight;
  flow.last_finish = virtual_time_;
  flow.live = true;
  flows_.push_back(std::move(flow));
  return static_cast<FlowId>(flows_.size() - 1);
}

const SfqScheduler::Flow& SfqScheduler::flow(FlowId id) const {
  QRES_REQUIRE(id < flows_.size() && flows_[id].live,
               "SfqScheduler: unknown flow");
  return flows_[id];
}

SfqScheduler::Flow& SfqScheduler::flow(FlowId id) {
  QRES_REQUIRE(id < flows_.size() && flows_[id].live,
               "SfqScheduler: unknown flow");
  return flows_[id];
}

void SfqScheduler::remove_flow(FlowId id) {
  Flow& f = flow(id);
  f.queue.clear();
  f.live = false;
}

void SfqScheduler::enqueue(FlowId id, double length) {
  QRES_REQUIRE(length > 0.0, "SfqScheduler: packet length must be positive");
  Flow& f = flow(id);
  Packet packet;
  // S = max(v(arrival), F of the flow's previous packet).
  packet.start_tag = std::max(virtual_time_, f.last_finish);
  packet.finish_tag = packet.start_tag + length / f.weight;
  packet.length = length;
  f.last_finish = packet.finish_tag;
  f.queue.push_back(packet);
}

std::optional<SfqScheduler::Dispatch> SfqScheduler::dequeue() {
  // Pick the head packet with the smallest start tag (ties: lowest id).
  FlowId best = 0;
  bool found = false;
  double best_tag = 0.0;
  for (FlowId id = 0; id < flows_.size(); ++id) {
    const Flow& f = flows_[id];
    if (!f.live || f.queue.empty()) continue;
    const double tag = f.queue.front().start_tag;
    if (!found || tag < best_tag) {
      found = true;
      best = id;
      best_tag = tag;
    }
  }
  if (!found) return std::nullopt;
  Flow& f = flows_[best];
  const Packet packet = f.queue.front();
  f.queue.pop_front();
  f.served += packet.length;
  // v is the start tag of the packet in service (SFQ's defining rule —
  // this is what keeps v well-defined across idle/busy transitions).
  virtual_time_ = packet.start_tag;
  Dispatch dispatch;
  dispatch.flow = best;
  dispatch.length = packet.length;
  dispatch.start_tag = packet.start_tag;
  dispatch.finish_tag = packet.finish_tag;
  return dispatch;
}

std::size_t SfqScheduler::backlog(FlowId id) const {
  return flow(id).queue.size();
}

std::size_t SfqScheduler::flow_count() const noexcept {
  std::size_t count = 0;
  for (const Flow& f : flows_)
    if (f.live) ++count;
  return count;
}

double SfqScheduler::served(FlowId id) const { return flow(id).served; }

double SfqScheduler::weight(FlowId id) const { return flow(id).weight; }

}  // namespace qres
