// Start-time Fair Queueing (SFQ) packet scheduler — the fair-queueing
// discipline behind the paper's bandwidth enforcement citations (Goyal et
// al. for SFQ; Demers/Keshav/Shenker and Bennett/Zhang for the WFQ
// family).
//
// SFQ assigns each packet a start tag S and finish tag F in virtual time:
//     S(p_f^j) = max(v(arrival), F(p_f^{j-1}))
//     F(p_f^j) = S(p_f^j) + length / weight_f
// packets are served in increasing start-tag order, and the virtual time
// v is the start tag of the packet in service. Backlogged flows receive
// service proportional to their weights with a bounded per-packet
// discrepancy — exactly the property that turns an admitted bandwidth
// reservation (weight = reserved rate) into delivered bandwidth. The
// fairness bound is property-tested.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/ids.hpp"

namespace qres {

using FlowId = std::uint32_t;

class SfqScheduler {
 public:
  SfqScheduler() = default;

  /// Registers a flow with a positive weight (e.g. its reserved rate).
  FlowId add_flow(double weight);

  /// Removes a flow; its queued packets are dropped.
  void remove_flow(FlowId flow);

  /// Enqueues a packet of `length` service units for `flow`.
  void enqueue(FlowId flow, double length);

  /// One dispatched packet.
  struct Dispatch {
    FlowId flow = 0;
    double length = 0.0;
    double start_tag = 0.0;
    double finish_tag = 0.0;
  };

  /// Dequeues the next packet in SFQ order (smallest start tag; ties by
  /// lowest flow id). nullopt when every queue is empty.
  std::optional<Dispatch> dequeue();

  double virtual_time() const noexcept { return virtual_time_; }
  std::size_t backlog(FlowId flow) const;
  std::size_t flow_count() const noexcept;

  /// Cumulative service dispatched for the flow.
  double served(FlowId flow) const;
  double weight(FlowId flow) const;

 private:
  struct Packet {
    double length;
    double start_tag;
    double finish_tag;
  };
  struct Flow {
    double weight = 0.0;
    double last_finish = 0.0;
    double served = 0.0;
    std::deque<Packet> queue;
    bool live = false;
  };
  const Flow& flow(FlowId id) const;
  Flow& flow(FlowId id);

  std::vector<Flow> flows_;
  double virtual_time_ = 0.0;
};

}  // namespace qres
