// Reservation *enforcement* for host resources: a proportional-share
// scheduler in the spirit of the CPU service classes the paper builds on
// (DSRT [1], SFQ-based hierarchical scheduling [2]).
//
// The brokers in src/broker/ decide *whether* a reservation is admitted;
// this scheduler demonstrates that an admitted set of reservations can
// actually be *delivered*: each task is guaranteed its reserved rate
// whenever it demands at least that much, regardless of how much other
// tasks (including misbehaving ones) demand, and unused share is
// redistributed work-conserving in proportion to reservations.
//
// The model is fluid (rate-based): advance(dt) distributes capacity*dt
// units of service among active tasks via progressive filling. Exact
// invariants (tested):
//   * sum(delivered in dt) <= capacity * dt       (never oversubscribed)
//   * delivered_i >= min(demand_i, reserved_i)*dt (guarantee; requires
//     admission control: sum(reserved) <= capacity)
//   * work conservation: if total demand >= capacity, exactly
//     capacity*dt is delivered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"

namespace qres {

/// Identifies a task within one scheduler.
using TaskId = std::uint32_t;

class ProportionalShareScheduler {
 public:
  explicit ProportionalShareScheduler(double capacity);

  double capacity() const noexcept { return capacity_; }

  /// Admits a task with a guaranteed `reserved_rate` (units per TU) and a
  /// current `demand_rate`. Requires reserved_rate >= 0 and the total
  /// reserved rate to stay within capacity (that is the broker's
  /// admission invariant; violating it here is a contract error).
  TaskId add_task(SessionId session, double reserved_rate,
                  double demand_rate);

  /// Changes a task's demand (e.g. a misbehaving task demanding more
  /// than it reserved — it may receive extra only from slack).
  void set_demand(TaskId task, double demand_rate);

  void remove_task(TaskId task);

  std::size_t task_count() const noexcept;
  double total_reserved() const noexcept { return total_reserved_; }

  /// Advances simulated time by dt, distributing capacity*dt of service.
  void advance(double dt);

  /// Cumulative service delivered to the task since admission.
  double delivered(TaskId task) const;
  /// Cumulative demand expressed by the task since admission.
  double demanded(TaskId task) const;
  double reserved_rate(TaskId task) const;
  SessionId session(TaskId task) const;

 private:
  struct Task {
    SessionId session;
    double reserved = 0.0;
    double demand = 0.0;
    double delivered = 0.0;
    double demanded = 0.0;
    bool live = false;
  };
  const Task& task(TaskId id) const;
  Task& task(TaskId id);

  double capacity_;
  double total_reserved_ = 0.0;
  std::vector<Task> tasks_;
};

}  // namespace qres
