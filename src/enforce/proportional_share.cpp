#include "enforce/proportional_share.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

ProportionalShareScheduler::ProportionalShareScheduler(double capacity)
    : capacity_(capacity) {
  QRES_REQUIRE(capacity_ > 0.0,
               "ProportionalShareScheduler: capacity must be positive");
}

TaskId ProportionalShareScheduler::add_task(SessionId session,
                                            double reserved_rate,
                                            double demand_rate) {
  QRES_REQUIRE(session.valid(), "add_task: invalid session");
  QRES_REQUIRE(reserved_rate >= 0.0, "add_task: negative reservation");
  QRES_REQUIRE(demand_rate >= 0.0, "add_task: negative demand");
  QRES_REQUIRE(total_reserved_ + reserved_rate <= capacity_ + 1e-9,
               "add_task: admission invariant violated (total reserved "
               "rate exceeds capacity)");
  Task task;
  task.session = session;
  task.reserved = reserved_rate;
  task.demand = demand_rate;
  task.live = true;
  tasks_.push_back(task);
  total_reserved_ += reserved_rate;
  return static_cast<TaskId>(tasks_.size() - 1);
}

const ProportionalShareScheduler::Task& ProportionalShareScheduler::task(
    TaskId id) const {
  QRES_REQUIRE(id < tasks_.size() && tasks_[id].live,
               "ProportionalShareScheduler: unknown task");
  return tasks_[id];
}

ProportionalShareScheduler::Task& ProportionalShareScheduler::task(
    TaskId id) {
  QRES_REQUIRE(id < tasks_.size() && tasks_[id].live,
               "ProportionalShareScheduler: unknown task");
  return tasks_[id];
}

void ProportionalShareScheduler::set_demand(TaskId id, double demand_rate) {
  QRES_REQUIRE(demand_rate >= 0.0, "set_demand: negative demand");
  task(id).demand = demand_rate;
}

void ProportionalShareScheduler::remove_task(TaskId id) {
  Task& t = task(id);
  total_reserved_ -= t.reserved;
  if (total_reserved_ < 0.0) total_reserved_ = 0.0;
  t.live = false;
}

std::size_t ProportionalShareScheduler::task_count() const noexcept {
  std::size_t count = 0;
  for (const Task& t : tasks_)
    if (t.live) ++count;
  return count;
}

void ProportionalShareScheduler::advance(double dt) {
  QRES_REQUIRE(dt >= 0.0, "advance: negative dt");
  if (dt == 0.0) return;

  // Phase 1: everyone receives min(demand, reservation) — the guarantee.
  double spent = 0.0;
  std::vector<double> want(tasks_.size(), 0.0);  // residual appetite
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Task& t = tasks_[i];
    if (!t.live) continue;
    t.demanded += t.demand * dt;
    const double guaranteed = std::min(t.demand, t.reserved) * dt;
    t.delivered += guaranteed;
    spent += guaranteed;
    want[i] = t.demand * dt - guaranteed;
  }

  // Phase 2: work-conserving redistribution of the slack, proportional to
  // reservations (tasks with zero reservation share equally via a small
  // floor weight), by progressive filling.
  double slack = capacity_ * dt - spent;
  for (int round = 0; round < 64 && slack > 1e-12; ++round) {
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      if (tasks_[i].live && want[i] > 1e-12)
        weight_sum += std::max(tasks_[i].reserved, 1e-6);
    if (weight_sum <= 0.0) break;
    double distributed = 0.0;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      Task& t = tasks_[i];
      if (!t.live || want[i] <= 1e-12) continue;
      const double offer =
          slack * std::max(t.reserved, 1e-6) / weight_sum;
      const double taken = std::min(offer, want[i]);
      t.delivered += taken;
      want[i] -= taken;
      distributed += taken;
    }
    slack -= distributed;
    if (distributed <= 1e-12) break;
  }
}

double ProportionalShareScheduler::delivered(TaskId id) const {
  return task(id).delivered;
}

double ProportionalShareScheduler::demanded(TaskId id) const {
  return task(id).demanded;
}

double ProportionalShareScheduler::reserved_rate(TaskId id) const {
  return task(id).reserved;
}

SessionId ProportionalShareScheduler::session(TaskId id) const {
  return task(id).session;
}

}  // namespace qres
