// Clang thread-safety annotations (no-ops on other compilers).
//
// The `static` CI lane compiles with clang and -Werror=thread-safety, so
// every annotated class gets its locking discipline machine-checked at
// compile time: reads/writes of a QRES_GUARDED_BY(mu) member outside a
// critical section of `mu`, a QRES_REQUIRES(mu) function called without
// the lock, or an unbalanced acquire/release are hard errors there. On
// gcc (the default toolchain) the macros expand to nothing and the
// annotated code compiles unchanged.
//
// Use qres::Mutex / qres::MutexLock (below) instead of std::mutex /
// std::scoped_lock in annotated classes: libstdc++'s std::mutex carries
// no capability attributes, so clang cannot track it. qres::Mutex is a
// zero-cost annotated wrapper; MutexLock is the RAII guard the analysis
// understands, and it satisfies BasicLockable so it plugs into
// std::condition_variable_any for wait loops.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#ifdef QRES_LOCK_WITNESS
#include "util/lock_witness.hpp"
#endif

#if defined(__clang__) && (!defined(SWIG))
#define QRES_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QRES_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lock). The string names the
/// capability kind in diagnostics ("mutex").
#define QRES_CAPABILITY(x) QRES_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define QRES_SCOPED_CAPABILITY QRES_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define QRES_GUARDED_BY(x) QRES_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define QRES_PT_GUARDED_BY(x) QRES_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define QRES_REQUIRES(...) \
  QRES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capability NOT held.
#define QRES_EXCLUDES(...) QRES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (and does not release it).
#define QRES_ACQUIRE(...) \
  QRES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define QRES_RELEASE(...) \
  QRES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define QRES_TRY_ACQUIRE(ret, ...) \
  QRES_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Escape hatch: the function's locking is correct but beyond the
/// analysis (document why at each use).
#define QRES_NO_THREAD_SAFETY_ANALYSIS \
  QRES_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a status-like type or status-returning function: discarding the
/// value is a bug the compiler warns about and qres_lint's
/// unchecked-status rule rejects (tools/qres_lint.cpp builds its symbol
/// index from exactly these marks). Place it on the type when every
/// function returning it is a status source (ExchangeResult,
/// DecodeStatus, JournalStatus, ...), on the function when only that
/// entry point is (bool-returning commit gates like
/// ReplicatedBroker::flush).
#define QRES_NODISCARD [[nodiscard]]

namespace qres {

/// std::mutex with capability annotations: clang's analysis tracks
/// lock()/unlock() pairs and enforces QRES_GUARDED_BY members.
///
/// Under QRES_LOCK_WITNESS (the asan/tsan presets) every acquisition
/// and release additionally feeds the runtime lock-order witness
/// (util/lock_witness.hpp): the process-wide acquisition-edge set is
/// checked for cycles on each first-seen edge, and an inversion aborts
/// with both acquisition stacks. Release builds compile the hooks out
/// entirely.
class QRES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#ifdef QRES_LOCK_WITNESS
  void lock() QRES_ACQUIRE() {
    impl_.lock();
    lock_witness::on_acquire(this);
  }
  void unlock() QRES_RELEASE() {
    lock_witness::on_release(this);
    impl_.unlock();
  }
  bool try_lock() QRES_TRY_ACQUIRE(true) {
    const bool acquired = impl_.try_lock();
    if (acquired) lock_witness::on_try_acquire(this);
    return acquired;
  }
#else
  void lock() QRES_ACQUIRE() { impl_.lock(); }
  void unlock() QRES_RELEASE() { impl_.unlock(); }
  bool try_lock() QRES_TRY_ACQUIRE(true) { return impl_.try_lock(); }
#endif

 private:
  // qres-lint: allow(concurrency-raw-mutex): this IS the sanctioned wrapper
  std::mutex impl_;
};

/// RAII critical section over a qres::Mutex. Also BasicLockable, so a
/// std::condition_variable_any can unlock/relock it inside wait():
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);   // ready_ is GUARDED_BY(mutex_)
///
/// The explicit while-loop form keeps the predicate read inside the
/// analyzed critical section (a wait(lock, pred) lambda would not be).
class QRES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QRES_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() QRES_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable, for std::condition_variable_any::wait.
  void lock() QRES_ACQUIRE() { mutex_.lock(); }
  void unlock() QRES_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

}  // namespace qres
