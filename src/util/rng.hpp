// Deterministic pseudo-random number generation for reproducible
// simulations.
//
// We implement xoshiro256** (Blackman & Vigna) seeded via splitmix64 rather
// than relying on std::mt19937 + std:: distributions, because the standard
// distributions are not bit-reproducible across standard-library
// implementations. Every simulation in this repository is reproducible from
// a single 64-bit seed, on any platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace qres {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    QRES_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in the inclusive range [lo, hi] (Lemire-style
  /// unbiased bounded generation).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    QRES_REQUIRE(lo <= hi, "uniform_u64: lo must be <= hi");
    const std::uint64_t range = hi - lo;
    if (range == ~0ULL) return (*this)();
    const std::uint64_t bound = range + 1;
    // Rejection sampling on the top bits to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return lo + r % bound;
    }
  }

  /// Uniform int in [lo, hi], inclusive.
  int uniform_int(int lo, int hi) {
    QRES_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
    return lo + static_cast<int>(uniform_u64(
                    0, static_cast<std::uint64_t>(hi) - lo));
  }

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    QRES_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p out of [0,1]");
    return uniform01() < p;
  }

  /// Samples an index proportional to the (non-negative) weights.
  /// Requires a non-empty weight vector with a positive sum.
  std::size_t categorical(const std::vector<double>& weights);

  /// Deterministically derives an independent child generator; used to give
  /// each simulation replica / entity its own stream.
  Rng fork() noexcept {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qres
