// A minimal fixed-size thread pool for embarrassingly parallel work:
// running independent simulation replicas concurrently.
//
// Determinism contract: callers assign each task its own pre-derived RNG
// stream and an output slot indexed by task id, so results are identical
// regardless of worker count or scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace qres {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t workers = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueues a task. Must not be called after wait() begins from another
  /// thread; tasks may enqueue further tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished. Must not be called from one of this pool's own
  /// worker threads (throws ContractViolation instead of deadlocking).
  void wait();

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Exceptions from tasks propagate: the first one is rethrown. When
  /// called from one of this pool's own worker threads (a nested
  /// parallel_for inside a task) the iterations run inline on the calling
  /// thread, preserving completion semantics without deadlocking.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ QRES_GUARDED_BY(mutex_);
  // condition_variable_any, not condition_variable: the waits go through
  // qres::MutexLock so clang's thread-safety analysis can see them.
  std::condition_variable_any task_ready_;
  std::condition_variable_any all_done_;
  std::size_t in_flight_ QRES_GUARDED_BY(mutex_) = 0;
  bool stopping_ QRES_GUARDED_BY(mutex_) = false;
};

}  // namespace qres
