// A minimal fixed-size thread pool for embarrassingly parallel work:
// running independent simulation replicas concurrently and fanning the
// planner's pass I / batch admission across workers.
//
// Determinism contract: callers assign each task its own pre-derived RNG
// stream and an output slot indexed by task id, so results are identical
// regardless of worker count or scheduling order.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace qres {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t workers = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueues a task. Must not be called after wait() begins from another
  /// thread; tasks may enqueue further tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished. Must not be called from one of this pool's own
  /// worker threads (throws ContractViolation instead of deadlocking).
  void wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits. Indices are
  /// dispatched in contiguous chunks of `grain` (0 = automatic: roughly
  /// four chunks per worker), and the callable is invoked directly inside
  /// each chunk's loop — no per-index type erasure or allocation, which
  /// matters on the planner hot path (the type-erased per-index dispatch
  /// this replaces cost one std::function call and one queue round trip
  /// per iteration).
  ///
  /// Exceptions from iterations propagate as a single well-defined error:
  /// the first exception captured is rethrown in the caller after every
  /// chunk has finished; subsequent exceptions are swallowed (the batch
  /// is already poisoned, and chunks not yet started when a failure is
  /// flagged are skipped). When called from one of this pool's own worker
  /// threads (a nested parallel_for inside a task) the iterations run
  /// inline on the calling thread, preserving completion semantics
  /// without deadlocking.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
    if (n == 0) return;
    if (on_worker_thread()) {
      // Nested invocation from a task: submitting and waiting would
      // deadlock (this worker would block in wait() while occupying the
      // slot its sub-tasks need). Run the iterations inline instead.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    if (grain == 0)
      grain = std::max<std::size_t>(1, n / (4 * worker_count()));
    run_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

 private:
  /// Type-erased chunk dispatcher behind parallel_for: submits
  /// ceil(n/grain) tasks running chunk(begin, end), waits, and rethrows
  /// the first captured exception. One std::function indirection per
  /// chunk, not per index.
  void run_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& chunk);

  void worker_loop();

  std::vector<std::thread> threads_;
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ QRES_GUARDED_BY(mutex_);
  // condition_variable_any, not condition_variable: the waits go through
  // qres::MutexLock so clang's thread-safety analysis can see them.
  std::condition_variable_any task_ready_;
  std::condition_variable_any all_done_;
  std::size_t in_flight_ QRES_GUARDED_BY(mutex_) = 0;
  bool stopping_ QRES_GUARDED_BY(mutex_) = false;
};

}  // namespace qres
