#include "util/table.hpp"

#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace qres {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  QRES_REQUIRE(!header_.empty(), "TablePrinter: header must be non-empty");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  QRES_REQUIRE(cells.size() == header_.size(),
               "TablePrinter::add_row: cell count must match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace qres
