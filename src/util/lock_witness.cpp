// Runtime lock-order witness implementation (see lock_witness.hpp).
//
// Everything here is debug-lane diagnostics: the containers are keyed by
// mutex addresses because the witness must work before any naming
// scheme exists, and the report is consumed by a human (or a test's
// capturing handler), never by deterministic simulation code — the
// determinism rules' pointer-order concerns do not apply.
#ifdef QRES_LOCK_WITNESS

#include "util/lock_witness.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace qres::lock_witness {
namespace {

struct EdgeInfo {
  // The acquiring thread's held stack when this edge was first seen,
  // bottom first; the last element is the lock being acquired.
  std::vector<const void*> stack;
  std::string thread_id;
};

using Edge = std::pair<const void*, const void*>;

// The witness's own lock. A plain std::mutex on purpose: qres::Mutex
// would re-enter these hooks.
// qres-lint: allow(concurrency-raw-mutex): the witness cannot guard
// itself with the instrumented wrapper without infinite recursion
std::mutex g_mu;

// Pointer-keyed by design: addresses are the only identity mutexes
// have, and iteration order only affects report formatting.
// qres-lint: allow(determinism-pointer-keyed-container): diagnostic-only
// state keyed by mutex addresses; never feeds simulation results
std::map<Edge, EdgeInfo> g_edges;
// qres-lint: allow(determinism-pointer-keyed-container): same rationale
// as g_edges — adjacency mirror for the cycle walk
std::map<const void*, std::set<const void*>> g_adj;

Handler g_handler = nullptr;

// The per-thread held stack MUST be trivially destructible: the main
// thread's thread_locals are destroyed before objects with static
// storage duration, and static-duration destructors (a function-local
// `static ThreadPool`, say) still lock qres::Mutex — which re-enters
// these hooks. A std::vector here would be pushed into after its own
// destructor ran (heap corruption at exit); a flat array stays valid
// storage until the thread truly ends. Depth beyond kMaxHeld is not
// tracked (64 simultaneously-held locks on one thread is already a
// bug in its own right).
constexpr std::size_t kMaxHeld = 64;
thread_local const void* t_held[kMaxHeld];
thread_local std::size_t t_held_count = 0;

std::string thread_id_string() {
  std::ostringstream out;
  out << std::this_thread::get_id();
  return out.str();
}

std::string format_stack(const std::vector<const void*>& stack) {
  std::ostringstream out;
  for (std::size_t i = 0; i < stack.size(); ++i)
    out << (i == 0 ? "" : " -> ") << stack[i];
  return out.str();
}

void default_handler(const std::string& report) {
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

// Finds a path `from ->* to` in g_adj (g_mu held). Returns the node
// sequence including both endpoints, or empty when unreachable.
std::vector<const void*> find_path(const void* from, const void* to) {
  std::vector<const void*> path{from};
  // qres-lint: allow(determinism-pointer-keyed-container): DFS scratch
  // over addresses; order only shapes which of several cycles is printed
  std::set<const void*> visited{from};
  // Iterative DFS carrying the current path.
  struct Frame {
    const void* node;
    // qres-lint: allow(determinism-pointer-keyed-container): iterators
    // into the diagnostic adjacency set above
    std::set<const void*>::const_iterator next, end;
  };
  std::vector<Frame> frames;
  auto it = g_adj.find(from);
  if (it == g_adj.end()) return {};
  frames.push_back({from, it->second.begin(), it->second.end()});
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.next == f.end) {
      frames.pop_back();
      path.pop_back();
      continue;
    }
    const void* child = *f.next++;
    if (visited.count(child)) continue;
    visited.insert(child);
    path.push_back(child);
    if (child == to) return path;
    auto cit = g_adj.find(child);
    if (cit == g_adj.end()) {
      path.pop_back();
      continue;
    }
    frames.push_back({child, cit->second.begin(), cit->second.end()});
  }
  return {};
}

// Builds the inversion report for new edge a->b closing the cycle
// through `path` (= b ->* a). g_mu held.
std::string build_report(const void* a, const void* b,
                         const EdgeInfo& fresh,
                         const std::vector<const void*>& path) {
  std::ostringstream out;
  out << "qres lock witness: lock acquisition cycle detected\n";
  out << "  new edge:      " << a << " -> " << b << "  (thread "
      << fresh.thread_id << ", held stack: " << format_stack(fresh.stack)
      << ")\n";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = g_edges.find({path[i], path[i + 1]});
    out << "  prior edge:    " << path[i] << " -> " << path[i + 1];
    if (it != g_edges.end())
      out << "  (thread " << it->second.thread_id
          << ", held stack: " << format_stack(it->second.stack) << ")";
    out << "\n";
  }
  out << "  a consistent global acquisition order is required to rule "
         "out deadlock\n";
  return out.str();
}

}  // namespace

void on_acquire(const void* mutex) {
  std::string report;
  {
    // qres-lint: allow(concurrency-raw-mutex): witness-internal lock (g_mu)
    std::scoped_lock guard(g_mu);
    if (t_held_count > 0) {
      const void* top = t_held[t_held_count - 1];
      Edge edge{top, mutex};
      if (top != mutex && !g_edges.count(edge)) {
        // New edge: does the reverse direction already exist?
        std::vector<const void*> back_path = find_path(mutex, top);
        EdgeInfo info;
        info.stack.assign(t_held, t_held + t_held_count);
        info.stack.push_back(mutex);
        info.thread_id = thread_id_string();
        if (!back_path.empty())
          report = build_report(top, mutex, info, back_path);
        g_edges.emplace(edge, std::move(info));
        g_adj[top].insert(mutex);
      }
    }
    if (t_held_count < kMaxHeld) t_held[t_held_count++] = mutex;
  }
  if (!report.empty()) {
    Handler h;
    {
      // qres-lint: allow(concurrency-raw-mutex): witness-internal lock (g_mu)
      std::scoped_lock guard(g_mu);
      h = g_handler;
    }
    (h != nullptr ? h : &default_handler)(report);
  }
}

void on_try_acquire(const void* mutex) {
  // Held, but no edge: a try_lock never blocks, so it cannot be the
  // waiting half of a deadlock (see header).
  if (t_held_count < kMaxHeld) t_held[t_held_count++] = mutex;
}

void on_release(const void* mutex) {
  // Locks are almost always released LIFO (MutexLock), but unlock() is
  // public: erase the newest matching entry wherever it sits.
  for (std::size_t i = t_held_count; i-- > 0;) {
    if (t_held[i] == mutex) {
      for (std::size_t j = i + 1; j < t_held_count; ++j)
        t_held[j - 1] = t_held[j];
      --t_held_count;
      return;
    }
  }
}

void set_handler(Handler handler) {
  // qres-lint: allow(concurrency-raw-mutex): witness-internal lock (g_mu)
  std::scoped_lock guard(g_mu);
  g_handler = handler;
}

void reset_handler() {
  // qres-lint: allow(concurrency-raw-mutex): witness-internal lock (g_mu)
  std::scoped_lock guard(g_mu);
  g_handler = nullptr;
}

void reset() {
  // qres-lint: allow(concurrency-raw-mutex): witness-internal lock (g_mu)
  std::scoped_lock guard(g_mu);
  g_edges.clear();
  g_adj.clear();
  t_held_count = 0;
}

std::size_t edge_count() {
  // qres-lint: allow(concurrency-raw-mutex): witness-internal lock (g_mu)
  std::scoped_lock guard(g_mu);
  return g_edges.size();
}

}  // namespace qres::lock_witness

#else  // !QRES_LOCK_WITNESS

// Anchor so this TU is never empty when the witness is compiled out.
namespace qres::lock_witness {}

#endif  // QRES_LOCK_WITNESS
