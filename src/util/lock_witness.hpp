// Runtime lock-order witness: the dynamic twin of qres_lint's static
// concurrency-lock-order rule (DESIGN.md §10).
//
// The static rule proves the MutexLock nesting it can SEE is acyclic;
// this witness checks the orders that actually happen at runtime,
// including ones threaded through virtual calls, std::function
// callbacks and condition-variable wait loops the textual analyzer
// cannot follow. Compiled in only under QRES_LOCK_WITNESS (the asan and
// tsan CMake presets turn it on; release builds carry zero overhead —
// qres::Mutex does not even reference these hooks).
//
// Model: each thread keeps a stack of the qres::Mutex addresses it
// holds. A blocking acquire of B while A is on top records the directed
// edge A -> B in a global, process-wide edge set, together with a
// snapshot of the acquiring thread's held stack ("acquisition stack").
// The FIRST time a new edge closes a cycle in that set, the witness
// builds a report naming every edge on the cycle with the acquisition
// stack captured when the edge was first seen — both sides of the
// inversion, which is exactly what a deadlock ticket needs — and hands
// it to the installed handler. The default handler prints the report to
// stderr and aborts, so a CI lane running the suite with the witness on
// fails loudly on the first inversion even if the interleaving never
// actually deadlocked.
//
// try_lock successes record the lock as HELD (later blocking acquires
// above it must order against it) but add no edge themselves: a
// try_lock cannot block, so it can never be the waiting half of a
// deadlock cycle.
//
// The edge set is cumulative across the whole process: two orders need
// not race in one run to be caught — thread 1 doing A->B at startup and
// thread 2 doing B->A minutes later still trip the witness.
#pragma once

#ifdef QRES_LOCK_WITNESS

#include <cstddef>
#include <string>

namespace qres::lock_witness {

/// Hook called by qres::Mutex::lock() after the underlying mutex is
/// acquired. Records held state, new ordering edges, and runs cycle
/// detection when the edge is new.
void on_acquire(const void* mutex);

/// Hook for a successful qres::Mutex::try_lock(): records held state
/// only (no ordering edge — see file comment).
void on_try_acquire(const void* mutex);

/// Hook called by qres::Mutex::unlock() before the underlying release.
void on_release(const void* mutex);

/// Receives the human-readable inversion report. Installing a handler
/// replaces the default (print to stderr + abort); tests install a
/// capturing handler around a seeded inversion.
using Handler = void (*)(const std::string& report);
void set_handler(Handler handler);

/// Restores the default abort handler.
void reset_handler();

/// Clears the global edge set and the CALLING thread's held stack —
/// test isolation between cases that reuse mutex addresses.
void reset();

/// Number of distinct acquisition edges recorded so far.
std::size_t edge_count();

}  // namespace qres::lock_witness

#endif  // QRES_LOCK_WITNESS
