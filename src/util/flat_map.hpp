// A small sorted-vector map.
//
// Resource vectors in this library hold a handful of entries (the paper's
// scenarios use 1-4 resources per component); a contiguous sorted vector
// beats node-based maps on both locality and allocation count
// (Core Guidelines P.10 / SL.con.2: prefer vector-backed containers).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace qres {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = typename std::vector<value_type>::iterator;

  FlatMap() = default;

  /// Builds from an unsorted list; later duplicates overwrite earlier ones.
  FlatMap(std::initializer_list<value_type> init) {
    for (const auto& [k, v] : init) insert_or_assign(k, v);
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }
  iterator begin() noexcept { return entries_.begin(); }
  iterator end() noexcept { return entries_.end(); }

  bool contains(const Key& key) const noexcept { return find(key) != end(); }

  const_iterator find(const Key& key) const noexcept {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  iterator find(const Key& key) noexcept {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  /// Inserts or overwrites; returns a reference to the stored value.
  Value& insert_or_assign(const Key& key, Value value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return it->second;
    }
    it = entries_.insert(it, {key, std::move(value)});
    return it->second;
  }

  /// Operator[] default-constructs missing values, like std::map.
  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    it = entries_.insert(it, {key, Value{}});
    return it->second;
  }

  /// Checked access; requires the key to be present.
  const Value& at(const Key& key) const {
    auto it = find(key);
    QRES_REQUIRE(it != end(), "FlatMap::at: key not found");
    return it->second;
  }

  Value& at(const Key& key) {
    auto it = find(key);
    QRES_REQUIRE(it != end(), "FlatMap::at: key not found");
    return it->second;
  }

  /// Removes the key if present; returns whether anything was removed.
  bool erase(const Key& key) noexcept {
    auto it = find(key);
    if (it == end()) return false;
    entries_.erase(it);
    return true;
  }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  const_iterator lower_bound(const Key& key) const noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  iterator lower_bound(const Key& key) noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace qres
