#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/assert.hpp"

namespace qres {

namespace {
// Pool the current thread belongs to, if it is a worker. Lets blocking
// entry points detect re-entry from their own workers (which would
// deadlock: the worker would wait for tasks only it can run).
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return current_worker_pool == this;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QRES_REQUIRE(task != nullptr, "ThreadPool::submit: null task");
  {
    MutexLock lock(mutex_);
    QRES_REQUIRE(!stopping_, "ThreadPool::submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  QRES_REQUIRE(!on_worker_thread(),
               "ThreadPool::wait called from one of this pool's own worker "
               "threads (would deadlock; use parallel_for, which runs "
               "inline when nested)");
  MutexLock lock(mutex_);
  // Explicit wait loop: the predicate read of in_flight_ stays inside
  // the analyzed critical section (a wait(lock, pred) lambda would not).
  while (in_flight_ != 0) all_done_.wait(lock);
}

void ThreadPool::run_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk) {
  QRES_REQUIRE(chunk != nullptr, "ThreadPool::parallel_for: null function");
  QRES_REQUIRE(grain > 0, "ThreadPool::parallel_for: zero grain");
  std::atomic<bool> failed{false};
  Mutex error_mutex;
  std::exception_ptr first_error;  // written/read under error_mutex only
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(begin + grain, n);
    submit([&, begin, end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        chunk(begin, end);
      } catch (...) {
        MutexLock guard(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) task_ready_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace qres
