// Contract-checking macros (C++ Core Guidelines I.6/I.8 style).
//
// QRES_REQUIRE  - precondition on a public API; always checked, throws
//                 qres::ContractViolation so callers can test misuse.
// QRES_ENSURE   - postcondition; always checked, throws.
// QRES_ASSERT   - internal invariant; checked unless NDEBUG, aborts.
#pragma once

#include <stdexcept>
#include <string>

namespace qres {

/// Thrown when a checked precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string text(kind);
  text += " failed: ";
  text += expr;
  text += " at ";
  text += file;
  text += ":";
  text += std::to_string(line);
  if (!msg.empty()) {
    text += " (";
    text += msg;
    text += ")";
  }
  throw ContractViolation(text);
}
}  // namespace detail

}  // namespace qres

#define QRES_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr))                                                            \
      ::qres::detail::contract_fail("precondition", #expr, __FILE__,        \
                                    __LINE__, (msg));                       \
  } while (false)

#define QRES_ENSURE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::qres::detail::contract_fail("postcondition", #expr, __FILE__,       \
                                    __LINE__, (msg));                       \
  } while (false)

#ifdef NDEBUG
#define QRES_ASSERT(expr) ((void)0)
#else
#include <cstdlib>
#include <cstdio>
#define QRES_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::fprintf(stderr, "QRES_ASSERT failed: %s at %s:%d\n", #expr,      \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (false)
#endif
