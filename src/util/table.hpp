// Fixed-width console table printer used by the experiment harnesses to
// print paper-style tables, plus a tiny CSV writer for machine-readable
// output of the same series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qres {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header underline, each column padded to its widest cell.
  void print(std::ostream& os) const;

  /// Renders the same content as CSV (no padding, comma-separated).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Formats a double with the given number of decimals (locale-free).
  static std::string fmt(double value, int decimals = 2);
  /// Formats a fraction as a percentage string like "97.3%".
  static std::string pct(double fraction, int decimals = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qres
