#include "util/rng.hpp"

#include <cmath>

namespace qres {

double Rng::exponential(double rate) {
  QRES_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  // Inverse-CDF; 1 - uniform01() is in (0, 1] so log() is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  QRES_REQUIRE(!weights.empty(), "categorical: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    QRES_REQUIRE(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  QRES_REQUIRE(total > 0.0, "categorical: weights sum to zero");
  double x = uniform01() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace qres
