// Streaming summary statistics (Welford) and ratio counters.
//
// Used by the simulator's metric collection and by the experiment
// harnesses to aggregate across replicas.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace qres {

/// Single-pass mean / variance accumulator (Welford's algorithm, which is
/// numerically stable for long simulation runs).
class Summary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Mean of the observations; requires at least one observation.
  double mean() const {
    QRES_REQUIRE(count_ > 0, "Summary::mean on empty summary");
    return mean_;
  }

  /// Unbiased sample variance; zero for fewer than two observations.
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const noexcept { return std::sqrt(variance()); }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_half_width() const noexcept {
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
  }

  double min() const {
    QRES_REQUIRE(count_ > 0, "Summary::min on empty summary");
    return min_;
  }
  double max() const {
    QRES_REQUIRE(count_ > 0, "Summary::max on empty summary");
    return max_;
  }

  /// Merges another summary (parallel reduction across replicas).
  void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Success/attempt ratio counter (e.g. reservation success rate).
class Ratio {
 public:
  void record(bool success) noexcept {
    ++attempts_;
    if (success) ++successes_;
  }

  std::uint64_t attempts() const noexcept { return attempts_; }
  std::uint64_t successes() const noexcept { return successes_; }

  /// Fraction of successes; zero when nothing was recorded.
  double value() const noexcept {
    return attempts_ == 0
               ? 0.0
               : static_cast<double>(successes_) / static_cast<double>(attempts_);
  }

  void merge(const Ratio& other) noexcept {
    attempts_ += other.attempts_;
    successes_ += other.successes_;
  }

 private:
  std::uint64_t attempts_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace qres
