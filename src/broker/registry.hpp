// Broker registry: owns every broker in the reservation-enabled
// environment and ties broker creation to the ResourceCatalog so each
// broker's resource id is also a catalog entry (name, kind, host).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "broker/network_broker.hpp"
#include "broker/replication.hpp"
#include "broker/resource_broker.hpp"
#include "core/resource.hpp"

namespace qres {

class BrokerRegistry {
 public:
  BrokerRegistry() = default;
  BrokerRegistry(const BrokerRegistry&) = delete;
  BrokerRegistry& operator=(const BrokerRegistry&) = delete;

  /// Creates a broker for a host-local resource (or a physical link when
  /// `kind` is kNetworkBandwidth) and registers it in the catalog.
  ResourceId add_resource(std::string name, ResourceKind kind, HostId host,
                          double capacity, double alpha_window = 3.0,
                          double history_keep = 64.0,
                          AlphaMode alpha_mode = AlphaMode::kTimeWeighted);

  /// Creates a two-level end-to-end network resource over existing link
  /// brokers (by their resource ids, in path order).
  ResourceId add_network_path(std::string name,
                              const std::vector<ResourceId>& link_ids);

  /// Creates a replicated broker group for one logical resource
  /// (DESIGN.md §14). `hosts[0]` serves as the initial primary; the
  /// catalog records it as the resource's owning host (failover re-homes
  /// clients through the ReplicationDirectory, not the catalog).
  ResourceId add_replicated_resource(
      std::string name, ResourceKind kind, const std::vector<HostId>& hosts,
      double capacity, ReplicationConfig config = {},
      double alpha_window = 3.0, double history_keep = 64.0,
      AlphaMode alpha_mode = AlphaMode::kTimeWeighted);

  const ResourceCatalog& catalog() const noexcept { return catalog_; }

  std::size_t size() const noexcept { return brokers_.size(); }

  IBroker& broker(ResourceId id);
  const IBroker& broker(ResourceId id) const;

  /// The underlying ResourceBroker when `id` names a leaf resource (host
  /// resource or physical link); nullptr for composite path brokers.
  /// Durability operations (attach_journal/crash/restart) live on leaves.
  ResourceBroker* leaf(ResourceId id);
  const ResourceBroker* leaf(ResourceId id) const;

  /// The replica group when `id` names a replicated resource; nullptr
  /// otherwise.
  ReplicatedBroker* replicated(ResourceId id);
  const ReplicatedBroker* replicated(ResourceId id) const;

  /// Collects an availability snapshot for the given resources. Each
  /// resource is observed at `now - staleness(id)`; pass a null staleness
  /// function for accurate observations.
  AvailabilityView collect(const std::vector<ResourceId>& ids, double now,
                           const std::function<double(ResourceId)>& staleness =
                               nullptr) const;

 private:
  ResourceCatalog catalog_;
  std::vector<std::unique_ptr<IBroker>> brokers_;
};

}  // namespace qres
