#include "broker/registry.hpp"

#include "util/assert.hpp"

namespace qres {

ResourceId BrokerRegistry::add_resource(std::string name, ResourceKind kind,
                                        HostId host, double capacity,
                                        double alpha_window,
                                        double history_keep,
                                        AlphaMode alpha_mode) {
  const ResourceId id = catalog_.add(name, kind, host);
  brokers_.push_back(std::make_unique<ResourceBroker>(
      id, catalog_.name(id), capacity, alpha_window, history_keep,
      alpha_mode));
  return id;
}

ResourceId BrokerRegistry::add_network_path(
    std::string name, const std::vector<ResourceId>& link_ids) {
  std::vector<IBroker*> links;
  links.reserve(link_ids.size());
  for (ResourceId link : link_ids) links.push_back(&broker(link));
  const ResourceId id =
      catalog_.add(std::move(name), ResourceKind::kNetworkBandwidth);
  brokers_.push_back(
      std::make_unique<NetworkPathBroker>(id, catalog_.name(id),
                                          std::move(links)));
  return id;
}

ResourceId BrokerRegistry::add_replicated_resource(
    std::string name, ResourceKind kind, const std::vector<HostId>& hosts,
    double capacity, ReplicationConfig config, double alpha_window,
    double history_keep, AlphaMode alpha_mode) {
  QRES_REQUIRE(!hosts.empty(),
               "BrokerRegistry::add_replicated_resource: no hosts");
  const ResourceId id = catalog_.add(std::move(name), kind, hosts[0]);
  brokers_.push_back(std::make_unique<ReplicatedBroker>(
      id, catalog_.name(id), capacity, hosts, config, alpha_window,
      history_keep, alpha_mode));
  return id;
}

IBroker& BrokerRegistry::broker(ResourceId id) {
  QRES_REQUIRE(id.valid() && id.value() < brokers_.size(),
               "BrokerRegistry::broker: unknown resource id");
  return *brokers_[id.value()];
}

const IBroker& BrokerRegistry::broker(ResourceId id) const {
  QRES_REQUIRE(id.valid() && id.value() < brokers_.size(),
               "BrokerRegistry::broker: unknown resource id");
  return *brokers_[id.value()];
}

ResourceBroker* BrokerRegistry::leaf(ResourceId id) {
  return dynamic_cast<ResourceBroker*>(&broker(id));
}

const ResourceBroker* BrokerRegistry::leaf(ResourceId id) const {
  return dynamic_cast<const ResourceBroker*>(&broker(id));
}

ReplicatedBroker* BrokerRegistry::replicated(ResourceId id) {
  return dynamic_cast<ReplicatedBroker*>(&broker(id));
}

const ReplicatedBroker* BrokerRegistry::replicated(ResourceId id) const {
  return dynamic_cast<const ReplicatedBroker*>(&broker(id));
}

AvailabilityView BrokerRegistry::collect(
    const std::vector<ResourceId>& ids, double now,
    const std::function<double(ResourceId)>& staleness) const {
  AvailabilityView view;
  for (ResourceId id : ids) {
    double t = now;
    if (staleness) {
      const double lag = staleness(id);
      QRES_REQUIRE(lag >= 0.0, "BrokerRegistry::collect: negative staleness");
      t = now - lag;
      if (t < 0.0) t = 0.0;
    }
    const ResourceObservation obs = broker(id).observe(t);
    view.set(id, obs.available, obs.alpha);
  }
  return view;
}

}  // namespace qres
