#include "broker/network_broker.hpp"

#include <limits>

#include "util/assert.hpp"

namespace qres {

NetworkPathBroker::NetworkPathBroker(ResourceId id, std::string name,
                                     std::vector<IBroker*> links)
    : id_(id), name_(std::move(name)), links_(std::move(links)) {
  QRES_REQUIRE(id_.valid(), "NetworkPathBroker: invalid resource id");
  QRES_REQUIRE(!name_.empty(), "NetworkPathBroker: name must be non-empty");
  QRES_REQUIRE(!links_.empty(), "NetworkPathBroker: path must be non-empty");
  for (const IBroker* link : links_)
    QRES_REQUIRE(link != nullptr, "NetworkPathBroker: null link broker");
}

bool NetworkPathBroker::up() const noexcept {
  for (const IBroker* link : links_)
    if (!link->up()) return false;
  return true;
}

double NetworkPathBroker::capacity() const noexcept {
  double minimum = std::numeric_limits<double>::infinity();
  for (const IBroker* link : links_)
    minimum = std::min(minimum, link->capacity());
  return minimum;
}

double NetworkPathBroker::available() const noexcept {
  double minimum = std::numeric_limits<double>::infinity();
  for (const IBroker* link : links_)
    minimum = std::min(minimum, link->available());
  return minimum;
}

double NetworkPathBroker::available_at(double t) const {
  double minimum = std::numeric_limits<double>::infinity();
  for (const IBroker* link : links_)
    minimum = std::min(minimum, link->available_at(t));
  return minimum;
}

ResourceObservation NetworkPathBroker::observe(double t) const {
  const IBroker* bottleneck = links_.front();
  double minimum = std::numeric_limits<double>::infinity();
  for (const IBroker* link : links_) {
    const double avail = link->available_at(t);
    if (avail < minimum) {
      minimum = avail;
      bottleneck = link;
    }
  }
  return bottleneck->observe(t);
}

bool NetworkPathBroker::reserve(double now, SessionId session, double amount) {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (!links_[i]->reserve(now, session, amount)) {
      // Roll back exactly what this call reserved so far (the session may
      // hold other reservations on these links via other paths).
      for (std::size_t j = 0; j < i; ++j)
        links_[j]->release_amount(now, session, amount);
      return false;
    }
  }
  return true;
}

void NetworkPathBroker::release(double now, SessionId session) {
  for (IBroker* link : links_) link->release(now, session);
}

void NetworkPathBroker::release_amount(double now, SessionId session,
                                       double amount) {
  for (IBroker* link : links_) link->release_amount(now, session, amount);
}

double NetworkPathBroker::held_by(SessionId session) const {
  double minimum = std::numeric_limits<double>::infinity();
  for (const IBroker* link : links_)
    minimum = std::min(minimum, link->held_by(session));
  return minimum;
}

bool NetworkPathBroker::reserve_leased(double now, SessionId session,
                                       double amount, double lease) {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (!links_[i]->reserve_leased(now, session, amount, lease)) {
      for (std::size_t j = 0; j < i; ++j)
        links_[j]->release_amount(now, session, amount);
      return false;
    }
  }
  return true;
}

bool NetworkPathBroker::renew_lease(double now, SessionId session,
                                    double lease) {
  bool all = true;
  for (IBroker* link : links_)
    all = link->renew_lease(now, session, lease) && all;
  return all;
}

double NetworkPathBroker::expire_due(double now,
                                     std::vector<SessionId>* expired) {
  // Links shared with other paths get swept more than once per registry
  // sweep; expire_due is idempotent so the extra sweeps are no-ops.
  double freed = 0.0;
  for (IBroker* link : links_) freed += link->expire_due(now, expired);
  return freed;
}

double NetworkPathBroker::lease_deadline(SessionId session) const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const IBroker* link : links_)
    earliest = std::min(earliest, link->lease_deadline(session));
  return earliest;
}

const IBroker& NetworkPathBroker::link(std::size_t index) const {
  QRES_REQUIRE(index < links_.size(),
               "NetworkPathBroker::link: index out of range");
  return *links_[index];
}

}  // namespace qres
