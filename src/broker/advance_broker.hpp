// Advance (book-ahead) reservations — the extension the paper names as
// its next step (§6: "to extend our multi-resource reservation framework
// to support advance reservations", following Foster et al., IWQoS '99).
//
// An advance broker manages one resource's *booking profile over time*:
// a reservation claims an amount over a future interval [start, end).
// Planning-time availability for an interval is the minimum unreserved
// amount over that interval, which plugs straight into the QRG
// construction — the planner is unchanged, only the availability snapshot
// is interval-aware. Immediate reservations are the special case
// start = now with an open end that is closed on release.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/availability.hpp"
#include "core/ids.hpp"
#include "core/resource.hpp"

namespace qres {

/// Identifies one booking within an AdvanceBroker.
using BookingId = std::uint64_t;

class AdvanceBroker {
 public:
  static constexpr double kOpenEnd = std::numeric_limits<double>::infinity();

  AdvanceBroker(ResourceId id, std::string name, double capacity);

  ResourceId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  double capacity() const noexcept { return capacity_; }

  /// Minimum unreserved amount over [start, end). Requires start < end.
  /// An empty book yields the full capacity.
  double min_available(double start, double end) const;

  /// Peak booked amount over [start, end) (capacity - min_available).
  double peak_booked(double start, double end) const {
    return capacity_ - min_available(start, end);
  }

  /// Books `amount` over [start, end) for `session` if it fits under
  /// capacity throughout the interval; returns the booking id, or 0 on
  /// admission failure. `end` may be kOpenEnd for an immediate
  /// reservation of unknown duration.
  BookingId book(SessionId session, double amount, double start, double end);

  /// Cancels a booking entirely (no-op if already cancelled).
  void cancel(BookingId booking);

  /// Closes an open-ended booking at time `end` (releases the tail).
  /// Requires the booking to exist and be open-ended.
  void close(BookingId booking, double end);

  /// Number of live (not cancelled) bookings.
  std::size_t booking_count() const noexcept;

  /// Drops bookings that ended at or before `now` (housekeeping; queries
  /// about the dropped past become inaccurate).
  void prune(double now);

 private:
  struct Booking {
    BookingId id = 0;
    SessionId session;
    double amount = 0.0;
    double start = 0.0;
    double end = kOpenEnd;
    bool cancelled = false;
  };

  const Booking* find(BookingId booking) const;

  ResourceId id_;
  std::string name_;
  double capacity_;
  BookingId next_booking_ = 1;
  std::vector<Booking> bookings_;
};

/// Owns the advance brokers of an environment; mirrors BrokerRegistry for
/// the book-ahead world.
class AdvanceRegistry {
 public:
  AdvanceRegistry() = default;
  AdvanceRegistry(const AdvanceRegistry&) = delete;
  AdvanceRegistry& operator=(const AdvanceRegistry&) = delete;

  ResourceId add_resource(std::string name, ResourceKind kind,
                          double capacity);

  AdvanceBroker& broker(ResourceId id);
  const AdvanceBroker& broker(ResourceId id) const;
  std::size_t size() const noexcept { return brokers_.size(); }
  const ResourceCatalog& catalog() const noexcept { return catalog_; }

  /// Availability snapshot for the interval [start, end): per resource,
  /// the minimum unreserved amount over the interval (alpha = 1).
  AvailabilityView collect(const std::vector<ResourceId>& ids, double start,
                           double end) const;

  /// Prunes expired bookings from every broker (see AdvanceBroker::prune).
  void prune_all(double now);

 private:
  ResourceCatalog catalog_;
  std::vector<AdvanceBroker> brokers_;
};

}  // namespace qres
