#include "broker/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "broker/network_broker.hpp"
#include "util/assert.hpp"

namespace qres {

namespace {

constexpr double kTolerance = 1e-6;

std::string describe(const std::string& what, double expected,
                     double actual) {
  std::ostringstream out;
  out << what << ": expected " << expected << ", actual " << actual;
  return out.str();
}

}  // namespace

ReservationAuditor::ReservationAuditor(const BrokerRegistry* registry)
    : registry_(registry) {
  QRES_REQUIRE(registry != nullptr, "ReservationAuditor: null registry");
}

std::vector<ResourceId> ReservationAuditor::leaves_of(
    ResourceId resource) const {
  const IBroker& broker = registry_->broker(resource);
  const auto* path = dynamic_cast<const NetworkPathBroker*>(&broker);
  if (path == nullptr) return {resource};
  std::vector<ResourceId> leaves;
  leaves.reserve(path->link_count());
  for (std::size_t i = 0; i < path->link_count(); ++i)
    leaves.push_back(path->link(i).id());
  return leaves;
}

void ReservationAuditor::on_reserved(SessionId session, ResourceId resource,
                                     double amount) {
  QRES_REQUIRE(session.valid() && amount >= 0.0,
               "ReservationAuditor::on_reserved: bad arguments");
  for (ResourceId leaf : leaves_of(resource))
    host_expect_[session][leaf] += amount;
}

void ReservationAuditor::on_released(SessionId session, ResourceId resource,
                                     double amount) {
  QRES_REQUIRE(amount >= 0.0,
               "ReservationAuditor::on_released: negative amount");
  auto it = host_expect_.find(session);
  if (it == host_expect_.end()) return;
  for (ResourceId leaf : leaves_of(resource)) {
    auto held = it->second.find(leaf);
    if (held == it->second.end()) continue;
    held->second -= std::min(amount, held->second);
    if (held->second <= 1e-12) it->second.erase(leaf);
  }
  if (it->second.empty()) host_expect_.erase(session);
}

void ReservationAuditor::on_session_released(SessionId session) {
  host_expect_.erase(session);
}

const char* to_string(DiscrepancyKind kind) noexcept {
  switch (kind) {
    case DiscrepancyKind::kOrphanReleased: return "orphan-released";
    case DiscrepancyKind::kLostReservation: return "lost-reservation";
  }
  return "?";
}

void ReservationAuditor::on_reconciled(const Discrepancy& discrepancy) {
  QRES_REQUIRE(discrepancy.amount >= 0.0,
               "ReservationAuditor::on_reconciled: negative amount");
  if (discrepancy.session.valid())
    on_released(discrepancy.session, discrepancy.resource,
                discrepancy.amount);
  discrepancies_.push_back(discrepancy);
}

void ReservationAuditor::on_hop_reserved(std::uint64_t flow, LinkId link,
                                         double bandwidth) {
  QRES_REQUIRE(link.valid() && bandwidth >= 0.0,
               "ReservationAuditor::on_hop_reserved: bad arguments");
  link_expect_[flow][link] += bandwidth;
}

void ReservationAuditor::on_hop_released(std::uint64_t flow, LinkId link) {
  auto it = link_expect_.find(flow);
  if (it == link_expect_.end()) return;
  it->second.erase(link);
  if (it->second.empty()) link_expect_.erase(flow);
}

void ReservationAuditor::on_flow_released(std::uint64_t flow) {
  link_expect_.erase(flow);
}

double ReservationAuditor::expected_held(SessionId session,
                                         ResourceId resource) const {
  const auto it = host_expect_.find(session);
  if (it == host_expect_.end()) return 0.0;
  const auto held = it->second.find(resource);
  return held == it->second.end() ? 0.0 : held->second;
}

double ReservationAuditor::expected_link_reserved(LinkId link) const {
  double total = 0.0;
  for (const auto& [flow, hops] : link_expect_) {
    const auto it = hops.find(link);
    if (it != hops.end()) total += it->second;
  }
  return total;
}

std::size_t ReservationAuditor::expected_link_flows(LinkId link) const {
  std::size_t count = 0;
  for (const auto& [flow, hops] : link_expect_)
    if (hops.contains(link)) ++count;
  return count;
}

bool ReservationAuditor::model_empty() const noexcept {
  return host_expect_.empty() && link_expect_.empty();
}

std::vector<std::string> ReservationAuditor::audit_hosts() const {
  std::vector<std::string> violations;

  // Per (session, leaf resource): the broker agrees with the model. Down
  // brokers are out of the audit until they restart and reconcile.
  for (const auto& [session, holdings] : host_expect_) {
    for (const auto& [resource, expected] : holdings) {
      if (!registry_->broker(resource).up()) continue;
      const double actual =
          registry_->broker(resource).held_by(session);
      if (std::abs(actual - expected) > kTolerance)
        violations.push_back(describe(
            "session " + std::to_string(session.value()) + " on " +
                registry_->broker(resource).name(),
            expected, actual));
    }
  }

  // Per leaf resource: nothing held by sessions the model never saw.
  const std::size_t n = registry_->catalog().size();
  for (std::uint32_t r = 0; r < n; ++r) {
    const ResourceId id{r};
    const IBroker& broker = registry_->broker(id);
    if (dynamic_cast<const NetworkPathBroker*>(&broker) != nullptr)
      continue;  // paths have no holdings of their own; links are audited
    if (!broker.up()) continue;
    double expected_total = 0.0;
    for (const auto& [session, holdings] : host_expect_) {
      const auto it = holdings.find(id);
      if (it != holdings.end()) expected_total += it->second;
    }
    const double actual_total = broker.capacity() - broker.available();
    if (std::abs(actual_total - expected_total) > kTolerance)
      violations.push_back(describe("total reserved on " + broker.name(),
                                    expected_total, actual_total));
  }
  return violations;
}

std::vector<std::string> ReservationAuditor::audit_links(
    const std::function<double(LinkId)>& reserved,
    const std::function<std::size_t(LinkId)>& flow_count,
    std::size_t link_count) const {
  QRES_REQUIRE(reserved != nullptr && flow_count != nullptr,
               "ReservationAuditor::audit_links: null accessor");
  std::vector<std::string> violations;
  for (std::uint32_t l = 0; l < link_count; ++l) {
    const LinkId link{l};
    const double expected = expected_link_reserved(link);
    const double actual = reserved(link);
    if (std::abs(actual - expected) > kTolerance)
      violations.push_back(describe(
          "bandwidth on link " + std::to_string(l), expected, actual));
    const std::size_t expected_flows = expected_link_flows(link);
    const std::size_t actual_flows = flow_count(link);
    if (expected_flows != actual_flows)
      violations.push_back(describe(
          "flow count on link " + std::to_string(l),
          static_cast<double>(expected_flows),
          static_cast<double>(actual_flows)));
  }
  return violations;
}

}  // namespace qres
