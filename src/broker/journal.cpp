#include "broker/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "broker/resource_broker.hpp"  // AlphaMode enumerators
#include "util/assert.hpp"

namespace qres {

const char* to_string(JournalOp op) noexcept {
  switch (op) {
    case JournalOp::kSnapshot: return "snapshot";
    case JournalOp::kReserve: return "reserve";
    case JournalOp::kReserveLeased: return "reserve-leased";
    case JournalOp::kRelease: return "release";
    case JournalOp::kReleaseAmount: return "release-amount";
    case JournalOp::kRenewLease: return "renew-lease";
    case JournalOp::kExpire: return "expire";
    case JournalOp::kRestart: return "restart";
    case JournalOp::kReplyCache: return "reply-cache";
  }
  return "?";
}

const char* to_string(JournalStatus status) noexcept {
  switch (status) {
    case JournalStatus::kOk: return "ok";
    case JournalStatus::kOpenFailed: return "open-failed";
    case JournalStatus::kWriteFailed: return "write-failed";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MemoryJournal

JournalStatus MemoryJournal::append(const JournalRecord& record) {
  ++appended_;
  if (record.op == JournalOp::kSnapshot) {
    ++snapshots_;
    if (compact_) {
      // Compaction must not lose the exactly-once replay cache: the
      // snapshot captures broker state but not the dedup cache, which is
      // rebuilt from kReplyCache records after a restart
      // (BrokerService::rebuild_dedup). Dropping them with the prefix
      // means a retried request re-executes against restored holdings — a
      // double grant (found by qres_mc on the `crashy` topology). Retain
      // the newest reply_cache_keep_ of them ahead of the snapshot
      // barrier.
      std::vector<JournalRecord> retained;
      for (const JournalRecord& kept : records_)
        if (kept.op == JournalOp::kReplyCache) retained.push_back(kept);
      if (retained.size() > reply_cache_keep_)
        retained.erase(retained.begin(),
                       retained.end() -
                           static_cast<std::ptrdiff_t>(reply_cache_keep_));
      // Behind the snapshot barrier the replies are fsynced state;
      // grouping with their (now compacted) mutation records no longer
      // applies.
      for (JournalRecord& kept : retained) kept.grouped = false;
      compacted_away_ += records_.size() - retained.size();
      records_ = std::move(retained);
    }
  }
  records_.push_back(record);
  return JournalStatus::kOk;
}

std::size_t MemoryJournal::drop_tail(std::size_t count) {
  std::size_t dropped = 0;
  while (dropped < count && !records_.empty() &&
         records_.back().op != JournalOp::kSnapshot) {
    if (records_.back().grouped) {
      // A grouped reply is fsynced together with the mutation record(s)
      // of its execution: drop the whole pair or keep it. Stopping early
      // (keeping more) is always a legal crash outcome; splitting the
      // pair is not — a kept mutation with a lost reply is the state
      // where a retried request re-executes and double-grants.
      if (count - dropped < 2 || records_.size() < 2 ||
          records_[records_.size() - 2].op == JournalOp::kSnapshot)
        break;
      records_.pop_back();
      records_.pop_back();
      dropped += 2;
      continue;
    }
    records_.pop_back();
    ++dropped;
  }
  return dropped;
}

// ---------------------------------------------------------------------------
// Text serialization. Format, one record per line:
//
//   <op> t=<time> r=<resource> [s=<session>] [a=<amount>] [l=<lease>]
//
// and for snapshots, the full payload appended as counted lists. Doubles
// use %.17g so parsing reproduces them bit-exactly.

namespace {

std::string num(double x) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

double parse_double(std::istringstream& in, const char* what) {
  double x = 0.0;
  if (!(in >> x))
    throw std::runtime_error(std::string("journal: bad ") + what);
  return x;
}

std::uint64_t parse_u64(std::istringstream& in, const char* what) {
  std::uint64_t x = 0;
  if (!(in >> x))
    throw std::runtime_error(std::string("journal: bad ") + what);
  return x;
}

}  // namespace

std::string to_line(const JournalRecord& record) {
  std::ostringstream out;
  out << to_string(record.op) << ' ' << num(record.time) << ' '
      << (record.resource.valid() ? record.resource.value()
                                  : ResourceId::kInvalid);
  if (record.op == JournalOp::kSnapshot) {
    QRES_REQUIRE(!record.name.empty() &&
                     record.name.find_first_of(" \t\n") == std::string::npos,
                 "journal: snapshot name must be non-empty, no whitespace");
    out << ' ' << record.name << ' ' << num(record.capacity) << ' '
        << num(record.alpha_window) << ' ' << num(record.history_keep) << ' '
        << static_cast<unsigned>(record.alpha_mode) << ' '
        << (record.expiry_log_enabled ? 1 : 0) << ' '
        << record.expiry_log_capacity << ' ' << num(record.reserved);
    out << ' ' << record.holdings.size();
    for (const auto& [session, amount] : record.holdings)
      out << ' ' << session << ' ' << num(amount);
    out << ' ' << record.lease_deadlines.size();
    for (const auto& [session, deadline] : record.lease_deadlines)
      out << ' ' << session << ' ' << num(deadline);
    out << ' ' << record.history.size();
    for (const auto& [time, value] : record.history)
      out << ' ' << num(time) << ' ' << num(value);
    return out.str();
  }
  if (record.op == JournalOp::kReplyCache) {
    static const char* digits = "0123456789abcdef";
    out << ' ' << record.request_id << ' ' << (record.grouped ? 1 : 0) << ' '
        << record.reply.size() << ' ';
    for (const std::uint8_t byte : record.reply)
      out << digits[byte >> 4] << digits[byte & 0xf];
    return out.str();
  }
  out << ' ' << record.session.value() << ' ' << num(record.amount) << ' '
      << num(record.lease);
  return out.str();
}

JournalRecord parse_line(const std::string& line) {
  std::istringstream in(line);
  std::string op_name;
  if (!(in >> op_name)) throw std::runtime_error("journal: empty record");
  JournalRecord record;
  bool known = false;
  for (const JournalOp op :
       {JournalOp::kSnapshot, JournalOp::kReserve, JournalOp::kReserveLeased,
        JournalOp::kRelease, JournalOp::kReleaseAmount,
        JournalOp::kRenewLease, JournalOp::kExpire, JournalOp::kRestart,
        JournalOp::kReplyCache}) {
    if (op_name == to_string(op)) {
      record.op = op;
      known = true;
      break;
    }
  }
  if (!known) throw std::runtime_error("journal: unknown op '" + op_name + "'");
  record.time = parse_double(in, "time");
  record.resource =
      ResourceId{static_cast<std::uint32_t>(parse_u64(in, "resource"))};
  if (record.op == JournalOp::kSnapshot) {
    if (!(in >> record.name))
      throw std::runtime_error("journal: bad snapshot name");
    record.capacity = parse_double(in, "capacity");
    record.alpha_window = parse_double(in, "alpha_window");
    record.history_keep = parse_double(in, "history_keep");
    record.alpha_mode =
        static_cast<AlphaMode>(parse_u64(in, "alpha_mode"));
    record.expiry_log_enabled = parse_u64(in, "expiry_log_enabled") != 0;
    record.expiry_log_capacity = parse_u64(in, "expiry_log_capacity");
    record.reserved = parse_double(in, "reserved");
    const std::uint64_t holdings = parse_u64(in, "holdings count");
    for (std::uint64_t i = 0; i < holdings; ++i) {
      const auto session =
          static_cast<std::uint32_t>(parse_u64(in, "holding session"));
      record.holdings.push_back(
          {session, parse_double(in, "holding amount")});
    }
    const std::uint64_t leases = parse_u64(in, "lease count");
    for (std::uint64_t i = 0; i < leases; ++i) {
      const auto session =
          static_cast<std::uint32_t>(parse_u64(in, "lease session"));
      record.lease_deadlines.push_back(
          {session, parse_double(in, "lease deadline")});
    }
    const std::uint64_t history = parse_u64(in, "history count");
    for (std::uint64_t i = 0; i < history; ++i) {
      const double time = parse_double(in, "history time");
      record.history.push_back({time, parse_double(in, "history value")});
    }
    return record;
  }
  if (record.op == JournalOp::kReplyCache) {
    record.request_id = parse_u64(in, "request id");
    record.grouped = parse_u64(in, "grouped flag") != 0;
    const std::uint64_t bytes = parse_u64(in, "reply byte count");
    std::string hex;
    if (bytes > 0 && !(in >> hex))
      throw std::runtime_error("journal: bad reply bytes");
    if (hex.size() != bytes * 2)
      throw std::runtime_error("journal: reply hex length mismatch");
    record.reply.reserve(bytes);
    const auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      throw std::runtime_error("journal: bad reply hex digit");
    };
    for (std::uint64_t i = 0; i < bytes; ++i)
      record.reply.push_back(static_cast<std::uint8_t>(
          (nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1])));
    return record;
  }
  record.session =
      SessionId{static_cast<std::uint32_t>(parse_u64(in, "session"))};
  record.amount = parse_double(in, "amount");
  record.lease = parse_double(in, "lease");
  return record;
}

// ---------------------------------------------------------------------------
// FileJournal

FileJournal::FileJournal(std::string path, bool truncate)
    : path_(std::move(path)) {
  std::ofstream file(path_, truncate ? std::ios::trunc : std::ios::app);
  if (!file)
    throw std::runtime_error("FileJournal: cannot open " + path_);
}

JournalStatus FileJournal::append(const JournalRecord& record) {
  MutexLock lock(mutex_);
  std::ofstream file(path_, std::ios::app);
  if (!file) return JournalStatus::kOpenFailed;
  file << to_line(record) << '\n';
  // qres-lint: allow(unchecked-status): ofstream::flush (name-collides with
  // ReplicatedBroker::flush) returns the stream; durability is checked via
  // the stream state on the next line
  file.flush();
  // A failed flush means the line may be torn or absent on disk: the
  // record is not durable and the counter must not claim it is. The
  // caller (ResourceBroker::journal_append) fails the operation.
  if (!file) return JournalStatus::kWriteFailed;
  ++appended_;
  return JournalStatus::kOk;
}

std::uint64_t FileJournal::appended() const {
  MutexLock lock(mutex_);
  return appended_;
}

std::vector<JournalRecord> FileJournal::load() const {
  MutexLock lock(mutex_);
  return read_file(path_);
}

std::vector<JournalRecord> FileJournal::read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::runtime_error("FileJournal: cannot open " + path);
  std::vector<JournalRecord> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    try {
      records.push_back(parse_line(line));
    } catch (const std::exception& error) {
      throw std::runtime_error(path + ":" + std::to_string(line_number) +
                               ": " + error.what());
    }
  }
  return records;
}

std::vector<JournalRecord> filter_journal(
    const std::vector<JournalRecord>& records, ResourceId resource) {
  std::vector<JournalRecord> filtered;
  for (const JournalRecord& record : records)
    if (record.resource == resource) filtered.push_back(record);
  return filtered;
}

}  // namespace qres
