#include "broker/resource_broker.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace qres {

ResourceBroker::ResourceBroker(ResourceId id, std::string name,
                               double capacity, double alpha_window,
                               double history_keep, AlphaMode alpha_mode)
    : id_(id),
      name_(std::move(name)),
      capacity_(capacity),
      alpha_window_(alpha_window),
      history_keep_(history_keep),
      alpha_mode_(alpha_mode) {
  QRES_REQUIRE(id_.valid(), "ResourceBroker: invalid resource id");
  QRES_REQUIRE(!name_.empty(), "ResourceBroker: name must be non-empty");
  QRES_REQUIRE(capacity_ > 0.0, "ResourceBroker: capacity must be positive");
  QRES_REQUIRE(alpha_window_ > 0.0,
               "ResourceBroker: alpha window must be positive");
  QRES_REQUIRE(history_keep_ >= alpha_window_,
               "ResourceBroker: history must cover the alpha window");
  history_.push_back({0.0, capacity_});
}

double ResourceBroker::available_at(double t) const {
  // Last recorded availability at or before t; history_ is sorted by time.
  auto it = std::upper_bound(
      history_.begin(), history_.end(), t,
      [](double time, const std::pair<double, double>& e) {
        return time < e.first;
      });
  if (it == history_.begin()) return history_.front().second;
  return std::prev(it)->second;
}

double ResourceBroker::windowed_average(double t) const {
  // Clamp the window to recorded history: integrating over [t - T, 0)
  // before the first sample would weight a fictitious pre-simulation
  // period at full capacity, biasing early-simulation alpha.
  double start = t - alpha_window_;
  const double first_time = history_.front().first;
  if (start < first_time) start = std::min(first_time, t);
  // Integrate the piecewise-constant availability over [start, t].
  double integral = 0.0;
  double covered = 0.0;
  double prev_time = start;
  double prev_value = available_at(start);
  for (const auto& [time, value] : history_) {
    if (time <= start) continue;
    if (time > t) break;
    integral += prev_value * (time - prev_time);
    covered += time - prev_time;
    prev_time = time;
    prev_value = value;
  }
  integral += prev_value * (t - prev_time);
  covered += t - prev_time;
  if (covered <= 0.0) return prev_value;
  return integral / covered;
}

ResourceObservation ResourceBroker::observe(double t) const {
  QRES_REQUIRE(up_,
               "ResourceBroker::observe: broker is down — callers must "
               "check up() and treat the broker as unavailable, not empty");
  const double avail = available_at(t);
  ResourceObservation obs;
  obs.available = avail;
  if (alpha_mode_ == AlphaMode::kTimeWeighted) {
    const double avg = windowed_average(t);
    obs.alpha = avg > 0.0 ? avail / avg : 1.0;
    return obs;
  }
  // kReportBased (the paper's eq. 5): r_avg is the mean of the values
  // reported during the past T; updated after each report.
  QRES_REQUIRE(reports_.empty() || t >= reports_.back().first,
               "ResourceBroker: report-based alpha requires "
               "non-decreasing observation times (no staleness)");
  while (!reports_.empty() && reports_.front().first < t - alpha_window_)
    reports_.pop_front();
  if (reports_.empty()) {
    obs.alpha = 1.0;
  } else {
    double sum = 0.0;
    for (const auto& [time, value] : reports_) sum += value;
    const double avg = sum / static_cast<double>(reports_.size());
    obs.alpha = avg > 0.0 ? avail / avg : 1.0;
  }
  reports_.push_back({t, avail});
  return obs;
}

bool ResourceBroker::reserve(double now, SessionId session, double amount) {
  return reserve_impl(now, session, amount, JournalOp::kReserve, 0.0);
}

bool ResourceBroker::reserve_impl(double now, SessionId session,
                                  double amount, JournalOp op, double lease) {
  QRES_REQUIRE(session.valid(), "ResourceBroker::reserve: invalid session");
  QRES_REQUIRE(amount >= 0.0, "ResourceBroker::reserve: negative amount");
  if (!up_) return false;
  // Lazy lease sweep: capacity abandoned by a crashed holder whose lease
  // ran out is reclaimable by the very admission decision that needs it.
  // A no-op (and no history record) when no leases are outstanding. The
  // sweep journals its kExpire records *before* this grant's record, so
  // replaying the grant finds nothing due — replay stays deterministic.
  expire_due(now, nullptr);
  if (amount > available() + 1e-9) return false;
  // Write-ahead order: the grant record must be durable before the grant
  // exists. A refused append fails the admission — the caller sees an
  // ordinary rejection and state still equals journal truth.
  if (!journal_append(op, now, session, amount, lease)) return false;
  holdings_[session] += amount;
  reserved_ += amount;
  if (reserved_ > capacity_) reserved_ = capacity_;  // clamp fp drift
  if (op == JournalOp::kReserveLeased)
    // The whole holding of the session shares one deadline; reserving
    // again is itself a sign of life, so the deadline moves forward.
    lease_deadlines_.insert_or_assign(session, now + lease);
  record(now);
  journal_snapshot_tick(now);
  return true;
}

void ResourceBroker::release(double now, SessionId session) {
  auto it = holdings_.find(session);
  if (it == holdings_.end()) return;
  const double freed = it->second;
  if (!journal_append(JournalOp::kRelease, now, session, freed, 0.0))
    return;  // journal refused: the holding stays (state == journal)
  reserved_ -= freed;
  if (reserved_ < 0.0) reserved_ = 0.0;  // clamp fp drift
  holdings_.erase(session);
  lease_deadlines_.erase(session);
  record(now);
  journal_snapshot_tick(now);
}

void ResourceBroker::release_amount(double now, SessionId session,
                                    double amount) {
  QRES_REQUIRE(amount >= 0.0,
               "ResourceBroker::release_amount: negative amount");
  auto it = holdings_.find(session);
  if (it == holdings_.end()) return;
  const double freed = std::min(amount, it->second);
  // Journaled amount is what will actually be freed, so replay never
  // over-releases a holding the journal shows smaller.
  if (!journal_append(JournalOp::kReleaseAmount, now, session, freed, 0.0))
    return;
  it->second -= freed;
  reserved_ -= freed;
  if (reserved_ < 0.0) reserved_ = 0.0;  // clamp fp drift
  if (it->second <= 1e-12) {
    holdings_.erase(session);
    lease_deadlines_.erase(session);
  }
  record(now);
  journal_snapshot_tick(now);
}

double ResourceBroker::held_by(SessionId session) const {
  auto it = holdings_.find(session);
  return it == holdings_.end() ? 0.0 : it->second;
}

bool ResourceBroker::reserve_leased(double now, SessionId session,
                                    double amount, double lease) {
  QRES_REQUIRE(lease > 0.0,
               "ResourceBroker::reserve_leased: lease must be positive");
  return reserve_impl(now, session, amount, JournalOp::kReserveLeased, lease);
}

bool ResourceBroker::renew_lease(double now, SessionId session,
                                 double lease) {
  QRES_REQUIRE(lease > 0.0,
               "ResourceBroker::renew_lease: lease must be positive");
  expire_due(now, nullptr);  // a renewal that arrives too late must fail
  auto it = lease_deadlines_.find(session);
  if (it == lease_deadlines_.end()) return false;
  if (!journal_append(JournalOp::kRenewLease, now, session, 0.0, lease))
    return false;  // unrecorded renewal would be lost by recovery
  it->second = std::max(it->second, now + lease);
  journal_snapshot_tick(now);
  return true;
}

double ResourceBroker::expire_due(double now,
                                  std::vector<SessionId>* expired) {
  if (lease_deadlines_.empty()) return 0.0;
  std::vector<SessionId> due;
  for (const auto& [session, deadline] : lease_deadlines_)
    if (deadline <= now) due.push_back(session);
  double freed = 0.0;
  for (SessionId session : due) {
    const double held = held_by(session);
    // Write-ahead: an unrecorded reclaim would resurrect the holding on
    // recovery. A refused append leaves the lease due — it stays
    // reclaimable by the next sweep once the sink recovers.
    if (!journal_append(JournalOp::kExpire, now, session, held, 0.0))
      continue;
    freed += held;
    {
      // The reclaim is journaled as kExpire, not as the kRelease the
      // nested release() would emit — one logical mutation, one record.
      const bool was_muted = journal_mute_;
      journal_mute_ = true;
      release(now, session);  // also erases the lease entry
      journal_mute_ = was_muted;
    }
    journal_snapshot_tick(now);
    if (expired) expired->push_back(session);
    if (expiry_log_enabled_) {
      expiry_log_.push_back(session);
      if (expiry_log_.size() > expiry_log_capacity_) {
        expiry_log_.erase(expiry_log_.begin());
        ++expiry_log_dropped_;
      }
    }
  }
  return freed;
}

void ResourceBroker::enable_expiry_log(std::size_t capacity) {
  QRES_REQUIRE(capacity > 0,
               "ResourceBroker::enable_expiry_log: capacity must be positive");
  expiry_log_enabled_ = true;
  expiry_log_capacity_ = capacity;
}

void ResourceBroker::take_expired(std::vector<SessionId>* into) {
  QRES_REQUIRE(into != nullptr, "ResourceBroker::take_expired: null list");
  into->insert(into->end(), expiry_log_.begin(), expiry_log_.end());
  expiry_log_.clear();
}

double ResourceBroker::lease_deadline(SessionId session) const {
  auto it = lease_deadlines_.find(session);
  if (it == lease_deadlines_.end())
    return std::numeric_limits<double>::infinity();
  return it->second;
}

void ResourceBroker::record(double now) {
  QRES_REQUIRE(history_.empty() || now >= history_.back().first,
               "ResourceBroker: time went backwards");
  if (!history_.empty() && history_.back().first == now) {
    history_.back().second = available();
  } else {
    history_.push_back({now, available()});
  }
  prune(now);
}

// ---------------------------------------------------------------------------
// Durability: write-ahead journal + crash–restart. See journal.hpp for the
// record format and DESIGN.md §9 for the recovery invariants.

void ResourceBroker::attach_journal(IJournalSink* sink,
                                    std::size_t snapshot_every, double now) {
  QRES_REQUIRE(sink != nullptr, "ResourceBroker::attach_journal: null sink");
  QRES_REQUIRE(snapshot_every > 0,
               "ResourceBroker::attach_journal: snapshot_every must be > 0");
  QRES_REQUIRE(journal_ == nullptr,
               "ResourceBroker::attach_journal: journal already attached");
  journal_ = sink;
  snapshot_every_ = snapshot_every;
  mutations_since_snapshot_ = 0;
  // The journal always starts (and after compaction, ends) with a
  // self-contained snapshot: recovery needs no out-of-band configuration.
  // Attach-time failure is fatal — a broker that cannot write its very
  // first snapshot has no durability story to degrade to.
  QRES_REQUIRE(journal_->append(snapshot(now)) == JournalStatus::kOk,
               "ResourceBroker::attach_journal: initial snapshot append "
               "failed");
}

void ResourceBroker::rebind_journal(IJournalSink* sink) {
  // Cloning seam for the model checker (src/mc): a copied broker still
  // points at the original's sink; the clone's owner swaps in its own
  // copy (or detaches with nullptr) so explored branches never write
  // into each other's journals.
  journal_ = sink;
}

bool ResourceBroker::journal_append(JournalOp op, double now,
                                    SessionId session, double amount,
                                    double lease) {
  if (journal_ == nullptr || journal_mute_) return true;
  JournalRecord rec;
  rec.op = op;
  rec.time = now;
  rec.resource = id_;
  rec.session = session;
  rec.amount = amount;
  rec.lease = lease;
  if (journal_->append(rec) != JournalStatus::kOk) {
    ++journal_failures_;
    return false;
  }
  ++journaled_mutations_;
  ++mutations_since_snapshot_;
  return true;
}

void ResourceBroker::journal_snapshot_tick(double now) {
  if (journal_ == nullptr || journal_mute_) return;
  if (mutations_since_snapshot_ < snapshot_every_) return;
  // Compaction snapshots are an optimization, not a correctness barrier:
  // a refused append just leaves a longer replay tail (and keeps the
  // counter high, so the next mutation retries the snapshot).
  if (journal_->append(snapshot(now)) == JournalStatus::kOk)
    mutations_since_snapshot_ = 0;
  else
    ++journal_failures_;
}

JournalRecord ResourceBroker::snapshot(double now) const {
  JournalRecord snap;
  snap.op = JournalOp::kSnapshot;
  snap.time = now;
  snap.resource = id_;
  snap.name = name_;
  snap.capacity = capacity_;
  snap.alpha_window = alpha_window_;
  snap.history_keep = history_keep_;
  snap.alpha_mode = alpha_mode_;
  snap.expiry_log_enabled = expiry_log_enabled_;
  snap.expiry_log_capacity = expiry_log_capacity_;
  snap.reserved = reserved_;
  for (const auto& [session, amount] : holdings_)
    snap.holdings.push_back({session.value(), amount});
  for (const auto& [session, deadline] : lease_deadlines_)
    snap.lease_deadlines.push_back({session.value(), deadline});
  snap.history = history_;
  return snap;
}

void ResourceBroker::restore_from(const JournalRecord& snap) {
  QRES_REQUIRE(snap.op == JournalOp::kSnapshot,
               "ResourceBroker::restore_from: not a snapshot record");
  QRES_REQUIRE(snap.resource == id_ && snap.name == name_ &&
                   snap.capacity == capacity_,
               "ResourceBroker::restore_from: snapshot is for a "
               "different broker");
  reserved_ = snap.reserved;
  holdings_.clear();
  for (const auto& [session, amount] : snap.holdings)
    holdings_.insert_or_assign(SessionId{session}, amount);
  lease_deadlines_.clear();
  for (const auto& [session, deadline] : snap.lease_deadlines)
    lease_deadlines_.insert_or_assign(SessionId{session}, deadline);
  expiry_log_enabled_ = snap.expiry_log_enabled;
  expiry_log_capacity_ = static_cast<std::size_t>(snap.expiry_log_capacity);
  history_ = snap.history;
  QRES_REQUIRE(!history_.empty(),
               "ResourceBroker::restore_from: snapshot has no history");
  // Transient notification state describes deliveries to observers, not
  // reservations: recovery resets it empty (see journal.hpp).
  expiry_log_.clear();
  expiry_log_dropped_ = 0;
  reports_.clear();
}

void ResourceBroker::apply(const JournalRecord& rec) {
  switch (rec.op) {
    case JournalOp::kSnapshot:
      restore_from(rec);
      return;
    case JournalOp::kReserve:
      QRES_REQUIRE(reserve(rec.time, rec.session, rec.amount),
                   "journal replay: reserve refused — journal corrupt "
                   "or out of order");
      return;
    case JournalOp::kReserveLeased:
      QRES_REQUIRE(
          reserve_leased(rec.time, rec.session, rec.amount, rec.lease),
          "journal replay: leased reserve refused — journal corrupt "
          "or out of order");
      return;
    case JournalOp::kRelease:
      release(rec.time, rec.session);
      return;
    case JournalOp::kReleaseAmount:
      release_amount(rec.time, rec.session, rec.amount);
      return;
    case JournalOp::kRenewLease:
      QRES_REQUIRE(renew_lease(rec.time, rec.session, rec.lease),
                   "journal replay: renewal refused — journal corrupt "
                   "or out of order");
      return;
    case JournalOp::kExpire:
      // Exactly the session the original sweep reclaimed, applied as a
      // direct release: replay never re-derives "what was due" — the
      // original broker already decided that and journaled it.
      release(rec.time, rec.session);
      return;
    case JournalOp::kRestart:
      // Lease grace from a previous restart: every deadline moves to at
      // least time + grace, applied directly (a renewal sweep here would
      // reclaim overdue leases before the grace could save them).
      if (rec.lease > 0.0)
        for (auto& [session, deadline] : lease_deadlines_)
          deadline = std::max(deadline, rec.time + rec.lease);
      return;
    case JournalOp::kReplyCache:
      // Dedup-cache durability records belong to the broker *service*
      // (BrokerService::rebuild_dedup reads them); they are not broker
      // mutations and replay skips them.
      return;
  }
  QRES_REQUIRE(false, "journal replay: unknown record op");
}

void ResourceBroker::apply_replicated(const JournalRecord& rec) {
  QRES_REQUIRE(up_, "ResourceBroker::apply_replicated: broker is down");
  journal_mute_ = true;
  apply(rec);
  journal_mute_ = false;
}

ResourceBroker ResourceBroker::recover(
    const std::vector<JournalRecord>& records) {
  // Recovery = latest snapshot + replay of the tail. The snapshot is
  // self-contained, so nothing before it is ever needed. For sinks shared
  // by several brokers, filter_journal() first.
  std::size_t snap_index = records.size();
  for (std::size_t i = records.size(); i-- > 0;) {
    if (records[i].op == JournalOp::kSnapshot) {
      snap_index = i;
      break;
    }
  }
  QRES_REQUIRE(snap_index < records.size(),
               "ResourceBroker::recover: journal has no snapshot");
  const JournalRecord& snap = records[snap_index];
  ResourceBroker broker(snap.resource, snap.name, snap.capacity,
                        snap.alpha_window, snap.history_keep,
                        snap.alpha_mode);
  broker.journal_mute_ = true;
  broker.restore_from(snap);
  for (std::size_t i = snap_index + 1; i < records.size(); ++i)
    if (records[i].resource == broker.id_) broker.apply(records[i]);
  broker.journal_mute_ = false;
  return broker;
}

void ResourceBroker::crash(double now) {
  QRES_REQUIRE(up_, "ResourceBroker::crash: broker is already down");
  (void)now;  // the journal, not the broker, remembers when
  up_ = false;
  // Process memory is gone: reservations, leases, history, notification
  // state. Only an attached journal (owned outside the broker) survives.
  reserved_ = 0.0;
  holdings_.clear();
  lease_deadlines_.clear();
  expiry_log_.clear();
  expiry_log_dropped_ = 0;
  reports_.clear();
  history_.clear();
  history_.push_back({0.0, capacity_});
  mutations_since_snapshot_ = 0;
}

void ResourceBroker::restart(double now, double lease_grace) {
  QRES_REQUIRE(!up_, "ResourceBroker::restart: broker is already up");
  QRES_REQUIRE(lease_grace >= 0.0,
               "ResourceBroker::restart: negative lease grace");
  up_ = true;
  if (journal_ == nullptr) return;  // lose-everything restart: stays blank
  const std::vector<JournalRecord> records =
      filter_journal(journal_->load(), id_);
  std::size_t snap_index = records.size();
  for (std::size_t i = records.size(); i-- > 0;) {
    if (records[i].op == JournalOp::kSnapshot) {
      snap_index = i;
      break;
    }
  }
  QRES_REQUIRE(snap_index < records.size(),
               "ResourceBroker::restart: journal has no snapshot");
  journal_mute_ = true;
  restore_from(records[snap_index]);
  for (std::size_t i = snap_index + 1; i < records.size(); ++i)
    apply(records[i]);
  journal_mute_ = false;
  // Grace period: restored lease holders get until now + grace to
  // re-assert themselves (reconciliation), even if their deadline passed
  // during the outage. Journaled (write-ahead: marker first, grace only
  // if the marker is durable) so a crash *during* reconciliation replays
  // identically; then a fresh snapshot lets compacting sinks drop the
  // pre-crash tail.
  JournalRecord marker;
  marker.op = JournalOp::kRestart;
  marker.time = now;
  marker.resource = id_;
  marker.lease = lease_grace;
  if (journal_->append(marker) == JournalStatus::kOk) {
    if (lease_grace > 0.0)
      for (auto& [session, deadline] : lease_deadlines_)
        deadline = std::max(deadline, now + lease_grace);
  } else {
    ++journal_failures_;
  }
  // The post-restart snapshot only speeds compaction; losing it is safe.
  if (journal_->append(snapshot(now)) == JournalStatus::kOk)
    mutations_since_snapshot_ = 0;
  else
    ++journal_failures_;
}

void ResourceBroker::prune(double now) {
  const double horizon = now - history_keep_;
  // Keep the newest entry older than the horizon as the baseline value.
  std::size_t first_kept = 0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].first < horizon)
      first_kept = i;
    else
      break;
  }
  if (first_kept > 0)
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(first_kept));
}

}  // namespace qres
