#include "broker/resource_broker.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace qres {

ResourceBroker::ResourceBroker(ResourceId id, std::string name,
                               double capacity, double alpha_window,
                               double history_keep, AlphaMode alpha_mode)
    : id_(id),
      name_(std::move(name)),
      capacity_(capacity),
      alpha_window_(alpha_window),
      history_keep_(history_keep),
      alpha_mode_(alpha_mode) {
  QRES_REQUIRE(id_.valid(), "ResourceBroker: invalid resource id");
  QRES_REQUIRE(!name_.empty(), "ResourceBroker: name must be non-empty");
  QRES_REQUIRE(capacity_ > 0.0, "ResourceBroker: capacity must be positive");
  QRES_REQUIRE(alpha_window_ > 0.0,
               "ResourceBroker: alpha window must be positive");
  QRES_REQUIRE(history_keep_ >= alpha_window_,
               "ResourceBroker: history must cover the alpha window");
  history_.push_back({0.0, capacity_});
}

double ResourceBroker::available_at(double t) const {
  // Last recorded availability at or before t; history_ is sorted by time.
  auto it = std::upper_bound(
      history_.begin(), history_.end(), t,
      [](double time, const std::pair<double, double>& e) {
        return time < e.first;
      });
  if (it == history_.begin()) return history_.front().second;
  return std::prev(it)->second;
}

double ResourceBroker::windowed_average(double t) const {
  // Clamp the window to recorded history: integrating over [t - T, 0)
  // before the first sample would weight a fictitious pre-simulation
  // period at full capacity, biasing early-simulation alpha.
  double start = t - alpha_window_;
  const double first_time = history_.front().first;
  if (start < first_time) start = std::min(first_time, t);
  // Integrate the piecewise-constant availability over [start, t].
  double integral = 0.0;
  double covered = 0.0;
  double prev_time = start;
  double prev_value = available_at(start);
  for (const auto& [time, value] : history_) {
    if (time <= start) continue;
    if (time > t) break;
    integral += prev_value * (time - prev_time);
    covered += time - prev_time;
    prev_time = time;
    prev_value = value;
  }
  integral += prev_value * (t - prev_time);
  covered += t - prev_time;
  if (covered <= 0.0) return prev_value;
  return integral / covered;
}

ResourceObservation ResourceBroker::observe(double t) const {
  const double avail = available_at(t);
  ResourceObservation obs;
  obs.available = avail;
  if (alpha_mode_ == AlphaMode::kTimeWeighted) {
    const double avg = windowed_average(t);
    obs.alpha = avg > 0.0 ? avail / avg : 1.0;
    return obs;
  }
  // kReportBased (the paper's eq. 5): r_avg is the mean of the values
  // reported during the past T; updated after each report.
  QRES_REQUIRE(reports_.empty() || t >= reports_.back().first,
               "ResourceBroker: report-based alpha requires "
               "non-decreasing observation times (no staleness)");
  while (!reports_.empty() && reports_.front().first < t - alpha_window_)
    reports_.pop_front();
  if (reports_.empty()) {
    obs.alpha = 1.0;
  } else {
    double sum = 0.0;
    for (const auto& [time, value] : reports_) sum += value;
    const double avg = sum / static_cast<double>(reports_.size());
    obs.alpha = avg > 0.0 ? avail / avg : 1.0;
  }
  reports_.push_back({t, avail});
  return obs;
}

bool ResourceBroker::reserve(double now, SessionId session, double amount) {
  QRES_REQUIRE(session.valid(), "ResourceBroker::reserve: invalid session");
  QRES_REQUIRE(amount >= 0.0, "ResourceBroker::reserve: negative amount");
  // Lazy lease sweep: capacity abandoned by a crashed holder whose lease
  // ran out is reclaimable by the very admission decision that needs it.
  // A no-op (and no history record) when no leases are outstanding.
  expire_due(now, nullptr);
  if (amount > available() + 1e-9) return false;
  holdings_[session] += amount;
  reserved_ += amount;
  if (reserved_ > capacity_) reserved_ = capacity_;  // clamp fp drift
  record(now);
  return true;
}

void ResourceBroker::release(double now, SessionId session) {
  auto it = holdings_.find(session);
  if (it == holdings_.end()) return;
  reserved_ -= it->second;
  if (reserved_ < 0.0) reserved_ = 0.0;  // clamp fp drift
  holdings_.erase(session);
  lease_deadlines_.erase(session);
  record(now);
}

void ResourceBroker::release_amount(double now, SessionId session,
                                    double amount) {
  QRES_REQUIRE(amount >= 0.0,
               "ResourceBroker::release_amount: negative amount");
  auto it = holdings_.find(session);
  if (it == holdings_.end()) return;
  const double freed = std::min(amount, it->second);
  it->second -= freed;
  reserved_ -= freed;
  if (reserved_ < 0.0) reserved_ = 0.0;  // clamp fp drift
  if (it->second <= 1e-12) {
    holdings_.erase(session);
    lease_deadlines_.erase(session);
  }
  record(now);
}

double ResourceBroker::held_by(SessionId session) const {
  auto it = holdings_.find(session);
  return it == holdings_.end() ? 0.0 : it->second;
}

bool ResourceBroker::reserve_leased(double now, SessionId session,
                                    double amount, double lease) {
  QRES_REQUIRE(lease > 0.0,
               "ResourceBroker::reserve_leased: lease must be positive");
  if (!reserve(now, session, amount)) return false;
  // The whole holding of the session shares one deadline; reserving again
  // is itself a sign of life, so the deadline moves forward.
  lease_deadlines_.insert_or_assign(session, now + lease);
  return true;
}

bool ResourceBroker::renew_lease(double now, SessionId session,
                                 double lease) {
  QRES_REQUIRE(lease > 0.0,
               "ResourceBroker::renew_lease: lease must be positive");
  expire_due(now, nullptr);  // a renewal that arrives too late must fail
  auto it = lease_deadlines_.find(session);
  if (it == lease_deadlines_.end()) return false;
  it->second = std::max(it->second, now + lease);
  return true;
}

double ResourceBroker::expire_due(double now,
                                  std::vector<SessionId>* expired) {
  if (lease_deadlines_.empty()) return 0.0;
  std::vector<SessionId> due;
  for (const auto& [session, deadline] : lease_deadlines_)
    if (deadline <= now) due.push_back(session);
  double freed = 0.0;
  for (SessionId session : due) {
    freed += held_by(session);
    release(now, session);  // also erases the lease entry
    if (expired) expired->push_back(session);
    if (expiry_log_enabled_) expiry_log_.push_back(session);
  }
  return freed;
}

void ResourceBroker::take_expired(std::vector<SessionId>* into) {
  QRES_REQUIRE(into != nullptr, "ResourceBroker::take_expired: null list");
  into->insert(into->end(), expiry_log_.begin(), expiry_log_.end());
  expiry_log_.clear();
}

double ResourceBroker::lease_deadline(SessionId session) const {
  auto it = lease_deadlines_.find(session);
  if (it == lease_deadlines_.end())
    return std::numeric_limits<double>::infinity();
  return it->second;
}

void ResourceBroker::record(double now) {
  QRES_REQUIRE(history_.empty() || now >= history_.back().first,
               "ResourceBroker: time went backwards");
  if (!history_.empty() && history_.back().first == now) {
    history_.back().second = available();
  } else {
    history_.push_back({now, available()});
  }
  prune(now);
}

void ResourceBroker::prune(double now) {
  const double horizon = now - history_keep_;
  // Keep the newest entry older than the horizon as the baseline value.
  std::size_t first_kept = 0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].first < horizon)
      first_kept = i;
    else
      break;
  }
  if (first_kept > 0)
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(first_kept));
}

}  // namespace qres
