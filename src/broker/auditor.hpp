// Conservation auditor for faulted simulations.
//
// The fault plane makes it possible for reservations to leak: a lost tear
// message, a crashed proxy that never releases, a duplicate Resv that
// reserves twice. The ReservationAuditor maintains an independent model of
// what *should* be held — fed by the harness at every reserve / release /
// expiry it initiates — and proves the brokers agree:
//
//   * per (session, resource): the broker's held_by() equals the model;
//   * per resource: the broker's total reserved amount equals the sum of
//     the model's expectations (catching holdings by sessions the model
//     never heard of — the classic leak);
//   * per signaling link (audited generically, against accessors the
//     caller provides): reserved bandwidth and live-flow count match the
//     model's per-flow hop expectations.
//
// At the end of a run, after every session was torn down or expired, the
// model is empty and the audit degenerates to the conservation proof:
// every unit ever reserved was released or expired, nothing leaked.
//
// Reservations made against a two-level network path are decomposed into
// the path's leaf links internally, so expectations accumulate on leaf
// brokers exactly like the real holdings do (paths sharing a link add up).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "broker/registry.hpp"
#include "util/annotations.hpp"
#include "core/ids.hpp"
#include "util/flat_map.hpp"

namespace qres {

/// What a broker-restart reconciliation pass found and resolved. The
/// journal is the durable truth; both kinds describe the model being
/// brought back into line with it (see SessionCoordinator::
/// reconcile_broker and DESIGN.md §9).
enum class DiscrepancyKind : std::uint8_t {
  /// The journal restored a holding whose session no longer exists (it
  /// died or was torn down during the outage); reconciliation released it
  /// at the broker.
  kOrphanReleased,
  /// A live session's holding is absent from the recovered broker (the
  /// crash lost the un-fsynced journal tail); the session's claim is
  /// forfeit and its expectation dropped.
  kLostReservation,
};

const char* to_string(DiscrepancyKind kind) noexcept;

struct Discrepancy {
  DiscrepancyKind kind = DiscrepancyKind::kOrphanReleased;
  SessionId session;
  ResourceId resource;
  double amount = 0.0;
  double time = 0.0;
};

class ReservationAuditor {
 public:
  /// The registry whose brokers are audited; must outlive the auditor.
  explicit ReservationAuditor(const BrokerRegistry* registry);

  // --- Model mutations (call exactly when the real operation happens).

  /// `session` reserved `amount` on `resource` (a leaf resource or a
  /// network path; paths are decomposed into their links).
  void on_reserved(SessionId session, ResourceId resource, double amount);
  /// `session` released `amount` from `resource` (capped at the
  /// expectation, mirroring IBroker::release_amount).
  void on_released(SessionId session, ResourceId resource, double amount);
  /// Every holding of `session` is gone (full teardown, or its leases
  /// expired).
  void on_session_released(SessionId session);

  /// Folds one reconciliation finding into the model: the broker-side
  /// resolution already happened (toward the journal), so the model drops
  /// the corresponding expectation — a no-op when it never had one — and
  /// the finding is kept as a typed record. Conservation stays exact:
  /// after reconciliation, audit_hosts() is clean again.
  void on_reconciled(const Discrepancy& discrepancy);
  const std::vector<Discrepancy>& discrepancies() const noexcept {
    return discrepancies_;
  }

  /// Flow `flow` reserved `bandwidth` on signaling link `link` (one hop).
  void on_hop_reserved(std::uint64_t flow, LinkId link, double bandwidth);
  /// One hop of the flow was released (tear or soft-state expiry).
  void on_hop_released(std::uint64_t flow, LinkId link);
  /// Every hop of the flow is gone.
  void on_flow_released(std::uint64_t flow);

  // --- Model queries.

  double expected_held(SessionId session, ResourceId resource) const;
  double expected_link_reserved(LinkId link) const;
  std::size_t expected_link_flows(LinkId link) const;
  /// True when the model expects no outstanding holding anywhere — the
  /// precondition for the end-of-run conservation proof.
  bool model_empty() const noexcept;

  // --- Audits. Each returns human-readable violations (empty == pass).

  /// Audits every leaf broker in the registry against the model. Down
  /// brokers are skipped — their in-memory state is gone by definition;
  /// they re-enter the audit after restart + reconciliation.
  QRES_NODISCARD std::vector<std::string> audit_hosts() const;

  /// Audits the signaling plane: `reserved(l)` / `flow_count(l)` must
  /// return the actual state of link l, for all `link_count` links.
  QRES_NODISCARD std::vector<std::string> audit_links(
      const std::function<double(LinkId)>& reserved,
      const std::function<std::size_t(LinkId)>& flow_count,
      std::size_t link_count) const;

 private:
  /// Resolves `resource` to the leaf resources holdings accumulate on.
  std::vector<ResourceId> leaves_of(ResourceId resource) const;

  const BrokerRegistry* registry_;
  /// session -> leaf resource -> expected held amount.
  FlatMap<SessionId, FlatMap<ResourceId, double>> host_expect_;
  /// flow -> signaling link -> expected reserved bandwidth.
  FlatMap<std::uint64_t, FlatMap<LinkId, double>> link_expect_;
  std::vector<Discrepancy> discrepancies_;
};

}  // namespace qres
