#include "broker/advance_broker.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

AdvanceBroker::AdvanceBroker(ResourceId id, std::string name, double capacity)
    : id_(id), name_(std::move(name)), capacity_(capacity) {
  QRES_REQUIRE(id_.valid(), "AdvanceBroker: invalid resource id");
  QRES_REQUIRE(!name_.empty(), "AdvanceBroker: name must be non-empty");
  QRES_REQUIRE(capacity_ > 0.0, "AdvanceBroker: capacity must be positive");
}

double AdvanceBroker::min_available(double start, double end) const {
  QRES_REQUIRE(start < end, "AdvanceBroker: empty or inverted interval");
  // The booked profile is piecewise constant; its peak over [start, end)
  // is attained at `start` or at some booking start inside the window.
  // Sweep the (clamped) booking boundaries.
  double base = 0.0;  // booked amount at `start`
  std::vector<std::pair<double, double>> deltas;  // (time, +/- amount)
  for (const Booking& booking : bookings_) {
    if (booking.cancelled) continue;
    if (booking.end <= start || booking.start >= end) continue;
    if (booking.start <= start) {
      base += booking.amount;
    } else {
      deltas.push_back({booking.start, booking.amount});
    }
    if (booking.end < end) deltas.push_back({booking.end, -booking.amount});
  }
  std::sort(deltas.begin(), deltas.end());
  double peak = base;
  double current = base;
  for (std::size_t i = 0; i < deltas.size();) {
    // Apply all deltas at the same time point before sampling.
    const double t = deltas[i].first;
    while (i < deltas.size() && deltas[i].first == t)
      current += deltas[i++].second;
    peak = std::max(peak, current);
  }
  const double available = capacity_ - peak;
  return available > 0.0 ? available : 0.0;
}

BookingId AdvanceBroker::book(SessionId session, double amount, double start,
                              double end) {
  QRES_REQUIRE(session.valid(), "AdvanceBroker::book: invalid session");
  QRES_REQUIRE(amount >= 0.0, "AdvanceBroker::book: negative amount");
  QRES_REQUIRE(start < end, "AdvanceBroker::book: empty interval");
  if (amount > min_available(start, end) + 1e-9) return 0;
  Booking booking;
  booking.id = next_booking_++;
  booking.session = session;
  booking.amount = amount;
  booking.start = start;
  booking.end = end;
  bookings_.push_back(booking);
  return booking.id;
}

const AdvanceBroker::Booking* AdvanceBroker::find(BookingId booking) const {
  for (const Booking& b : bookings_)
    if (b.id == booking) return &b;
  return nullptr;
}

void AdvanceBroker::cancel(BookingId booking) {
  for (Booking& b : bookings_)
    if (b.id == booking) {
      b.cancelled = true;
      return;
    }
}

void AdvanceBroker::close(BookingId booking, double end) {
  for (Booking& b : bookings_) {
    if (b.id != booking) continue;
    QRES_REQUIRE(!b.cancelled, "AdvanceBroker::close: booking cancelled");
    QRES_REQUIRE(b.end == kOpenEnd,
                 "AdvanceBroker::close: booking is not open-ended");
    QRES_REQUIRE(end > b.start, "AdvanceBroker::close: end before start");
    b.end = end;
    return;
  }
  QRES_REQUIRE(false, "AdvanceBroker::close: unknown booking");
}

std::size_t AdvanceBroker::booking_count() const noexcept {
  std::size_t count = 0;
  for (const Booking& b : bookings_)
    if (!b.cancelled) ++count;
  return count;
}

void AdvanceBroker::prune(double now) {
  bookings_.erase(
      std::remove_if(bookings_.begin(), bookings_.end(),
                     [now](const Booking& b) {
                       return b.cancelled || b.end <= now;
                     }),
      bookings_.end());
}

ResourceId AdvanceRegistry::add_resource(std::string name, ResourceKind kind,
                                         double capacity) {
  const ResourceId id = catalog_.add(name, kind);
  brokers_.emplace_back(id, catalog_.name(id), capacity);
  return id;
}

AdvanceBroker& AdvanceRegistry::broker(ResourceId id) {
  QRES_REQUIRE(id.valid() && id.value() < brokers_.size(),
               "AdvanceRegistry::broker: unknown resource id");
  return brokers_[id.value()];
}

const AdvanceBroker& AdvanceRegistry::broker(ResourceId id) const {
  QRES_REQUIRE(id.valid() && id.value() < brokers_.size(),
               "AdvanceRegistry::broker: unknown resource id");
  return brokers_[id.value()];
}

void AdvanceRegistry::prune_all(double now) {
  for (AdvanceBroker& broker : brokers_) broker.prune(now);
}

AvailabilityView AdvanceRegistry::collect(const std::vector<ResourceId>& ids,
                                          double start, double end) const {
  AvailabilityView view;
  for (ResourceId id : ids)
    view.set(id, broker(id).min_available(start, end), 1.0);
  return view;
}

}  // namespace qres
