// Replicated Resource Brokers: journal shipping + hot-standby failover
// (DESIGN.md §14).
//
// PR 4 made a crashed broker recoverable *after restart*; this subsystem
// makes reservations survive a broker that never comes back. A
// ReplicatedBroker is a group of replicas of one logical resource: the
// primary serves the IBroker interface exactly like a plain
// ResourceBroker, and every journal record it writes (the same
// write-ahead records journal.hpp defines, in their canonical text form)
// is *shipped* to the standbys, which apply it to a shadow ResourceBroker
// and acknowledge a replication watermark.
//
//   * Sync mode: a grant is confirmed only once the configured quorum of
//     replicas (primary included) holds its journal records. A grant the
//     quorum never acknowledged is compensated (journaled inverse
//     release) and refused — so a primary that dies mid-epoch loses no
//     *confirmed* reservation: the most-caught-up standby holds every
//     quorum-acknowledged record by construction (majority intersection),
//     and promotion truncates the unacknowledged tail.
//   * Async mode: grants confirm immediately and records ship when the
//     lag bound is reached — the window of confirmed-but-unshipped
//     grants a primary kill can lose is bounded by `max_async_lag`
//     (measured by bench/ext_failover).
//
// Failover is fenced by a monotonic epoch: every shipped batch carries
// the primary's epoch, promotion adopts a strictly larger one, and a
// deposed primary's batches (and, through the RPC plane, stale clients)
// are refused kNotPrimary. `fencing = false` disables exactly that check
// — the split-brain the model checker demonstrates (src/mc/failover).
//
// Layering: this is broker-layer code (rank 2) — it never touches rpc/.
// The typed wire messages (JournalShip/ShipAck/PromoteRequest) live in
// rpc/wire.hpp, and rpc/replication_link.hpp adapts them onto the
// IShipTransport hook below; a null transport ships in-process.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/resource_broker.hpp"
#include "util/annotations.hpp"
#include "util/flat_map.hpp"

namespace qres {

/// When grants are confirmed relative to replication (see file comment).
enum class ReplicationMode : std::uint8_t { kSync, kAsync };

/// A replica's role within the group. A fenced replica refuses every
/// grant and every shipped batch: it was deposed by a newer epoch and
/// must not serve until an operator rebuilds it.
enum class ReplicaRole : std::uint8_t { kPrimary, kStandby, kFenced };

const char* to_string(ReplicationMode mode) noexcept;
const char* to_string(ReplicaRole role) noexcept;

struct ReplicationConfig {
  ReplicationMode mode = ReplicationMode::kSync;
  /// Replicas (primary included) that must hold a record before a grant
  /// is confirmed in sync mode. 0 = majority (n/2 + 1).
  std::size_t quorum = 0;
  /// Async mode: ship when this many records are pending. 1 degenerates
  /// to ship-on-every-record (still without the confirmation gate).
  std::size_t max_async_lag = 8;
  /// Epoch fencing. Disabling it is for the model checker's split-brain
  /// demonstration only — never run a real topology without it.
  bool fencing = true;
  /// Compaction cadence of each replica's own journal.
  std::size_t snapshot_every = 64;
  /// Records per shipped batch (soft: a batch is extended past the cap
  /// rather than split between a mutation and its grouped reply record).
  std::size_t ship_batch_max = 64;
};

/// How a standby answered (or failed to answer) one shipped batch.
enum class QRES_NODISCARD ShipAckCode : std::uint8_t {
  kApplied,  ///< batch applied (or already held); watermark is current
  kGap,      ///< seq_first is ahead of the watermark — primary must rewind
  kFenced,   ///< batch epoch is stale — sender was deposed
  kDown,     ///< replica process is down
};

const char* to_string(ShipAckCode code) noexcept;

struct QRES_NODISCARD ShipAckInfo {
  ShipAckCode code = ShipAckCode::kApplied;
  std::uint64_t epoch = 0;      ///< epoch in force at the receiver
  std::uint64_t watermark = 0;  ///< records the receiver holds (next seq)
};

/// One shipped batch: contiguous journal records in canonical text form
/// (journal.hpp to_line/parse_line), `seq_first` naming records[0]'s
/// group sequence number.
struct ShipBatch {
  ResourceId resource;
  std::uint64_t epoch = 0;
  std::uint64_t seq_first = 0;
  std::vector<std::string> records;
};

/// Transport hook for shipping batches to a standby. Null transport =
/// in-process delivery (ReplicatedBroker::apply_ship on itself). The RPC
/// adapter (rpc/replication_link.hpp) carries batches through the typed
/// wire plane instead, with its faults, retries and breakers. Returns
/// nullopt when the batch (or its ack) was lost entirely.
class IShipTransport {
 public:
  virtual ~IShipTransport() = default;
  QRES_NODISCARD virtual std::optional<ShipAckInfo> ship(HostId to, const ShipBatch& batch,
                                          double now) = 0;
};

/// Journal sink tee: forwards to the replica's own store and reports
/// every durably-appended record to the owning ReplicatedBroker, which
/// ships it when (and only when) the writing replica is the primary.
class CaptureSink final : public IJournalSink {
 public:
  using Callback = void (*)(void* owner, std::size_t replica,
                            const JournalRecord& record);

  CaptureSink(IJournalSink* inner, void* owner, std::size_t replica,
              Callback on_append)
      : inner_(inner), owner_(owner), replica_(replica),
        on_append_(on_append) {}

  JournalStatus append(const JournalRecord& record) override {
    const JournalStatus status = inner_->append(record);
    if (status == JournalStatus::kOk && on_append_ != nullptr)
      on_append_(owner_, replica_, record);
    return status;
  }
  std::vector<JournalRecord> load() const override { return inner_->load(); }
  std::uint64_t appended() const override { return inner_->appended(); }

 private:
  IJournalSink* inner_;
  void* owner_;
  std::size_t replica_;
  Callback on_append_;
};

/// Counters for `qresctl replication` and the failover bench.
struct ReplicationStats {
  std::uint64_t ship_batches = 0;     ///< batches handed to the transport
  std::uint64_t ship_records = 0;     ///< records across those batches
  std::uint64_t ship_lost = 0;        ///< batches with no ack at all
  std::uint64_t acks = 0;             ///< kApplied acks received
  std::uint64_t gap_refusals = 0;     ///< kGap acks (primary rewound)
  std::uint64_t fenced_refusals = 0;  ///< kFenced acks (stale epoch)
  std::uint64_t grants_local = 0;     ///< grants applied at a primary
  std::uint64_t grants_confirmed = 0; ///< grants confirmed to the caller
  std::uint64_t quorum_failures = 0;  ///< sync grants compensated away
  std::uint64_t promotions = 0;       ///< successful promote() calls
  std::uint64_t truncated_records = 0;///< unacked records promotion dropped
};

/// Where the group's primary currently lives, per resource — maintained
/// by the failover coordinator, consulted by clients for routing and for
/// the epoch they stamp into requests. (Broker-layer so both sim/ and
/// proxy/ can share one instance without an rpc dependency.)
class ReplicationDirectory {
 public:
  struct Entry {
    std::uint64_t epoch = 0;
    HostId primary;
  };

  void update(ResourceId resource, std::uint64_t epoch, HostId primary) {
    Entry& e = entries_[resource];
    // Monotone: a stale coordinator can never roll the directory back.
    if (epoch >= e.epoch) e = Entry{epoch, primary};
  }
  const Entry* find(ResourceId resource) const {
    const auto it = entries_.find(resource);
    return it == entries_.end() ? nullptr : &it->second;
  }

 private:
  FlatMap<ResourceId, Entry> entries_;
};

/// A replica group serving one logical resource through the IBroker
/// interface. See the file comment for the protocol.
class ReplicatedBroker final : public IBroker {
 public:
  ReplicatedBroker(ResourceId id, std::string name, double capacity,
                   std::vector<HostId> hosts, ReplicationConfig config,
                   double alpha_window = 3.0, double history_keep = 64.0,
                   AlphaMode alpha_mode = AlphaMode::kTimeWeighted);

  // --- IBroker façade: every call routes to the current primary.
  ResourceId id() const noexcept override { return id_; }
  const std::string& name() const noexcept override { return name_; }
  double capacity() const noexcept override { return capacity_; }
  double available() const noexcept override;
  double available_at(double t) const override;
  ResourceObservation observe(double t) const override;
  bool reserve(double now, SessionId session, double amount) override;
  void release(double now, SessionId session) override;
  void release_amount(double now, SessionId session, double amount) override;
  double held_by(SessionId session) const override;
  bool reserve_leased(double now, SessionId session, double amount,
                      double lease) override;
  bool renew_lease(double now, SessionId session, double lease) override;
  double expire_due(double now, std::vector<SessionId>* expired) override;
  double lease_deadline(SessionId session) const override;
  void enable_expiry_log(std::size_t capacity = 1024) override;
  void take_expired(std::vector<SessionId>* into) override;
  /// Up iff a primary exists and its process is running.
  bool up() const noexcept override;

  // --- Group interface.
  const ReplicationConfig& config() const noexcept { return config_; }
  std::size_t replica_count() const noexcept { return replicas_.size(); }
  const std::vector<HostId>& hosts() const noexcept { return hosts_; }
  /// The group's fencing epoch: the largest epoch any replica has
  /// adopted. New promotions must use next_epoch().
  std::uint64_t epoch() const noexcept;
  std::uint64_t next_epoch() const noexcept { return epoch() + 1; }
  /// Host of the live primary, or kInvalid while the group is headless
  /// (primary crashed, nobody promoted yet).
  HostId primary_host() const noexcept;
  ReplicaRole role_of(HostId host) const;
  std::uint64_t epoch_of(HostId host) const;
  /// Records the replica holds (its next expected sequence number).
  std::uint64_t watermark_of(HostId host) const;
  bool replica_up(HostId host) const;
  const ReplicationStats& stats() const noexcept { return stats_; }
  /// The quorum actually in force (config.quorum, or the majority).
  std::size_t quorum() const noexcept;

  /// Grant entry at a *specific* replica — how the model checker and the
  /// fuzzer address a deposed primary directly. With fencing on, a
  /// non-primary replica refuses; with fencing off a deposed primary
  /// happily grants, which is the split-brain the checker demonstrates.
  /// `lease` 0 = permanent.
  QRES_NODISCARD bool reserve_at(HostId host, double now, SessionId session, double amount,
                  double lease = 0.0);

  /// Standby-side batch application (also the in-process "transport").
  ShipAckInfo apply_ship(HostId host, const ShipBatch& batch, double now);

  /// Adopt `new_epoch` and serve as primary at `host`. Refuses (returns
  /// false) when the replica is down, the epoch is not strictly newer
  /// than every epoch the group has seen — a double promotion with an
  /// equal epoch loses the tie — or a *live* standby is more caught up
  /// (promoting a lagging candidate would drop quorum-confirmed records;
  /// the model checker's partition topology demonstrates the resulting
  /// double grant without this rule). With fencing on, every other
  /// replica in primary role is fenced, and the group ship log is
  /// truncated to the promoted watermark: records only the dead primary
  /// held are gone, which is safe because no such record was ever
  /// quorum-confirmed.
  QRES_NODISCARD bool promote(HostId host, std::uint64_t new_epoch, double now);

  /// Crash/restart of one replica's broker process (journal survives).
  void crash_replica(HostId host, double now);
  void restart_replica(HostId host, double now, double lease_grace = 0.0);

  /// Ships every pending record (sync mode does this inside each
  /// confirmation; async mode on the lag bound). Returns true when the
  /// quorum holds everything the primary has written — the commit gate
  /// the broker service uses in sync mode.
  QRES_NODISCARD bool flush(double now);

  /// Service orchestration (two-phase): with auto-commit off, grants
  /// apply locally and confirmation is deferred to an explicit flush()
  /// — the broker service appends the reply-cache record first so the
  /// mutation and its grouped reply replicate atomically, then commits.
  void set_auto_commit(bool on) noexcept { auto_commit_ = on; }
  bool auto_commit() const noexcept { return auto_commit_; }

  /// Appends a non-mutation record (the service's kReplyCache) to the
  /// primary's journal so it ships with the group. Returns false when
  /// the group is headless or the append was refused.
  QRES_NODISCARD bool append_aux(const JournalRecord& record);
  /// Mutation records the primary has journaled (see
  /// ResourceBroker::journaled_mutations); 0 while headless.
  std::uint64_t journaled_mutations() const noexcept;
  /// Two-phase stats hooks: with auto-commit off the broker never sees
  /// the commit outcome, so the orchestrating service reports it.
  void note_confirmed_grant() noexcept { ++stats_.grants_confirmed; }
  void note_quorum_failure() noexcept { ++stats_.quorum_failures; }
  /// The primary's retained journal (newest snapshot + tail) — the
  /// source for the service's replay-cache rebuild after a failover.
  /// Empty while the group is headless.
  std::vector<JournalRecord> primary_journal_records() const;
  /// The primary's state snapshot (ResourceBroker::snapshot) — the
  /// reconciliation orphan sweep's view of the group's holdings. Aborts
  /// while headless (check up()).
  JournalRecord primary_snapshot(double now) const {
    return read_broker().snapshot(now);
  }
  /// Direct (read-only) access to a replica's shadow broker, for tests
  /// and the auditor. Aborts on unknown host.
  const ResourceBroker& replica_broker(HostId host) const;

  IShipTransport* transport() const noexcept { return transport_; }
  void set_transport(IShipTransport* transport) noexcept {
    transport_ = transport;
  }

 private:
  struct Replica {
    HostId host;
    std::unique_ptr<MemoryJournal> store;
    std::unique_ptr<CaptureSink> sink;
    std::unique_ptr<ResourceBroker> broker;
    ReplicaRole role = ReplicaRole::kStandby;
    std::uint64_t epoch = 0;
    /// Records this replica holds: its own journal writes when primary,
    /// applied shipped records when standby. Next expected sequence.
    std::uint64_t watermark = 0;
    /// Primary's view of this replica's acknowledged watermark.
    std::uint64_t acked = 0;
  };

  struct ShipEntry {
    std::uint64_t seq;
    std::string line;
    /// True for a grouped kReplyCache record: a batch never ends with
    /// the mutation this record is glued to (see journal.hpp drop_tail).
    bool grouped_reply;
  };

  static void on_capture(void* owner, std::size_t replica,
                         const JournalRecord& record);

  Replica* find(HostId host);
  const Replica* find(HostId host) const;
  Replica* primary();
  const Replica* primary() const;
  const ResourceBroker& read_broker() const;
  /// Ships pending records to `to` from its acked watermark forward.
  void ship_to(Replica& to, double now);
  bool quorum_met(std::uint64_t target) const;
  /// Sync: flush + quorum, compensating `session`'s grant on failure.
  bool confirm_grant(Replica& p, double now, SessionId session,
                     double amount);
  /// Post-mutation shipping policy (sync: flush; async: on lag bound).
  void after_mutation(double now);
  void after_async_mutation(double now);

  ResourceId id_;
  std::string name_;
  double capacity_;
  ReplicationConfig config_;
  std::vector<HostId> hosts_;
  std::vector<Replica> replicas_;
  /// Group ship log: records the current primary line has written, in
  /// text form, numbered contiguously from 0. Promotion truncates it to
  /// the promoted watermark. Entries below every replica's ack are
  /// pruned.
  std::deque<ShipEntry> ship_log_;
  std::uint64_t ship_next_ = 0;  ///< seq of the next captured record
  IShipTransport* transport_ = nullptr;
  bool auto_commit_ = true;
  ReplicationStats stats_;
};

}  // namespace qres
