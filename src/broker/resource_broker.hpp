// Resource Brokers (paper §3).
//
// A Resource Broker makes and enforces reservations for one resource. Its
// basic operations are exactly the paper's: (1) report current availability
// (plus the §4.3.1 Availability Change Index), (2) make/enforce
// reservations, (3) terminate reservations.
//
// Enforcement here is admission-controlled accounting: a reservation
// succeeds iff the requested amount fits in capacity minus the sum of all
// live reservations, and the reserved amount stays excluded from
// availability until released — the same abstraction the paper's
// simulation uses for DSRT/RSVP/Cello-backed brokers.
//
// Brokers record their full availability history, which serves two
// purposes: (a) computing the change index alpha = r_avail / r_avg over a
// sliding window T (eq. 5), and (b) answering *stale* observations
// ("availability as of t time units ago") for the §5.2.4 inaccurate-
// observation experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "broker/journal.hpp"
#include "core/availability.hpp"
#include "core/ids.hpp"
#include "util/flat_map.hpp"

namespace qres {

/// Abstract broker: local resources and two-level network resources share
/// this interface (paper treats both uniformly at planning time).
class IBroker {
 public:
  virtual ~IBroker() = default;

  virtual ResourceId id() const noexcept = 0;
  virtual const std::string& name() const noexcept = 0;

  /// Total capacity of the resource (for a network path: the minimum link
  /// capacity along the path).
  virtual double capacity() const noexcept = 0;

  /// Currently unreserved amount.
  virtual double available() const noexcept = 0;

  /// Availability as recorded at time `t` (the most recent change at or
  /// before `t`; before any history, the initial capacity).
  virtual double available_at(double t) const = 0;

  /// Observation at time `t`: availability plus change index. Passing the
  /// current simulation time yields an accurate observation; passing an
  /// earlier time models observation staleness (§5.2.4).
  virtual ResourceObservation observe(double t) const = 0;

  /// Attempts to reserve `amount` for `session` at time `now`. Amounts for
  /// the same session accumulate. Returns false (and changes nothing) when
  /// the amount does not fit.
  virtual bool reserve(double now, SessionId session, double amount) = 0;

  /// Releases everything held by `session`; no-op when it holds nothing.
  virtual void release(double now, SessionId session) = 0;

  /// Releases exactly `amount` of the session's holding (capped at the
  /// held amount). Needed when a session holds several logically distinct
  /// reservations that share this broker (e.g. two network paths crossing
  /// the same link) and only one of them is being torn down.
  virtual void release_amount(double now, SessionId session,
                              double amount) = 0;

  /// Amount currently held by `session` (0 when it holds nothing).
  virtual double held_by(SessionId session) const = 0;

  // --- Soft-state leases (RSVP's expiry idea applied to host resources).
  //
  // A leased reservation must be renewed before its deadline or it is
  // reclaimed by the broker: a proxy that crashes after reserving stops
  // renewing, and its holdings expire instead of leaking capacity forever.
  // The defaults degrade to permanent reservations so broker
  // implementations without lease bookkeeping keep working unchanged.

  /// Like reserve(), but the session's holding on this broker expires at
  /// `now + lease` unless renewed. Re-reserving refreshes the deadline.
  virtual bool reserve_leased(double now, SessionId session, double amount,
                              double lease) {
    (void)lease;
    return reserve(now, session, amount);
  }

  /// Pushes the session's lease deadline to `now + lease`. Returns false
  /// when the session holds nothing here (already expired or never
  /// reserved) or its holding is not leased. Boundary convention: due
  /// leases are swept *before* the renewal is applied, so a renewal
  /// racing expiry at exactly the deadline tick loses — the holding is
  /// already reclaimed and the renewal fails. A renewal never shortens
  /// an existing deadline (the new deadline is max(old, now + lease)).
  virtual bool renew_lease(double now, SessionId session, double lease) {
    (void)now;
    (void)session;
    (void)lease;
    return false;
  }

  /// Reclaims every leased holding whose deadline is <= `now`. Returns
  /// the total amount freed; expired session ids are appended to
  /// `expired` when given. Boundary convention: expiry wins the
  /// exact-deadline tie — a lease with deadline == now is reclaimed, and
  /// a renewal arriving at that same tick fails (renew_lease sweeps due
  /// leases first).
  virtual double expire_due(double now, std::vector<SessionId>* expired) {
    (void)now;
    (void)expired;
    return 0.0;
  }

  /// The session's lease deadline, or +infinity for permanent holdings
  /// (including sessions that hold nothing).
  virtual double lease_deadline(SessionId session) const {
    (void)session;
    return std::numeric_limits<double>::infinity();
  }

  /// Starts logging lease expiries (see take_expired), keeping at most
  /// `capacity` undelivered entries (oldest dropped first). Off by default
  /// so brokers in ordinary simulations keep no extra state.
  virtual void enable_expiry_log(std::size_t capacity = 1024) {
    (void)capacity;
  }

  /// Appends every session reclaimed by lease expiry since the previous
  /// call — including lazy sweeps inside reserve()/renew_lease() that no
  /// caller observed directly — and clears the log. No-op unless
  /// enable_expiry_log() was called. Lets an external accountant (the
  /// ReservationAuditor harness) learn about reclaims it did not trigger.
  virtual void take_expired(std::vector<SessionId>* into) { (void)into; }

  /// Whether the broker process is running. Callers must check before
  /// observe()/reserve(): a down broker is *unavailable*, which is
  /// different from (and must never be conflated with) an empty one.
  virtual bool up() const noexcept { return true; }
};

/// How r_avg (the denominator of the change index, eq. 5) is computed.
enum class AlphaMode : std::uint8_t {
  /// Time-weighted mean of the availability history over the past T.
  /// Works for arbitrary (including stale) observation times.
  kTimeWeighted,
  /// The paper's literal definition: the plain average of the
  /// availability values *reported* during the past T, updated after
  /// each report. Requires non-decreasing observation times (reports are
  /// protocol events); stale queries are rejected.
  kReportBased,
};

/// Broker for a single host-local resource (CPU, memory, disk I/O
/// bandwidth) or a single physical network link.
class ResourceBroker final : public IBroker {
 public:
  /// `alpha_window` is the paper's T: the span of history averaged into
  /// r_avg for the change index. `history_keep` bounds how far back stale
  /// observations can reach (older samples are pruned).
  ResourceBroker(ResourceId id, std::string name, double capacity,
                 double alpha_window = 3.0, double history_keep = 64.0,
                 AlphaMode alpha_mode = AlphaMode::kTimeWeighted);

  ResourceId id() const noexcept override { return id_; }
  const std::string& name() const noexcept override { return name_; }
  double capacity() const noexcept override { return capacity_; }
  double available() const noexcept override { return capacity_ - reserved_; }
  double available_at(double t) const override;
  ResourceObservation observe(double t) const override;
  bool reserve(double now, SessionId session, double amount) override;
  void release(double now, SessionId session) override;
  void release_amount(double now, SessionId session, double amount) override;
  double held_by(SessionId session) const override;

  bool reserve_leased(double now, SessionId session, double amount,
                      double lease) override;
  bool renew_lease(double now, SessionId session, double lease) override;
  double expire_due(double now, std::vector<SessionId>* expired) override;
  double lease_deadline(SessionId session) const override;
  void enable_expiry_log(std::size_t capacity = 1024) override;
  void take_expired(std::vector<SessionId>* into) override;

  /// Number of sessions currently holding reservations.
  std::size_t active_sessions() const noexcept { return holdings_.size(); }
  double reserved() const noexcept { return reserved_; }

  /// Lease expiries dropped from the log because nobody called
  /// take_expired() before the cap was hit.
  std::uint64_t expiry_log_dropped() const noexcept {
    return expiry_log_dropped_;
  }

  /// Appends that the attached sink refused (JournalStatus != kOk). Each
  /// failure also failed the mutation that needed the record — grants
  /// return false, releases/renewals/expiries become no-ops — so state
  /// and journal never diverge; this counter is how operators notice.
  std::uint64_t journal_failures() const noexcept { return journal_failures_; }

  // --- Durability (write-ahead journal) and crash–restart. See journal.hpp.

  /// Starts journaling every mutation to `sink` (not owned; must outlive
  /// the broker and its crashes). A self-contained snapshot is appended
  /// immediately and again every `snapshot_every` mutations, so sinks that
  /// compact keep replay cost bounded.
  void attach_journal(IJournalSink* sink, std::size_t snapshot_every = 64,
                      double now = 0.0);
  IJournalSink* journal() const noexcept { return journal_; }

  /// Re-points an already-attached journal at `sink` (nullptr detaches).
  /// Cloning seam for the model checker: a copied broker keeps writing to
  /// the original's sink until its owner rebinds it to the clone's copy.
  void rebind_journal(IJournalSink* sink);

  /// Mutation records this broker has appended to its journal (snapshots
  /// and restart markers excluded). The broker service compares the
  /// counter across an execution to decide whether the reply record it
  /// journals is grouped with freshly-appended mutation records.
  std::uint64_t journaled_mutations() const noexcept {
    return journaled_mutations_;
  }

  /// The broker's complete state as a self-contained kSnapshot record.
  /// Used for compaction, for restart, and by tests/fuzzers as the
  /// bit-identity comparison key (it covers reserved, holdings, lease
  /// deadlines and the alpha history window).
  JournalRecord snapshot(double now) const;

  /// Applies one replicated journal record shipped from a replication
  /// primary (broker/replication.hpp): the same replay path recovery
  /// uses, with journaling muted — the caller already appended the
  /// record to this replica's own store. Aborts when the broker is down.
  void apply_replicated(const JournalRecord& rec);

  /// Rebuilds a broker from a journal: restores the latest snapshot and
  /// replays every record after it. The result is bit-identical to the
  /// journaled broker — same reserved total, holdings, lease deadlines and
  /// history window. Records for other resources are ignored, so several
  /// brokers may share one sink. Aborts when `records` has no snapshot.
  static ResourceBroker recover(const std::vector<JournalRecord>& records);

  bool up() const noexcept override { return up_; }

  /// Broker process dies: all in-memory state (reservations, leases,
  /// history, expiry log, report cache) is lost. Only an attached journal
  /// survives. Until restart(), observe() aborts and reserve() refuses.
  void crash(double now);

  /// Broker process comes back at `now`. With a journal attached it
  /// recovers from it (latest snapshot + replay) and grants every restored
  /// lease `lease_grace` extra time — measured from `now`, so holders get
  /// a full reconciliation window even if their deadline passed during the
  /// outage. Without a journal the broker restarts blank (the
  /// lose-everything baseline). Either way transient notification state
  /// stays empty.
  void restart(double now, double lease_grace = 0.0);

  /// Read-only view of the recorded (time, availability-after-change)
  /// history, pruned to the kept window plus one baseline entry. Exposed
  /// for invariant checking (tests and the qres_fuzz harness).
  const std::vector<std::pair<double, double>>& history() const noexcept {
    return history_;
  }

 private:
  void record(double now);
  /// Time-weighted mean availability over [t - alpha_window, t]; this is
  /// the continuous analogue of the paper's "average of availability
  /// values reported during the past T" and is what alpha divides by in
  /// kTimeWeighted mode.
  double windowed_average(double t) const;
  void prune(double now);

  /// reserve()/reserve_leased() share this so a leased grant journals one
  /// kReserveLeased record instead of a kReserve plus a lease side-note.
  bool reserve_impl(double now, SessionId session, double amount,
                    JournalOp op, double lease);
  /// Write-ahead append of one mutation record. Returns true when the
  /// caller may apply the mutation: no sink attached, journaling muted,
  /// or the sink accepted the record. A refused append (I/O failure)
  /// counts into journal_failures_ and returns false — the caller must
  /// fail its operation without touching state.
  bool journal_append(JournalOp op, double now, SessionId session,
                      double amount, double lease);
  /// Periodic compaction snapshot, called after the mutation applied (so
  /// the snapshot captures it). Snapshot append failures are counted but
  /// non-fatal: recovery simply replays a longer tail.
  void journal_snapshot_tick(double now);
  /// Overwrites all mutable state from a kSnapshot payload.
  void restore_from(const JournalRecord& snap);
  /// Replays one non-snapshot record during recovery (journal muted).
  void apply(const JournalRecord& rec);

  ResourceId id_;
  std::string name_;
  double capacity_;
  double alpha_window_;
  double history_keep_;
  AlphaMode alpha_mode_;
  double reserved_ = 0.0;
  FlatMap<SessionId, double> holdings_;
  /// Lease deadlines for sessions whose holdings are soft-state; sessions
  /// absent from this map hold permanently.
  FlatMap<SessionId, double> lease_deadlines_;
  bool expiry_log_enabled_ = false;
  std::size_t expiry_log_capacity_ = 1024;
  std::uint64_t expiry_log_dropped_ = 0;
  std::vector<SessionId> expiry_log_;
  bool up_ = true;
  IJournalSink* journal_ = nullptr;
  std::size_t snapshot_every_ = 64;
  std::size_t mutations_since_snapshot_ = 0;
  std::uint64_t journaled_mutations_ = 0;
  std::uint64_t journal_failures_ = 0;
  /// Suppresses journaling while a public mutator runs nested mutators
  /// (expiry sweeps release(); recovery replays through the same code):
  /// each logical mutation must journal exactly one record.
  bool journal_mute_ = false;
  /// (time, availability-after-change), append-only within the kept window.
  std::vector<std::pair<double, double>> history_;
  /// kReportBased: the (time, value) log of past reports within T.
  /// Mutable because observe() is logically read-only resource inspection
  /// while the paper's protocol updates r_avg after each report.
  mutable std::deque<std::pair<double, double>> reports_;
};

}  // namespace qres
