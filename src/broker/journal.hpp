// Write-ahead journal for Resource Brokers (durability layer).
//
// PR 2 made the runtime survive crashed *proxies* (leases expire orphaned
// holdings); this subsystem makes it survive crashed *brokers*. Every
// state mutation of a journaled ResourceBroker — reserve, leased reserve,
// release, partial release, lease renewal, lease expiry — is appended to
// an IJournalSink before the call returns, so a broker process that dies
// can be rebuilt exactly from its journal:
//
//   * `ResourceBroker::recover(records)` replays a journal into a fresh
//     broker whose reserved total, per-session holdings, lease deadlines
//     and availability history window are bit-identical to the pre-crash
//     broker (property-fuzzed by `qres_fuzz --mode crash`);
//   * periodic snapshot compaction bounds replay cost: every
//     `snapshot_every` mutations the broker appends a self-contained
//     kSnapshot record, and a compacting sink may drop everything before
//     it — recovery only ever needs the last snapshot plus the tail;
//   * the journal is the durable truth after a crash. Transient
//     notification state (the expiry log consumed by take_expired, the
//     report-based alpha cache) is deliberately *not* journaled: it
//     describes deliveries to observers, not reservations, and recovery
//     resets it empty.
//
// Two sinks are provided: MemoryJournal (a record vector, used by the
// simulation and the fuzz harnesses, with an optional "lost unsynced
// tail" crash model) and FileJournal (an append-only text file, one
// record per line, used by `qresctl --journal` / `qresctl journal`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "util/annotations.hpp"

namespace qres {

enum class AlphaMode : std::uint8_t;

/// The journaled mutation kinds. kSnapshot is self-contained: it carries
/// the broker's full configuration and mutable state, so recovery never
/// needs records older than the last snapshot.
enum class JournalOp : std::uint8_t {
  kSnapshot,       ///< full broker state (also the journal's first record)
  kReserve,        ///< permanent reservation granted
  kReserveLeased,  ///< leased reservation granted (amount + lease)
  kRelease,        ///< full release of one session's holding
  kReleaseAmount,  ///< partial release (amount = what was actually freed)
  kRenewLease,     ///< lease deadline pushed to max(deadline, time + lease)
  kExpire,         ///< one session reclaimed by lease expiry
  kRestart,        ///< crash-restart marker; lease = the grace granted
  kReplyCache,     ///< executed RPC reply (at-least-once dedup durability)
};

const char* to_string(JournalOp op) noexcept;

/// How an append ended. Sinks report I/O failures as typed statuses so
/// the broker can fail the affected operation instead of silently
/// diverging from its journal (a broker whose journal is missing a
/// mutation it applied would recover into a different state than it
/// died in — the one corruption recovery cannot detect).
enum class QRES_NODISCARD JournalStatus : std::uint8_t {
  kOk = 0,
  kOpenFailed,   ///< the sink's backing store could not be (re)opened
  kWriteFailed,  ///< the record was not durably written (short write)
};

const char* to_string(JournalStatus status) noexcept;

/// One journal entry. Plain mutation records use the scalar fields; the
/// snapshot payload (config + state vectors) is only populated for
/// kSnapshot. `resource` is set on every record so several brokers can
/// share one sink (the qresctl file journal does).
struct JournalRecord {
  JournalOp op = JournalOp::kSnapshot;
  double time = 0.0;
  ResourceId resource;
  SessionId session;
  double amount = 0.0;
  double lease = 0.0;

  // --- kReplyCache payload: the dedup cache's durable half. The broker
  // service journals every executed reply next to the mutation records it
  // produced, so a restarted broker can rebuild its request-id replay
  // cache from the same journal that rebuilds its holdings — a retried
  // request that already executed replays the original reply instead of
  // executing twice (the double-grant the model checker found; DESIGN.md
  // §13). `grouped` marks a reply whose execution journaled mutation
  // records immediately before it: the pair is one atomic append with
  // respect to tail loss (see MemoryJournal::drop_tail).
  std::uint64_t request_id = 0;
  bool grouped = false;
  std::vector<std::uint8_t> reply;

  // --- kSnapshot payload: broker identity + configuration...
  std::string name;
  double capacity = 0.0;
  double alpha_window = 0.0;
  double history_keep = 0.0;
  AlphaMode alpha_mode{};
  bool expiry_log_enabled = false;
  std::uint64_t expiry_log_capacity = 0;
  // --- ...and complete mutable state.
  double reserved = 0.0;
  std::vector<std::pair<std::uint32_t, double>> holdings;
  std::vector<std::pair<std::uint32_t, double>> lease_deadlines;
  std::vector<std::pair<double, double>> history;
};

/// Where a broker's journal records go. The sink is durable storage: it
/// must survive the broker's crash (in the simulation this simply means
/// it is owned outside the broker object).
class IJournalSink {
 public:
  virtual ~IJournalSink() = default;

  /// Appends one record; called by the broker *before* it applies the
  /// mutation (write-ahead order). A non-kOk status means the record is
  /// not durable: the broker must not apply the mutation it describes.
  virtual JournalStatus append(const JournalRecord& record) = 0;

  /// Returns every retained record, oldest first. Recovery requires the
  /// result to contain at least one kSnapshot record.
  virtual std::vector<JournalRecord> load() const = 0;

  /// Total records ever appended through this sink (monotone; survives
  /// compaction). The broker service compares it across an execution to
  /// decide whether a reply record is grouped with mutation records.
  virtual std::uint64_t appended() const = 0;
};

/// In-memory journal. With compaction enabled (the default), appending a
/// snapshot drops every earlier record — replay cost stays bounded by the
/// mutation count between snapshots.
class MemoryJournal final : public IJournalSink {
 public:
  /// `reply_cache_keep` bounds how many kReplyCache records survive each
  /// compaction (newest first) — sized to BrokerService's dedup capacity,
  /// since entries beyond it are evicted from the live cache anyway.
  explicit MemoryJournal(bool compact_on_snapshot = true,
                         std::size_t reply_cache_keep = 1024)
      : compact_(compact_on_snapshot), reply_cache_keep_(reply_cache_keep) {}

  JournalStatus append(const JournalRecord& record) override;
  std::vector<JournalRecord> load() const override { return records_; }

  const std::vector<JournalRecord>& records() const noexcept {
    return records_;
  }

  /// Crash model for the un-fsynced tail: drops up to `count` trailing
  /// records, stopping (inclusive-keep) at the newest snapshot — the
  /// snapshot is the fsync barrier, so it can never be lost. Returns how
  /// many records were actually dropped.
  ///
  /// Grouped kReplyCache records are atomic with the mutation record(s)
  /// of the execution that produced them: the tail never loses a reply
  /// while keeping its mutation (that split is exactly the state where a
  /// retried request re-executes against surviving holdings — a double
  /// grant). When the budget or the snapshot barrier would split a group,
  /// the whole group is kept — keeping more of the tail is always a legal
  /// crash outcome.
  std::size_t drop_tail(std::size_t count);

  std::uint64_t appended() const noexcept override { return appended_; }
  std::uint64_t snapshots() const noexcept { return snapshots_; }
  std::uint64_t compacted_away() const noexcept { return compacted_away_; }

 private:
  bool compact_;
  std::size_t reply_cache_keep_;
  std::vector<JournalRecord> records_;
  std::uint64_t appended_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t compacted_away_ = 0;
};

/// Append-only file journal: one record per line, human-readable and
/// exactly round-trippable (doubles are printed with 17 significant
/// digits). The file is never compacted — `qresctl journal` uses the full
/// history for its replay-and-compare verification.
///
/// Thread-safe: append() and load() serialize on an internal mutex, so
/// several brokers running on a ThreadPool may share one sink. The
/// locking discipline is checked by clang's thread-safety analysis in
/// the static CI lane (DESIGN.md §10.2).
class FileJournal final : public IJournalSink {
 public:
  /// Opens `path` for appending (`truncate` starts a fresh journal).
  /// Throws std::runtime_error when the file cannot be opened.
  explicit FileJournal(std::string path, bool truncate = true);

  JournalStatus append(const JournalRecord& record) override
      QRES_EXCLUDES(mutex_);
  std::vector<JournalRecord> load() const override QRES_EXCLUDES(mutex_);
  std::uint64_t appended() const override QRES_EXCLUDES(mutex_);

  const std::string& path() const noexcept { return path_; }

  /// Parses a journal file; throws std::runtime_error (with a line
  /// number) on malformed input.
  static std::vector<JournalRecord> read_file(const std::string& path);

 private:
  std::string path_;  // immutable after construction; no guard needed
  // Guards the file itself: interleaved appends from two threads would
  // corrupt records, and a load() racing an append() could read a torn
  // line. `mutable` so the logically-const load() can take it.
  mutable Mutex mutex_;
  std::uint64_t appended_ QRES_GUARDED_BY(mutex_) = 0;
};

/// Serializes one record as a single line (no trailing newline).
std::string to_line(const JournalRecord& record);

/// Parses one line produced by to_line(); throws std::runtime_error on
/// malformed input.
JournalRecord parse_line(const std::string& line);

/// The subsequence of `records` belonging to `resource` — several brokers
/// may share one sink (see JournalRecord::resource).
std::vector<JournalRecord> filter_journal(
    const std::vector<JournalRecord>& records, ResourceId resource);

}  // namespace qres
