// Two-level end-to-end network resource brokerage (paper §3).
//
// At the higher level, a NetworkPathBroker treats the whole path of
// network links between two end hosts as one reservable resource. At the
// lower level, each physical link has its own ResourceBroker (the paper's
// RSVP-enabled per-router bandwidth broker). The path broker reports the
// *minimum* of the link availabilities and reserves the same bandwidth on
// every link of the path, rolling back on partial failure — this is the
// compatibility property §4.1.1 relies on when it computes r_avail for a
// network resource.
#pragma once

#include <memory>
#include <vector>

#include "broker/resource_broker.hpp"

namespace qres {

class NetworkPathBroker final : public IBroker {
 public:
  /// `links`: the lower-level per-link brokers along the path, in order.
  /// The path broker does not own them (they are shared among paths that
  /// traverse the same link); the owner (BrokerRegistry) must outlive it.
  NetworkPathBroker(ResourceId id, std::string name,
                    std::vector<IBroker*> links);

  ResourceId id() const noexcept override { return id_; }
  const std::string& name() const noexcept override { return name_; }

  /// Minimum link capacity along the path.
  double capacity() const noexcept override;
  /// Minimum current link availability along the path.
  double available() const noexcept override;
  double available_at(double t) const override;

  /// Availability = min over links; alpha = the change index of the link
  /// attaining the minimum (the path's current bottleneck link).
  ResourceObservation observe(double t) const override;

  /// Reserves `amount` on every link; on any link failure the links
  /// already reserved are rolled back and false is returned.
  bool reserve(double now, SessionId session, double amount) override;

  void release(double now, SessionId session) override;
  void release_amount(double now, SessionId session, double amount) override;

  /// Minimum held amount over the links (links shared with other paths may
  /// hold more for the same session than this path reserved).
  double held_by(SessionId session) const override;

  /// Leased reserve on every link, with the same rollback discipline as
  /// reserve().
  bool reserve_leased(double now, SessionId session, double amount,
                      double lease) override;
  /// Renews on every link; true when every link still held the lease.
  bool renew_lease(double now, SessionId session, double lease) override;
  double expire_due(double now, std::vector<SessionId>* expired) override;
  /// Earliest lease deadline over the links.
  double lease_deadline(SessionId session) const override;

  /// Up iff every link broker is up: one down link broker makes the whole
  /// path unavailable (its reservations can neither be made nor verified).
  bool up() const noexcept override;

  std::size_t link_count() const noexcept { return links_.size(); }
  const IBroker& link(std::size_t index) const;

 private:
  ResourceId id_;
  std::string name_;
  std::vector<IBroker*> links_;
};

}  // namespace qres
