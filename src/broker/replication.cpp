#include "broker/replication.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qres {

const char* to_string(ReplicationMode mode) noexcept {
  switch (mode) {
    case ReplicationMode::kSync: return "sync";
    case ReplicationMode::kAsync: return "async";
  }
  return "?";
}

const char* to_string(ReplicaRole role) noexcept {
  switch (role) {
    case ReplicaRole::kPrimary: return "primary";
    case ReplicaRole::kStandby: return "standby";
    case ReplicaRole::kFenced: return "fenced";
  }
  return "?";
}

const char* to_string(ShipAckCode code) noexcept {
  switch (code) {
    case ShipAckCode::kApplied: return "applied";
    case ShipAckCode::kGap: return "gap";
    case ShipAckCode::kFenced: return "fenced";
    case ShipAckCode::kDown: return "down";
  }
  return "?";
}

ReplicatedBroker::ReplicatedBroker(ResourceId id, std::string name,
                                   double capacity, std::vector<HostId> hosts,
                                   ReplicationConfig config,
                                   double alpha_window, double history_keep,
                                   AlphaMode alpha_mode)
    : id_(id),
      name_(std::move(name)),
      capacity_(capacity),
      config_(config),
      hosts_(std::move(hosts)) {
  QRES_REQUIRE(!hosts_.empty(), "ReplicatedBroker: no replica hosts");
  QRES_REQUIRE(config_.quorum <= hosts_.size(),
               "ReplicatedBroker: quorum exceeds replica count");
  QRES_REQUIRE(config_.ship_batch_max > 0 && config_.max_async_lag > 0,
               "ReplicatedBroker: malformed config");
  replicas_.reserve(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    Replica r;
    r.host = hosts_[i];
    r.store = std::make_unique<MemoryJournal>();
    r.sink = std::make_unique<CaptureSink>(r.store.get(), this, i,
                                           &ReplicatedBroker::on_capture);
    r.broker = std::make_unique<ResourceBroker>(
        id_, name_, capacity_, alpha_window, history_keep, alpha_mode);
    replicas_.push_back(std::move(r));
  }
  // Replica 0 starts as the primary in epoch 1; standbys adopt epochs as
  // shipped batches (or promotions) reach them.
  replicas_[0].role = ReplicaRole::kPrimary;
  replicas_[0].epoch = 1;
  // Attach after roles are set: the primary's initial snapshot becomes
  // ship record 0, so a standby's first catch-up starts from a
  // self-contained state. The standbys' own initial snapshots are local
  // only (their captures are ignored while they are not primary).
  for (Replica& r : replicas_)
    r.broker->attach_journal(r.sink.get(), config_.snapshot_every);
}

void ReplicatedBroker::on_capture(void* owner, std::size_t replica,
                                  const JournalRecord& record) {
  auto* self = static_cast<ReplicatedBroker*>(owner);
  Replica& r = self->replicas_[replica];
  // Only the authoritative primary ships. A deposed primary still in
  // kPrimary role (fencing off) journals locally — its divergence is
  // exactly the split-brain the model checker demonstrates — and a
  // standby's own restart markers/snapshots never enter the group log.
  if (r.role != ReplicaRole::kPrimary || r.epoch != self->epoch()) return;
  self->ship_log_.push_back(
      {self->ship_next_, to_line(record),
       record.op == JournalOp::kReplyCache && record.grouped});
  ++self->ship_next_;
  r.watermark = self->ship_next_;
}

ReplicatedBroker::Replica* ReplicatedBroker::find(HostId host) {
  for (Replica& r : replicas_)
    if (r.host == host) return &r;
  return nullptr;
}

const ReplicatedBroker::Replica* ReplicatedBroker::find(HostId host) const {
  for (const Replica& r : replicas_)
    if (r.host == host) return &r;
  return nullptr;
}

ReplicatedBroker::Replica* ReplicatedBroker::primary() {
  Replica* best = nullptr;
  for (Replica& r : replicas_)
    if (r.role == ReplicaRole::kPrimary &&
        (best == nullptr || r.epoch > best->epoch))
      best = &r;
  return best;
}

const ReplicatedBroker::Replica* ReplicatedBroker::primary() const {
  const Replica* best = nullptr;
  for (const Replica& r : replicas_)
    if (r.role == ReplicaRole::kPrimary &&
        (best == nullptr || r.epoch > best->epoch))
      best = &r;
  return best;
}

std::uint64_t ReplicatedBroker::epoch() const noexcept {
  std::uint64_t e = 0;
  for (const Replica& r : replicas_) e = std::max(e, r.epoch);
  return e;
}

HostId ReplicatedBroker::primary_host() const noexcept {
  const Replica* p = primary();
  return (p != nullptr && p->broker->up()) ? p->host : HostId{};
}

ReplicaRole ReplicatedBroker::role_of(HostId host) const {
  const Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::role_of: unknown host");
  return r->role;
}

std::uint64_t ReplicatedBroker::epoch_of(HostId host) const {
  const Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::epoch_of: unknown host");
  return r->epoch;
}

std::uint64_t ReplicatedBroker::watermark_of(HostId host) const {
  const Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::watermark_of: unknown host");
  return r->watermark;
}

bool ReplicatedBroker::replica_up(HostId host) const {
  const Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::replica_up: unknown host");
  return r->broker->up();
}

std::size_t ReplicatedBroker::quorum() const noexcept {
  return config_.quorum != 0 ? config_.quorum : replicas_.size() / 2 + 1;
}

const ResourceBroker& ReplicatedBroker::replica_broker(HostId host) const {
  const Replica* r = find(host);
  QRES_REQUIRE(r != nullptr,
               "ReplicatedBroker::replica_broker: unknown host");
  return *r->broker;
}

bool ReplicatedBroker::up() const noexcept {
  const Replica* p = primary();
  return p != nullptr && p->broker->up();
}

const ResourceBroker& ReplicatedBroker::read_broker() const {
  const Replica* p = primary();
  QRES_REQUIRE(p != nullptr && p->broker->up(),
               "ReplicatedBroker: read on a headless group (check up())");
  return *p->broker;
}

double ReplicatedBroker::available() const noexcept {
  const Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return 0.0;
  return p->broker->available();
}

double ReplicatedBroker::available_at(double t) const {
  return read_broker().available_at(t);
}

ResourceObservation ReplicatedBroker::observe(double t) const {
  return read_broker().observe(t);
}

double ReplicatedBroker::held_by(SessionId session) const {
  const Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return 0.0;
  return p->broker->held_by(session);
}

double ReplicatedBroker::lease_deadline(SessionId session) const {
  const Replica* p = primary();
  if (p == nullptr || !p->broker->up())
    return std::numeric_limits<double>::infinity();
  return p->broker->lease_deadline(session);
}

void ReplicatedBroker::enable_expiry_log(std::size_t capacity) {
  // All replicas, so a promoted standby keeps the same observability
  // configuration the group was built with.
  for (Replica& r : replicas_) r.broker->enable_expiry_log(capacity);
}

void ReplicatedBroker::take_expired(std::vector<SessionId>* into) {
  Replica* p = primary();
  if (p != nullptr && p->broker->up()) p->broker->take_expired(into);
}

bool ReplicatedBroker::reserve(double now, SessionId session, double amount) {
  return reserve_at(primary_host(), now, session, amount, 0.0);
}

bool ReplicatedBroker::reserve_leased(double now, SessionId session,
                                      double amount, double lease) {
  QRES_REQUIRE(lease > 0.0, "ReplicatedBroker::reserve_leased: zero lease");
  return reserve_at(primary_host(), now, session, amount, lease);
}

bool ReplicatedBroker::reserve_at(HostId host, double now, SessionId session,
                                  double amount, double lease) {
  if (!host.valid()) return false;
  Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::reserve_at: unknown host");
  if (!r->broker->up() || r->role == ReplicaRole::kFenced) return false;
  if (r->role != ReplicaRole::kPrimary) return false;  // standbys never grant
  if (config_.fencing && r->epoch != epoch()) return false;
  const bool ok =
      lease > 0.0 ? r->broker->reserve_leased(now, session, amount, lease)
                  : r->broker->reserve(now, session, amount);
  if (!ok) return false;
  ++stats_.grants_local;
  if (r->epoch != epoch()) {
    // Deposed primary, fencing off: the grant is split-brain divergence
    // confirmed locally — the violation the mc/fuzz oracles look for.
    ++stats_.grants_confirmed;
    return true;
  }
  if (config_.mode == ReplicationMode::kSync) {
    if (!auto_commit_) return true;  // service appends its reply, then commits
    return confirm_grant(*r, now, session, amount);
  }
  // Async: confirm now, ship when the lag bound is reached.
  ++stats_.grants_confirmed;
  after_async_mutation(now);
  return true;
}

void ReplicatedBroker::release(double now, SessionId session) {
  Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return;
  p->broker->release(now, session);
  after_mutation(now);
}

void ReplicatedBroker::release_amount(double now, SessionId session,
                                      double amount) {
  Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return;
  p->broker->release_amount(now, session, amount);
  after_mutation(now);
}

bool ReplicatedBroker::renew_lease(double now, SessionId session,
                                   double lease) {
  Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return false;
  const bool renewed = p->broker->renew_lease(now, session, lease);
  if (renewed) after_mutation(now);
  return renewed;
}

double ReplicatedBroker::expire_due(double now,
                                    std::vector<SessionId>* expired) {
  Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return 0.0;
  const double freed = p->broker->expire_due(now, expired);
  if (freed > 0.0) after_mutation(now);
  return freed;
}

void ReplicatedBroker::after_mutation(double now) {
  if (!auto_commit_) return;  // the service flushes at its commit point
  if (config_.mode == ReplicationMode::kSync)
    // qres-lint: allow(unchecked-status): releases/renews tolerate a failed
    // ship — losing one under-reports free capacity, which reconciliation
    // repairs; grants are confirmed separately in confirm_grant
    flush(now);
  else
    after_async_mutation(now);
}

void ReplicatedBroker::after_async_mutation(double now) {
  // Lag = records not yet acknowledged by the *most* caught-up standby:
  // the bound on what a primary kill can lose after confirmation.
  std::uint64_t best_acked = 0;
  bool any = false;
  for (const Replica& r : replicas_) {
    if (r.role != ReplicaRole::kStandby || !r.broker->up()) continue;
    best_acked = std::max(best_acked, r.acked);
    any = true;
  }
  if (!any) return;
  // qres-lint: allow(unchecked-status): the lag-bound ship is opportunistic;
  // async mode promises at most max_async_lag lost records, not zero
  if (ship_next_ - best_acked >= config_.max_async_lag) flush(now);
}

bool ReplicatedBroker::confirm_grant(Replica& p, double now,
                                     SessionId session, double amount) {
  // qres-lint: allow(unchecked-status): quorum_met on the next line is the
  // authoritative confirmation check, not flush's aggregate verdict
  flush(now);
  if (quorum_met(ship_next_)) {
    ++stats_.grants_confirmed;
    return true;
  }
  ++stats_.quorum_failures;
  // Compensate: a journaled inverse release, so primary state and journal
  // stay in lockstep and the standbys (when reachable again) converge to
  // the same no-grant outcome. The caller sees a refusal.
  p.broker->release_amount(now, session, amount);
  // qres-lint: allow(unchecked-status): the caller already sees a refusal;
  // the compensating release ships whenever the standbys are next reachable
  flush(now);  // best effort; the compensation ships like any record
  return false;
}

bool ReplicatedBroker::quorum_met(std::uint64_t target) const {
  const Replica* p = primary();
  std::size_t holders = 0;
  for (const Replica& r : replicas_) {
    if (!r.broker->up() || r.role == ReplicaRole::kFenced) continue;
    const std::uint64_t held = (&r == p) ? r.watermark : r.acked;
    if (held >= target) ++holders;
  }
  return holders >= quorum();
}

bool ReplicatedBroker::flush(double now) {
  Replica* p = primary();
  if (p == nullptr || !p->broker->up() || p->epoch != epoch()) return false;
  for (Replica& r : replicas_) {
    if (&r == p || r.role != ReplicaRole::kStandby || !r.broker->up())
      continue;
    ship_to(r, now);
  }
  // Prune entries every live standby has acknowledged (a down standby
  // pins the log: it needs the tail to catch up after restart).
  std::uint64_t min_acked = ship_next_;
  for (const Replica& r : replicas_) {
    if (r.role != ReplicaRole::kStandby) continue;
    min_acked = std::min(min_acked, r.acked);
  }
  while (!ship_log_.empty() && ship_log_.front().seq < min_acked)
    ship_log_.pop_front();
  return quorum_met(ship_next_);
}

void ReplicatedBroker::ship_to(Replica& to, double now) {
  while (to.acked < ship_next_) {
    const std::uint64_t from = std::max(
        to.acked, ship_log_.empty() ? ship_next_ : ship_log_.front().seq);
    if (from >= ship_next_) return;  // needed records were pruned away
    ShipBatch batch;
    batch.resource = id_;
    batch.epoch = epoch();
    batch.seq_first = from;
    const std::size_t base = static_cast<std::size_t>(
        from - ship_log_.front().seq);
    std::size_t take = std::min<std::size_t>(config_.ship_batch_max,
                                             ship_log_.size() - base);
    // Never cut a batch between a mutation and its grouped reply record:
    // a standby promoted while holding the mutation but not the reply
    // would re-execute a retried request against surviving holdings —
    // the double grant the journal's drop_tail rule exists to prevent.
    while (base + take < ship_log_.size() &&
           ship_log_[base + take].grouped_reply)
      ++take;
    batch.records.reserve(take);
    for (std::size_t i = 0; i < take; ++i)
      batch.records.push_back(ship_log_[base + i].line);
    ++stats_.ship_batches;
    stats_.ship_records += batch.records.size();
    std::optional<ShipAckInfo> ack;
    if (transport_ != nullptr)
      ack = transport_->ship(to.host, batch, now);
    else
      ack = apply_ship(to.host, batch, now);
    if (!ack.has_value()) {
      ++stats_.ship_lost;
      return;
    }
    switch (ack->code) {
      case ShipAckCode::kApplied:
        ++stats_.acks;
        if (ack->watermark <= to.acked) return;  // no progress; stop
        to.acked = ack->watermark;
        break;
      case ShipAckCode::kGap:
        ++stats_.gap_refusals;
        if (ack->watermark >= to.acked) return;  // cannot converge now
        to.acked = ack->watermark;  // rewind and re-ship
        break;
      case ShipAckCode::kFenced:
        ++stats_.fenced_refusals;
        return;  // we were deposed; stop shipping entirely
      case ShipAckCode::kDown:
        return;
    }
  }
}

ShipAckInfo ReplicatedBroker::apply_ship(HostId host, const ShipBatch& batch,
                                         double now) {
  (void)now;
  Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::apply_ship: unknown host");
  if (!r->broker->up())
    return {ShipAckCode::kDown, r->epoch, r->watermark};
  if (r->role == ReplicaRole::kFenced)
    return {ShipAckCode::kFenced, r->epoch, r->watermark};
  if (config_.fencing) {
    if (batch.epoch < r->epoch)
      return {ShipAckCode::kFenced, r->epoch, r->watermark};
    if (batch.epoch > r->epoch) {
      // A newer primary speaks: adopt its epoch; a replica that still
      // believed itself primary is hereby fenced (its local tail may
      // have diverged and must never ship or serve).
      if (r->role == ReplicaRole::kPrimary) {
        r->role = ReplicaRole::kFenced;
        r->epoch = batch.epoch;
        return {ShipAckCode::kFenced, r->epoch, r->watermark};
      }
      r->epoch = batch.epoch;
    }
  }
  if (batch.seq_first > r->watermark)
    return {ShipAckCode::kGap, r->epoch, r->watermark};
  for (std::size_t i = 0; i < batch.records.size(); ++i) {
    const std::uint64_t seq = batch.seq_first + i;
    if (seq < r->watermark) continue;  // idempotent redelivery
    const JournalRecord rec = parse_line(batch.records[i]);
    // The standby's own journal is its durable truth for promotion and
    // restart; a refused append stops the batch at the applied prefix.
    if (r->store->append(rec) != JournalStatus::kOk) break;
    r->broker->apply_replicated(rec);
    r->watermark = seq + 1;
  }
  return {ShipAckCode::kApplied, r->epoch, r->watermark};
}

bool ReplicatedBroker::promote(HostId host, std::uint64_t new_epoch,
                               double now) {
  (void)now;
  Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::promote: unknown host");
  if (!r->broker->up() || r->role == ReplicaRole::kFenced) return false;
  // Strictly newer than everything the group has seen: the second of two
  // racing promotions (equal watermarks or not) loses on the epoch, so
  // there is never a moment with two authoritative primaries.
  if (new_epoch <= epoch()) return false;
  // Only the most-caught-up live standby may take over. A
  // quorum-confirmed record is held by at least one standby (the quorum
  // intersects every majority), so as long as that standby is alive,
  // refusing lagging candidates preserves every confirmed grant. The
  // coordinator already selects by watermark; this check stops a naive
  // or racing promoter — the checker's failover-sync-partition topology
  // found the lost-update this rule closes: a stale standby promoted
  // during a partition re-grants capacity the old quorum had confirmed.
  for (const Replica& o : replicas_) {
    if (&o == r || o.role != ReplicaRole::kStandby || !o.broker->up())
      continue;
    if (o.watermark > r->watermark) return false;
  }
  for (Replica& o : replicas_) {
    if (&o == r || o.role != ReplicaRole::kPrimary) continue;
    if (config_.fencing) o.role = ReplicaRole::kFenced;
    // Fencing off: the deposed primary keeps believing it serves — the
    // split-brain demonstration topology.
  }
  r->role = ReplicaRole::kPrimary;
  r->epoch = new_epoch;
  // The promoted journal is the new truth: records beyond its watermark
  // existed only on the dead primary. None of them was quorum-confirmed
  // (the promoted standby is the most-caught-up acker), so truncating
  // them loses nothing a client was promised.
  if (ship_next_ > r->watermark) {
    stats_.truncated_records += ship_next_ - r->watermark;
    while (!ship_log_.empty() && ship_log_.back().seq >= r->watermark)
      ship_log_.pop_back();
    ship_next_ = r->watermark;
  }
  for (Replica& o : replicas_) o.acked = std::min(o.acked, ship_next_);
  ++stats_.promotions;
  return true;
}

void ReplicatedBroker::crash_replica(HostId host, double now) {
  Replica* r = find(host);
  QRES_REQUIRE(r != nullptr, "ReplicatedBroker::crash_replica: unknown host");
  r->broker->crash(now);
}

void ReplicatedBroker::restart_replica(HostId host, double now,
                                       double lease_grace) {
  Replica* r = find(host);
  QRES_REQUIRE(r != nullptr,
               "ReplicatedBroker::restart_replica: unknown host");
  // Recovers from the replica's own journal (snapshot + tail). A
  // restarted primary's restart marker and snapshot are captured and
  // ship like any record; a standby's stay local and its watermark —
  // which counts *shipped* records only — is untouched.
  r->broker->restart(now, lease_grace);
}

bool ReplicatedBroker::append_aux(const JournalRecord& record) {
  Replica* p = primary();
  if (p == nullptr || !p->broker->up() || p->epoch != epoch()) return false;
  JournalRecord rec = record;
  rec.resource = id_;
  return p->sink->append(rec) == JournalStatus::kOk;
}

std::uint64_t ReplicatedBroker::journaled_mutations() const noexcept {
  const Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return 0;
  return p->broker->journaled_mutations();
}

std::vector<JournalRecord> ReplicatedBroker::primary_journal_records() const {
  const Replica* p = primary();
  if (p == nullptr || !p->broker->up()) return {};
  return p->store->load();
}

}  // namespace qres
