// Micro-topologies and protocol-variant configuration for the explicit-
// state model checker (DESIGN.md §13).
//
// A topology is a tiny closed system: one or two single-resource broker
// processes (each with its own registry, journal and BrokerService — a
// process boundary, exactly what crashes) plus a handful of scripted
// clients. Every nondeterministic choice the real deployment leaves to
// the network, the clock or the failure model becomes an explicit checker
// action, so the state space is finite and exhaustively explorable.
//
// McConfig's protocol flags are the interesting part: each one toggles a
// bug the checker originally found between its broken and fixed variant.
// Defaults are the fixed protocol; the demo-* topologies flip one flag
// back so the counterexample stays reproducible (and its minimized trace
// stays replayable from tools/testdata/mc_traces/).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qres::mc {

/// One broker process in the model: a single leaf resource plus its
/// durability and failure budget.
struct BrokerSpec {
  std::string name = "r";
  double capacity = 1.0;
  bool journaled = true;  ///< attach a MemoryJournal (crash durability)
  bool compact = true;    ///< journal compaction on snapshot
  std::size_t snapshot_every = 64;
  int max_crashes = 0;           ///< how many times this process may crash
  std::size_t max_tail_loss = 0; ///< max un-fsynced records lost per crash
  double restart_grace = 0.0;    ///< lease grace granted on restart
};

/// One scripted client: a session that reserves on a single broker, then
/// renews/tears down/retries within explicit budgets. Budgets bound the
/// state space; every budgeted move is a checker action, so all
/// interleavings within the budget are explored.
struct ClientSpec {
  std::uint32_t session = 1;
  int broker = 0;       ///< index into Topology::brokers
  double amount = 0.5;
  double lease = 0.0;   ///< 0 = permanent reservation
  int max_retries = 1;  ///< same-request-id retransmissions
  int max_dups = 0;     ///< network duplications of this client's frames
  int max_renews = 0;   ///< lease renewal requests
  int max_rereserves = 0;  ///< re-reserve episodes after an observed expiry
  bool may_abandon = false;  ///< client process may crash silently
};

/// Protocol-variant flags plus the client-side rules the checker drives.
/// All defaults are the *fixed* protocol; each `false` reproduces a bug
/// the checker found (see the demo-* topologies).
struct McConfig {
  /// Server answers kBrokerDown at ingress before consulting the dedup
  /// cache. Off: a stale cached kOk can be served for a down broker whose
  /// journal tail (and with it the cached execution) is about to be lost.
  bool down_check_before_dedup = true;
  /// Server rebuilds the request-id replay cache from the retained
  /// journal on broker restart. Off: a retried request whose first
  /// execution survived in the journal executes twice (double grant).
  bool rebuild_dedup_on_restart = true;
  /// The replay cache lives outside the broker process (a separate RPC
  /// frontend) and survives its crash. Off (default): cache dies with
  /// the process. The stale-cache ordering bug needs this on.
  bool dedup_survives_crash = false;
  /// Clients schedule renewals from the reply's authoritative
  /// lease_deadline (wire v2). Off: the client derives the deadline from
  /// its own receive time and overshoots the broker's (phantom grant).
  bool client_trusts_reply_deadline = true;
  /// A client re-reserving after an observed expiry releases its session
  /// first. Off: if the broker still holds (e.g. restart grace extended
  /// the server-side deadline), the new grant accumulates (double grant).
  bool rereserve_releases_first = true;
};

/// A named micro-topology with the flag overrides and expected verdict
/// that make it a self-contained check.
struct Topology {
  std::string name;
  std::string summary;  ///< one line for `qres_mc --list`
  std::vector<BrokerSpec> brokers;
  std::vector<ClientSpec> clients;
  McConfig config;                 ///< flag variant this topology checks
  bool expect_violation = false;   ///< demo topologies expect a bug
  std::string expected_invariant;  ///< which invariant the demo violates
  /// Suppress the quiescent no-stranded check (the permanent-strand demo
  /// violates it on purpose — everything else must pass it).
  bool allow_stranded = false;
};

/// Every built-in micro-topology, verification targets first, demo
/// (expected-violation) topologies after.
const std::vector<Topology>& all_topologies();

/// Topology by name; nullptr when unknown.
const Topology* find_topology(const std::string& name);

/// Applies one "key=value" override to `config` (values 0/1). Returns
/// false (config untouched) for an unknown key or malformed pair.
bool apply_config_override(McConfig* config, const std::string& pair);

/// The overrides that differ from a default-constructed McConfig, as
/// "key=value" strings (trace-file serialization).
std::vector<std::string> config_overrides(const McConfig& config);

}  // namespace qres::mc
