#include "mc/topology.hpp"

namespace qres::mc {

namespace {

/// Verification target: one broker, two leased sessions that overcommit
/// the capacity between them (0.6 + 0.6 > 1.0), with retry, duplication
/// and renewal budgets. Exercises admission rejects, dedup replay,
/// expiry-vs-renewal and expiry-vs-delivery races.
Topology make_single() {
  Topology t;
  t.name = "single";
  t.summary = "1 broker, 2 leased overcommitting clients, retries+dups";
  t.brokers.push_back({.name = "cpu", .capacity = 1.0});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.6,
                       .lease = 2.0,
                       .max_retries = 1,
                       .max_dups = 1,
                       .max_renews = 1});
  t.clients.push_back({.session = 2,
                       .broker = 0,
                       .amount = 0.6,
                       .lease = 3.0,
                       .max_retries = 1,
                       .max_dups = 0,
                       .max_renews = 0});
  return t;
}

/// Verification target: two brokers, three sessions — a leased client
/// per broker plus a permanent client, so cross-broker interleavings and
/// permanent teardown are covered.
Topology make_pair() {
  Topology t;
  t.name = "pair";
  t.summary = "2 brokers, 3 clients (leased + permanent), cross-broker races";
  t.brokers.push_back({.name = "cpu", .capacity = 1.0});
  t.brokers.push_back({.name = "net", .capacity = 0.5});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.6,
                       .lease = 2.0,
                       .max_retries = 1,
                       .max_renews = 1});
  t.clients.push_back({.session = 2,
                       .broker = 1,
                       .amount = 0.3,
                       .lease = 0.0,
                       .max_retries = 1});
  t.clients.push_back({.session = 3,
                       .broker = 0,
                       .amount = 0.5,
                       .lease = 4.0,
                       .max_retries = 0,
                       .max_dups = 1});
  return t;
}

/// Verification target: crash-restart with clean (lossless) journal tail
/// and a restart grace window; a leased client rides through the outage.
Topology make_crashy() {
  Topology t;
  t.name = "crashy";
  t.summary = "1 journaled broker, 1 crash + restart grace, leased client";
  t.brokers.push_back({.name = "cpu",
                       .capacity = 1.0,
                       .max_crashes = 1,
                       .restart_grace = 1.0});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.4,
                       .lease = 2.0,
                       .max_retries = 1,
                       .max_renews = 1,
                       .max_rereserves = 1});
  t.clients.push_back(
      {.session = 2, .broker = 0, .amount = 0.5, .lease = 3.0,
       .max_retries = 1});
  return t;
}

/// Verification target: the lossy-tail crash model. Compaction is off so
/// the journal keeps the whole history, and each crash may lose up to two
/// un-fsynced records. The group-atomic reply records are what keeps the
/// dedup cache consistent with the surviving mutations here.
Topology make_lossy() {
  Topology t;
  t.name = "lossy";
  t.summary = "1 journaled broker (no compaction), crash loses <=2 records";
  t.brokers.push_back({.name = "cpu",
                       .capacity = 1.0,
                       .compact = false,
                       .max_crashes = 1,
                       .max_tail_loss = 2,
                       .restart_grace = 1.0});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.4,
                       .lease = 2.0,
                       .max_retries = 1});
  return t;
}

/// Expected violation: crash wipes the colocated replay cache, restart
/// restores the granted holding from the journal, and a same-id retry
/// executes again on top of it — unless the cache is rebuilt from the
/// journal (rebuild_dedup_on_restart, the fix this demo disables).
Topology make_demo_dedup() {
  Topology t;
  t.name = "demo-dedup";
  t.summary = "BUG rebuild_dedup_on_restart=0: crash-lost cache, retry "
              "double-executes";
  t.brokers.push_back({.name = "cpu", .capacity = 1.0, .max_crashes = 1});
  t.clients.push_back(
      {.session = 1, .broker = 0, .amount = 0.4, .max_retries = 1});
  t.config.rebuild_dedup_on_restart = false;
  t.expect_violation = true;
  t.expected_invariant = "no-double-grant";
  // The same root cause also strands capacity (a retry re-executing after
  // the session tore down); suppress that shallower manifestation so the
  // pinned trace is the sharper double-grant one.
  t.allow_stranded = true;
  return t;
}

/// Expected violation: the client derives its lease deadline from its
/// own receive time (client_trusts_reply_deadline=0, pre-wire-v2). The
/// grant's lease burns down while the reply is in flight; when expiry
/// fires before delivery the client ends up Granted over a reclaimed
/// holding — a phantom grant.
Topology make_demo_stale() {
  Topology t;
  t.name = "demo-stale";
  t.summary =
      "BUG client_trusts_reply_deadline=0: expiry races the grant reply";
  t.brokers.push_back({.name = "cpu", .capacity = 1.0});
  t.clients.push_back(
      {.session = 1, .broker = 0, .amount = 0.4, .lease = 2.0,
       .max_retries = 0});
  t.config.client_trusts_reply_deadline = false;
  t.expect_violation = true;
  t.expected_invariant = "no-phantom-grant";
  return t;
}

/// Expected violation: restart grace extends the server-side deadline
/// past the client's believed one. The client observes (its) expiry and
/// re-reserves without releasing first (rereserve_releases_first=0); the
/// still-live holding and the fresh grant stack up.
Topology make_demo_rereserve() {
  Topology t;
  t.name = "demo-rereserve";
  t.summary = "BUG rereserve_releases_first=0: grace-extended holding "
              "stacks with re-reserve";
  t.brokers.push_back({.name = "cpu",
                       .capacity = 1.0,
                       .max_crashes = 1,
                       .restart_grace = 10.0});
  t.brokers.push_back({.name = "net", .capacity = 1.0});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.4,
                       .lease = 5.0,
                       .max_retries = 1,
                       .max_rereserves = 1});
  t.clients.push_back(
      {.session = 2, .broker = 1, .amount = 0.3, .lease = 6.0,
       .max_retries = 0});
  t.config.rereserve_releases_first = false;
  t.expect_violation = true;
  t.expected_invariant = "no-double-grant";
  return t;
}

/// Expected violation: the stale-cache ordering. The replay cache lives
/// in a frontend that survives the broker crash; with the down-check
/// after dedup (down_check_before_dedup=0) a duplicate of the executed
/// grant is answered kOk from the cache while the broker is down and its
/// journal tail — including that execution — is being lost.
Topology make_demo_stalededup() {
  Topology t;
  t.name = "demo-stalededup";
  t.summary = "BUG down_check_before_dedup=0: cached kOk served for a "
              "down broker losing its tail";
  t.brokers.push_back({.name = "cpu",
                       .capacity = 1.0,
                       .compact = false,
                       .max_crashes = 1,
                       .max_tail_loss = 2});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.4,
                       .lease = 2.0,
                       .max_retries = 1,
                       .max_dups = 1});
  t.config.down_check_before_dedup = false;
  t.config.dedup_survives_crash = true;
  t.expect_violation = true;
  t.expected_invariant = "no-stale-dedup-replay";
  return t;
}

/// Expected violation: a permanent reservation whose owner crashes
/// silently has no lease to reclaim it — the capacity is stranded
/// forever. This is the baseline the soft-state lease design exists to
/// prevent; the checker proves the model sees it.
Topology make_demo_strand() {
  Topology t;
  t.name = "demo-strand";
  t.summary = "BUG permanent + abandoning client: capacity stranded forever";
  t.brokers.push_back({.name = "cpu", .capacity = 1.0});
  t.clients.push_back({.session = 1,
                       .broker = 0,
                       .amount = 0.4,
                       .lease = 0.0,
                       .max_retries = 0,
                       .may_abandon = true});
  t.expect_violation = true;
  t.expected_invariant = "no-stranded";
  return t;
}

}  // namespace

const std::vector<Topology>& all_topologies() {
  static const std::vector<Topology> kTopologies = {
      make_single(),        make_pair(),       make_crashy(),
      make_lossy(),         make_demo_dedup(), make_demo_stale(),
      make_demo_rereserve(), make_demo_stalededup(), make_demo_strand(),
  };
  return kTopologies;
}

const Topology* find_topology(const std::string& name) {
  for (const Topology& t : all_topologies())
    if (t.name == name) return &t;
  return nullptr;
}

bool apply_config_override(McConfig* config, const std::string& pair) {
  const std::size_t eq = pair.find('=');
  if (eq == std::string::npos || eq + 1 >= pair.size()) return false;
  const std::string key = pair.substr(0, eq);
  const std::string value = pair.substr(eq + 1);
  if (value != "0" && value != "1") return false;
  const bool on = value == "1";
  if (key == "down_check_before_dedup")
    config->down_check_before_dedup = on;
  else if (key == "rebuild_dedup_on_restart")
    config->rebuild_dedup_on_restart = on;
  else if (key == "dedup_survives_crash")
    config->dedup_survives_crash = on;
  else if (key == "client_trusts_reply_deadline")
    config->client_trusts_reply_deadline = on;
  else if (key == "rereserve_releases_first")
    config->rereserve_releases_first = on;
  else
    return false;
  return true;
}

std::vector<std::string> config_overrides(const McConfig& config) {
  const McConfig defaults;
  std::vector<std::string> out;
  const auto diff = [&](const char* key, bool value, bool fallback) {
    if (value != fallback)
      out.push_back(std::string(key) + "=" + (value ? "1" : "0"));
  };
  diff("down_check_before_dedup", config.down_check_before_dedup,
       defaults.down_check_before_dedup);
  diff("rebuild_dedup_on_restart", config.rebuild_dedup_on_restart,
       defaults.rebuild_dedup_on_restart);
  diff("dedup_survives_crash", config.dedup_survives_crash,
       defaults.dedup_survives_crash);
  diff("client_trusts_reply_deadline", config.client_trusts_reply_deadline,
       defaults.client_trusts_reply_deadline);
  diff("rereserve_releases_first", config.rereserve_releases_first,
       defaults.rereserve_releases_first);
  return out;
}

}  // namespace qres::mc
