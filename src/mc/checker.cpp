#include "mc/checker.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/assert.hpp"

namespace qres::mc {

namespace {

/// Sleep sets are small sorted action vectors (set semantics).
using SleepSet = std::vector<Action>;

bool sleep_contains(const SleepSet& sleep, const Action& action) {
  return std::binary_search(sleep.begin(), sleep.end(), action);
}

void sleep_insert(SleepSet* sleep, const Action& action) {
  const auto it = std::lower_bound(sleep->begin(), sleep->end(), action);
  if (it == sleep->end() || !(*it == action)) sleep->insert(it, action);
}

bool sleep_superset(const SleepSet& outer, const SleepSet& inner) {
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

SleepSet sleep_intersection(const SleepSet& a, const SleepSet& b) {
  SleepSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

class Dfs {
 public:
  Dfs(const Topology& topology, const McConfig& config,
      const CheckLimits& limits)
      : topo_(topology), cfg_(config), limits_(limits) {}

  CheckResult run() {
    World root(topo_, cfg_);
    std::vector<Action> path;
    explore(root, 0, &path, {});
    return std::move(result_);
  }

 private:
  /// Returns true when the search should unwind (violation found or
  /// budget gone in a way that stops everything).
  bool explore(World& world, std::size_t depth, std::vector<Action>* path,
               SleepSet sleep) {
    result_.deepest = std::max(result_.deepest, depth);
    const auto key = world.canonical_key();
    const auto [it, fresh] = visited_.try_emplace(key, sleep);
    if (fresh) {
      ++result_.distinct_states;
    } else {
      ++result_.revisits;
      if (sleep_superset(sleep, it->second)) return false;
      // Arriving with sleeps the stored visit did not have: re-explore
      // with the intersection so the union of both visits' explored
      // transitions is covered.
      it->second = sleep_intersection(it->second, sleep);
      sleep = it->second;
    }
    if (result_.distinct_states > limits_.max_states) {
      result_.budget_exhausted = true;
      return true;
    }

    const std::vector<Action> actions = world.enabled();
    if (actions.empty()) {
      world.check_quiescent();
      if (!world.violation().empty()) {
        found(world.violation(), *path);
        return true;
      }
      return false;
    }
    if (depth >= limits_.max_depth) {
      result_.budget_exhausted = true;
      return false;
    }

    SleepSet explored;
    for (const Action& action : actions) {
      if (limits_.por && sleep_contains(sleep, action)) {
        ++result_.sleep_pruned;
        continue;
      }
      World child = world.clone();
      child.apply(action);
      ++result_.transitions;
      path->push_back(action);
      if (!child.violation().empty()) {
        found(child.violation(), *path);
        return true;
      }
      SleepSet child_sleep;
      if (limits_.por) {
        for (const Action& other : sleep)
          if (independent(action, other)) sleep_insert(&child_sleep, other);
        for (const Action& other : explored)
          if (independent(action, other)) sleep_insert(&child_sleep, other);
      }
      if (explore(child, depth + 1, path, std::move(child_sleep)))
        return true;
      path->pop_back();
      if (limits_.por) sleep_insert(&explored, action);
    }
    return false;
  }

  void found(const std::string& invariant, const std::vector<Action>& path) {
    result_.violation_found = true;
    result_.invariant = invariant;
    result_.trace = path;
  }

  const Topology& topo_;
  const McConfig& cfg_;
  const CheckLimits& limits_;
  CheckResult result_;
  // std::map (ordered) keeps iteration deterministic; keys are the
  // 128-bit canonical hashes.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SleepSet> visited_;
};

}  // namespace

CheckResult check(const Topology& topology, const McConfig& config,
                  const CheckLimits& limits) {
  Dfs dfs(topology, config, limits);
  CheckResult result = dfs.run();
  if (result.violation_found)
    result.trace = minimize(topology, config, std::move(result.trace),
                            result.invariant);
  return result;
}

bool replay(const Topology& topology, const McConfig& config,
            const std::vector<Action>& trace, std::string* violated) {
  if (violated != nullptr) violated->clear();
  World world(topology, config);
  for (const Action& action : trace) {
    const std::vector<Action> enabled = world.enabled();
    // Match on stable identity; trace files omit the owner field, so
    // resolve against the enabled action carrying the full identity.
    const Action* match = nullptr;
    for (const Action& candidate : enabled) {
      if (candidate.kind == action.kind && candidate.broker == action.broker &&
          candidate.client == action.client && candidate.arg == action.arg &&
          candidate.request_id == action.request_id &&
          candidate.frame_hash == action.frame_hash) {
        match = &candidate;
        break;
      }
    }
    if (match == nullptr) return false;
    world.apply(*match);
    if (!world.violation().empty()) {
      if (violated != nullptr) *violated = world.violation();
      return true;
    }
  }
  if (world.enabled().empty()) {
    world.check_quiescent();
    if (violated != nullptr) *violated = world.violation();
  }
  return true;
}

std::vector<Action> minimize(const Topology& topology, const McConfig& config,
                             std::vector<Action> trace,
                             const std::string& invariant) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::vector<Action> candidate;
      candidate.reserve(trace.size() - 1);
      for (std::size_t j = 0; j < trace.size(); ++j)
        if (j != i) candidate.push_back(trace[j]);
      std::string violated;
      if (replay(topology, config, candidate, &violated) &&
          violated == invariant) {
        trace = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  // The minimized trace must still reproduce — the caller relies on it.
  std::string violated;
  const bool ok = replay(topology, config, trace, &violated);
  QRES_ENSURE(ok && violated == invariant,
              "mc: minimized trace no longer reproduces the violation");
  return trace;
}

}  // namespace qres::mc
