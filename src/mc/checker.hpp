// Explicit-state DFS checker with canonical-state caching and sleep-set
// partial-order reduction (DESIGN.md §13).
//
// The checker explores every interleaving of World actions up to a
// depth/state budget. Visited states are keyed by World::canonical_key();
// each stores the sleep set it was explored with, and a revisit is pruned
// only when the arriving sleep set is a superset of the stored one —
// otherwise the state is re-explored with the intersection. This variant
// of sleep sets composes soundly with state caching: it prunes
// *transitions* (commuting reorderings) but never loses a reachable
// state, which is what lets the soundness test demand bit-equal distinct
// state counts with the reduction on and off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/topology.hpp"
#include "mc/world.hpp"

namespace qres::mc {

struct CheckLimits {
  std::uint64_t max_states = 200000;  ///< distinct canonical states
  std::size_t max_depth = 64;         ///< longest explored action sequence
  bool por = true;                    ///< sleep-set reduction on/off
};

struct CheckResult {
  bool violation_found = false;
  std::string invariant;       ///< which invariant broke (when found)
  std::vector<Action> trace;   ///< minimized counterexample (when found)
  std::uint64_t distinct_states = 0;
  std::uint64_t transitions = 0;   ///< actions actually applied
  std::uint64_t sleep_pruned = 0;  ///< transitions skipped by sleep sets
  std::uint64_t revisits = 0;      ///< arrivals at an already-keyed state
  std::size_t deepest = 0;         ///< longest path reached
  bool budget_exhausted = false;   ///< hit max_states or max_depth

  /// Exhaustive and clean: every reachable state within the budget was
  /// visited and no invariant broke.
  bool verified() const noexcept {
    return !violation_found && !budget_exhausted;
  }
};

/// Explores `topology` under `config`. On violation the returned trace is
/// already minimized (see minimize()) and replayable.
CheckResult check(const Topology& topology, const McConfig& config,
                  const CheckLimits& limits);

/// Replays `trace` action by action on a fresh world. Returns false when
/// some action is not enabled at its step. `violated` (optional) receives
/// the invariant broken during replay ("" when none — including the
/// quiescent check when the final state has no enabled actions).
bool replay(const Topology& topology, const McConfig& config,
            const std::vector<Action>& trace, std::string* violated);

/// Greedy delta-debugging: repeatedly deletes single actions while the
/// remainder still replays to the same `invariant` violation, to a fixed
/// point. The result is 1-minimal (no single action can be removed).
std::vector<Action> minimize(const Topology& topology, const McConfig& config,
                             std::vector<Action> trace,
                             const std::string& invariant);

}  // namespace qres::mc
