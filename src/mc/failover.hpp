// Explicit-state checking of the replication / failover protocol
// (DESIGN.md §14): a ReplicatedBroker group driven action by action.
//
// The signaling checker (world.hpp) explores the client/service frame
// protocol; this module explores the *group* protocol underneath it —
// grants at specific replicas, replica crashes and journal-recovery
// restarts, standby promotion under fresh epochs, and a partitionable
// ship transport — with every nondeterministic choice an enumerable
// action. The objects under test are the real ReplicatedBroker and
// ResourceBroker, not models of them.
//
// Invariants, re-checked after every action:
//   * no-split-brain — at most one live replica serves in primary role.
//     Epoch fencing enforces it: promotion fences the deposed primary,
//     and a deposed primary that restarts comes back fenced. With
//     `fencing = false` the failover-split-brain demo topology reaches
//     the violation in three actions (crash old, promote new, restart
//     old) — the pinned trace under tools/testdata/mc_traces/.
//   * confirmed-conservation — the sum of *confirmed* grants never
//     exceeds capacity. In sync mode a grant confirms only after quorum,
//     so a mid-epoch primary kill cannot confirm-and-lose; without
//     fencing a deposed primary confirms grants against a diverged
//     shadow and the sum overshoots.
//
// Worlds are rebuilt by replay (ReplicatedBroker owns its journals and
// capture sinks, so cloning is not meaningful); the DFS is stateless
// reset+replay with canonical-state caching, cheap at these depths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/replication.hpp"

namespace qres::mc {

enum class FailoverActionKind : std::uint8_t {
  kGrant,      ///< session reserves at a specific replica
  kCrash,      ///< replica process crashes (journal survives)
  kRestart,    ///< crashed replica restarts (recovers from its journal)
  kPromote,    ///< standby adopts next_epoch and serves as primary
  kPartition,  ///< ship transport drops everything until healed
  kHeal,       ///< transport back up; primary re-ships on next flush
};

const char* to_string(FailoverActionKind kind) noexcept;

struct FailoverAction {
  FailoverActionKind kind{};
  std::int32_t replica = -1;  ///< target replica index (grant/crash/...)
  std::int32_t session = -1;  ///< granting session index (kGrant only)

  friend bool operator==(const FailoverAction&, const FailoverAction&) =
      default;
};

/// One stable trace line ("grant s1 r0", "promote r1", "partition").
std::string to_string(const FailoverAction& action);
bool parse_failover_action(const std::string& line, FailoverAction* out);

/// A closed replica-group scenario: budgets bound the state space.
struct FailoverTopology {
  std::string name;
  std::string summary;
  std::size_t replicas = 3;
  double capacity = 1.0;
  double amount = 0.6;   ///< per-grant amount (two grants overshoot)
  int sessions = 2;      ///< distinct granting sessions
  int attempts_per_session = 1;  ///< grant attempts (failed ones count)
  ReplicationMode mode = ReplicationMode::kSync;
  std::size_t quorum = 0;  ///< 0 = majority
  /// Async shipping lag bound. Small enough and every grant ships
  /// inside a model step; large enough and the confirmed-but-unshipped
  /// window stays open for the checker to exploit.
  std::size_t async_lag = 2;
  bool fencing = true;
  int max_crashes = 1;
  int max_restarts = 1;
  int max_promotions = 1;
  bool allow_partition = false;
  int max_partitions = 1;
  bool expect_violation = false;
  std::string expected_invariant;
};

/// The real group plus the scripted-world bookkeeping.
class FailoverWorld {
 public:
  explicit FailoverWorld(const FailoverTopology& topology);
  ~FailoverWorld();

  /// Empty in a violating state (violations are terminal).
  std::vector<FailoverAction> enabled() const;
  /// Applies one action (must be enabled) and re-checks the invariants.
  void apply(const FailoverAction& action);

  const std::string& violation() const noexcept { return violation_; }
  std::pair<std::uint64_t, std::uint64_t> canonical_key() const;

  const ReplicatedBroker& group() const noexcept { return *group_; }
  double confirmed_total() const noexcept { return confirmed_; }

 private:
  class DropTransport;

  void check_invariants();

  const FailoverTopology* topo_;
  std::unique_ptr<ReplicatedBroker> group_;
  std::unique_ptr<DropTransport> transport_;
  double now_ = 0.0;  ///< model time: one unit per action
  std::vector<int> attempts_left_;   ///< per session
  std::vector<bool> granted_;        ///< per session: confirmed grant held
  double confirmed_ = 0.0;
  int crashes_left_;
  int restarts_left_;
  int promotions_left_;
  int partitions_left_;
  bool partitioned_ = false;
  std::string violation_;
};

struct FailoverCheckResult {
  bool violation_found = false;
  std::string invariant;
  std::vector<FailoverAction> trace;  ///< minimized when found
  std::uint64_t distinct_states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t revisits = 0;
  std::size_t deepest = 0;
  bool budget_exhausted = false;

  bool verified() const noexcept {
    return !violation_found && !budget_exhausted;
  }
};

struct FailoverCheckLimits {
  std::uint64_t max_states = 200000;
  std::size_t max_depth = 24;
};

/// Exhaustive DFS with canonical-state caching; the returned trace is
/// minimized (1-minimal) on violation.
FailoverCheckResult check_failover(const FailoverTopology& topology,
                                   const FailoverCheckLimits& limits);

/// Replays `trace` on a fresh world. False when an action is not
/// enabled; *violated (optional) receives the broken invariant ("" when
/// none).
bool replay_failover(const FailoverTopology& topology,
                     const std::vector<FailoverAction>& trace,
                     std::string* violated);

std::vector<FailoverAction> minimize_failover(
    const FailoverTopology& topology, std::vector<FailoverAction> trace,
    const std::string& invariant);

/// Built-in failover topologies (verification targets first, the
/// fencing-off split-brain demo last).
const std::vector<FailoverTopology>& all_failover_topologies();
const FailoverTopology* find_failover_topology(const std::string& name);

/// Failover trace files ("# qres_mc failover-trace v1"): same shape as
/// the signaling traces, pinned under tools/testdata/mc_traces/.
struct FailoverTraceFile {
  std::string topology;
  bool expect_violation = false;
  std::string expected_invariant;
  std::vector<FailoverAction> actions;
};

std::string format_failover_trace(const FailoverTraceFile& trace);
bool parse_failover_trace(const std::string& text, FailoverTraceFile* out,
                          std::string* error);
/// True when `text` starts with the failover trace header (dispatch
/// helper for `qres_mc replay`).
bool is_failover_trace(const std::string& text);
/// Replays a parsed trace and verifies its expectation; false with a
/// diagnostic in *error otherwise.
bool run_failover_trace(const FailoverTraceFile& trace, std::string* error);

}  // namespace qres::mc
