// Replayable counterexample traces (DESIGN.md §13).
//
// A trace file pins one checker run's counterexample (or expected-clean
// replay) in a stable text form:
//
//   # qres_mc trace v1
//   topology: demo-dedup
//   config: rebuild_dedup_on_restart=0
//   expect: violation no-double-grant
//   action: start c0
//   action: deliver b0 id 101 h 6f0e...
//   ...
//
// `topology:` names a built-in micro-topology, `config:` lines override
// its protocol flags (one key=value per line), and `expect:` is either
// `ok` or `violation <invariant>`. Replaying applies each action to a
// fresh World and verifies the expected outcome — checked-in traces under
// tools/testdata/mc_traces/ are permanent regressions for every protocol
// bug the checker found.
#pragma once

#include <string>
#include <vector>

#include "mc/topology.hpp"
#include "mc/world.hpp"

namespace qres::mc {

struct TraceFile {
  std::string topology;
  std::vector<std::string> overrides;  ///< "key=value" config lines
  bool expect_violation = false;
  std::string expected_invariant;  ///< set when expect_violation
  std::vector<Action> actions;
};

/// Renders a trace file (stable text; ends with a newline).
std::string format_trace(const TraceFile& trace);

/// Parses trace text. Returns false (and fills *error) on malformed
/// input; never throws.
bool parse_trace(const std::string& text, TraceFile* out, std::string* error);

/// Parses one action line body ("deliver b0 id 101 h ..."). The parsed
/// action carries destination/id/hash identity; the owner field is
/// resolved at replay time against the enabled set.
bool parse_action(const std::string& line, Action* out);

/// Replays a parsed trace against its named topology and verifies the
/// expected verdict. Returns false with a diagnostic in *error when the
/// topology is unknown, an action is not enabled, or the outcome differs.
bool run_trace(const TraceFile& trace, std::string* error);

}  // namespace qres::mc
