#include "mc/trace.hpp"

#include <cstdint>
#include <sstream>

#include "mc/checker.hpp"

namespace qres::mc {

namespace {

/// "b3" -> (broker 3), "c1" -> (client 1).
bool parse_endpoint(const std::string& token, std::int32_t* broker,
                    std::int32_t* client) {
  *broker = -1;
  *client = -1;
  if (token.size() < 2 || (token[0] != 'b' && token[0] != 'c')) return false;
  int value = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
    value = value * 10 + (token[i] - '0');
  }
  (token[0] == 'b' ? *broker : *client) = value;
  return true;
}

bool parse_hex64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  *out = 0;
  for (const char ch : token) {
    int digit;
    if (ch >= '0' && ch <= '9')
      digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f')
      digit = ch - 'a' + 10;
    else
      return false;
    *out = (*out << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

}  // namespace

bool parse_action(const std::string& line, Action* out) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) return false;
  *out = Action{};

  const auto kind_of = [&](const std::string& v, ActionKind* kind) {
    for (const ActionKind k :
         {ActionKind::kStart, ActionKind::kRetry, ActionKind::kGiveUp,
          ActionKind::kRenew, ActionKind::kTeardown, ActionKind::kAbandon,
          ActionKind::kObserveExpired, ActionKind::kDeliver, ActionKind::kDrop,
          ActionKind::kDup, ActionKind::kExpire, ActionKind::kCrash,
          ActionKind::kRestart}) {
      if (v == to_string(k)) {
        *kind = k;
        return true;
      }
    }
    return false;
  };
  if (!kind_of(verb, &out->kind)) return false;

  std::string token;
  switch (out->kind) {
    case ActionKind::kStart:
    case ActionKind::kRetry:
    case ActionKind::kGiveUp:
    case ActionKind::kRenew:
    case ActionKind::kTeardown:
    case ActionKind::kAbandon:
    case ActionKind::kObserveExpired: {
      if (!(in >> token)) return false;
      std::int32_t broker;
      if (!parse_endpoint(token, &broker, &out->client) || out->client < 0)
        return false;
      break;
    }
    case ActionKind::kDeliver:
    case ActionKind::kDrop:
    case ActionKind::kDup: {
      std::string id_kw;
      std::string id_val;
      std::string h_kw;
      std::string h_val;
      if (!(in >> token >> id_kw >> id_val >> h_kw >> h_val)) return false;
      if (id_kw != "id" || h_kw != "h") return false;
      if (!parse_endpoint(token, &out->broker, &out->client)) return false;
      out->request_id = 0;
      for (const char ch : id_val) {
        if (ch < '0' || ch > '9') return false;
        out->request_id = out->request_id * 10 + (ch - '0');
      }
      if (!parse_hex64(h_val, &out->frame_hash)) return false;
      break;
    }
    case ActionKind::kExpire:
    case ActionKind::kRestart: {
      if (!(in >> token)) return false;
      std::int32_t client;
      if (!parse_endpoint(token, &out->broker, &client) || out->broker < 0)
        return false;
      break;
    }
    case ActionKind::kCrash: {
      std::string loss_kw;
      int loss = 0;
      if (!(in >> token >> loss_kw >> loss)) return false;
      std::int32_t client;
      if (loss_kw != "loss" || loss < 0 ||
          !parse_endpoint(token, &out->broker, &client) || out->broker < 0)
        return false;
      out->arg = loss;
      break;
    }
  }
  std::string trailing;
  if (in >> trailing) return false;
  return true;
}

std::string format_trace(const TraceFile& trace) {
  std::string out = "# qres_mc trace v1\n";
  out += "topology: " + trace.topology + "\n";
  for (const std::string& pair : trace.overrides)
    out += "config: " + pair + "\n";
  out += trace.expect_violation
             ? "expect: violation " + trace.expected_invariant + "\n"
             : "expect: ok\n";
  for (const Action& action : trace.actions)
    out += "action: " + to_string(action) + "\n";
  return out;
}

bool parse_trace(const std::string& text, TraceFile* out,
                 std::string* error) {
  *out = TraceFile{};
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool have_topology = false;
  bool have_expect = false;
  const auto fail = [&](const std::string& message) {
    if (error != nullptr)
      *error = "line " + std::to_string(lineno) + ": " + message;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) return fail("expected 'key: value'");
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (key == "topology") {
      out->topology = value;
      have_topology = true;
    } else if (key == "config") {
      McConfig probe;
      if (!apply_config_override(&probe, value))
        return fail("unknown config override '" + value + "'");
      out->overrides.push_back(value);
    } else if (key == "expect") {
      have_expect = true;
      if (value == "ok") {
        out->expect_violation = false;
      } else if (value.rfind("violation ", 0) == 0) {
        out->expect_violation = true;
        out->expected_invariant = value.substr(10);
        if (out->expected_invariant.empty())
          return fail("'expect: violation' without an invariant name");
      } else {
        return fail("expect must be 'ok' or 'violation <invariant>'");
      }
    } else if (key == "action") {
      Action action;
      if (!parse_action(value, &action))
        return fail("malformed action '" + value + "'");
      out->actions.push_back(action);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!have_topology) {
    lineno = 0;
    return fail("missing 'topology:' line");
  }
  if (!have_expect) {
    lineno = 0;
    return fail("missing 'expect:' line");
  }
  return true;
}

bool run_trace(const TraceFile& trace, std::string* error) {
  const Topology* topology = find_topology(trace.topology);
  if (topology == nullptr) {
    if (error != nullptr) *error = "unknown topology '" + trace.topology + "'";
    return false;
  }
  McConfig config = topology->config;
  for (const std::string& pair : trace.overrides) {
    if (!apply_config_override(&config, pair)) {
      if (error != nullptr) *error = "bad config override '" + pair + "'";
      return false;
    }
  }
  std::string violated;
  if (!replay(*topology, config, trace.actions, &violated)) {
    if (error != nullptr)
      *error = "an action in the trace is not enabled at its step";
    return false;
  }
  if (trace.expect_violation) {
    if (violated != trace.expected_invariant) {
      if (error != nullptr)
        *error = "expected violation '" + trace.expected_invariant +
                 "', replay produced '" + (violated.empty() ? "ok" : violated) +
                 "'";
      return false;
    }
  } else if (!violated.empty()) {
    if (error != nullptr)
      *error = "expected a clean replay, got violation '" + violated + "'";
    return false;
  }
  return true;
}

}  // namespace qres::mc
