#include "mc/failover.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace qres::mc {

const char* to_string(FailoverActionKind kind) noexcept {
  switch (kind) {
    case FailoverActionKind::kGrant: return "grant";
    case FailoverActionKind::kCrash: return "crash";
    case FailoverActionKind::kRestart: return "restart";
    case FailoverActionKind::kPromote: return "promote";
    case FailoverActionKind::kPartition: return "partition";
    case FailoverActionKind::kHeal: return "heal";
  }
  return "?";
}

std::string to_string(const FailoverAction& action) {
  char buf[64];
  switch (action.kind) {
    case FailoverActionKind::kGrant:
      std::snprintf(buf, sizeof buf, "grant s%d r%d", action.session,
                    action.replica);
      break;
    case FailoverActionKind::kCrash:
    case FailoverActionKind::kRestart:
    case FailoverActionKind::kPromote:
      std::snprintf(buf, sizeof buf, "%s r%d", to_string(action.kind),
                    action.replica);
      break;
    case FailoverActionKind::kPartition:
    case FailoverActionKind::kHeal:
      std::snprintf(buf, sizeof buf, "%s", to_string(action.kind));
      break;
  }
  return buf;
}

namespace {

bool parse_index(const std::string& token, char prefix, std::int32_t* out) {
  if (token.size() < 2 || token[0] != prefix) return false;
  std::int32_t value = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
    value = value * 10 + (token[i] - '0');
  }
  *out = value;
  return true;
}

}  // namespace

bool parse_failover_action(const std::string& line, FailoverAction* out) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) return false;
  FailoverAction action;
  std::string a, b, extra;
  if (verb == "grant") {
    action.kind = FailoverActionKind::kGrant;
    if (!(in >> a >> b) || (in >> extra)) return false;
    if (!parse_index(a, 's', &action.session) ||
        !parse_index(b, 'r', &action.replica))
      return false;
  } else if (verb == "crash" || verb == "restart" || verb == "promote") {
    action.kind = verb == "crash"     ? FailoverActionKind::kCrash
                  : verb == "restart" ? FailoverActionKind::kRestart
                                      : FailoverActionKind::kPromote;
    if (!(in >> a) || (in >> extra)) return false;
    if (!parse_index(a, 'r', &action.replica)) return false;
  } else if (verb == "partition" || verb == "heal") {
    action.kind = verb == "partition" ? FailoverActionKind::kPartition
                                      : FailoverActionKind::kHeal;
    if (in >> extra) return false;
  } else {
    return false;
  }
  *out = action;
  return true;
}

// --- World ----------------------------------------------------------------

/// In-process shipping with a partition switch: offline drops every batch
/// (and its ack) on the floor, exactly what a severed replication link
/// looks like to the primary.
class FailoverWorld::DropTransport final : public IShipTransport {
 public:
  explicit DropTransport(ReplicatedBroker* group) : group_(group) {}

  std::optional<ShipAckInfo> ship(HostId to, const ShipBatch& batch,
                                  double now) override {
    if (!online) return std::nullopt;
    return group_->apply_ship(to, batch, now);
  }

  bool online = true;

 private:
  ReplicatedBroker* group_;
};

namespace {

constexpr std::uint32_t kSessionBase = 100;  ///< model session ids

HostId replica_host(std::int32_t index) {
  return HostId{static_cast<std::uint32_t>(index)};
}

SessionId model_session(std::int32_t index) {
  return SessionId{kSessionBase + static_cast<std::uint32_t>(index)};
}

std::uint64_t quantize(double x) {
  return static_cast<std::uint64_t>(std::llround(x * 1e6));
}

}  // namespace

FailoverWorld::FailoverWorld(const FailoverTopology& topology)
    : topo_(&topology) {
  QRES_REQUIRE(topology.replicas >= 2, "FailoverWorld: need >= 2 replicas");
  QRES_REQUIRE(topology.sessions >= 1 && topology.attempts_per_session >= 1,
               "FailoverWorld: need granting sessions");
  std::vector<HostId> hosts;
  hosts.reserve(topology.replicas);
  for (std::size_t i = 0; i < topology.replicas; ++i)
    hosts.push_back(replica_host(static_cast<std::int32_t>(i)));
  ReplicationConfig config;
  config.mode = topology.mode;
  config.quorum = topology.quorum;
  config.fencing = topology.fencing;
  config.max_async_lag = topology.async_lag;
  group_ = std::make_unique<ReplicatedBroker>(
      ResourceId{0}, "mc-failover", topology.capacity, hosts, config);
  transport_ = std::make_unique<DropTransport>(group_.get());
  group_->set_transport(transport_.get());
  attempts_left_.assign(static_cast<std::size_t>(topology.sessions),
                        topology.attempts_per_session);
  granted_.assign(static_cast<std::size_t>(topology.sessions), false);
  crashes_left_ = topology.max_crashes;
  restarts_left_ = topology.max_restarts;
  promotions_left_ = topology.max_promotions;
  partitions_left_ = topology.max_partitions;
  check_invariants();
}

FailoverWorld::~FailoverWorld() = default;

std::vector<FailoverAction> FailoverWorld::enabled() const {
  std::vector<FailoverAction> out;
  if (!violation_.empty()) return out;  // violating states are terminal
  const std::int32_t replicas = static_cast<std::int32_t>(topo_->replicas);
  for (std::int32_t s = 0; s < topo_->sessions; ++s) {
    if (granted_[static_cast<std::size_t>(s)] ||
        attempts_left_[static_cast<std::size_t>(s)] <= 0)
      continue;
    for (std::int32_t r = 0; r < replicas; ++r)
      if (group_->replica_up(replica_host(r)))
        out.push_back({FailoverActionKind::kGrant, r, s});
  }
  for (std::int32_t r = 0; r < replicas; ++r) {
    const HostId host = replica_host(r);
    if (crashes_left_ > 0 && group_->replica_up(host))
      out.push_back({FailoverActionKind::kCrash, r, -1});
    if (restarts_left_ > 0 && !group_->replica_up(host))
      out.push_back({FailoverActionKind::kRestart, r, -1});
  }
  // The coordinator promotes only once it believes the primary is gone:
  // the group is headless, or the partition hides a primary that is in
  // fact alive — the false-suspicion race fencing exists for.
  if (promotions_left_ > 0 &&
      (!group_->primary_host().valid() || partitioned_)) {
    for (std::int32_t r = 0; r < replicas; ++r) {
      const HostId host = replica_host(r);
      if (group_->replica_up(host) &&
          group_->role_of(host) == ReplicaRole::kStandby)
        out.push_back({FailoverActionKind::kPromote, r, -1});
    }
  }
  if (topo_->allow_partition) {
    if (!partitioned_ && partitions_left_ > 0)
      out.push_back({FailoverActionKind::kPartition, -1, -1});
    if (partitioned_) out.push_back({FailoverActionKind::kHeal, -1, -1});
  }
  return out;
}

void FailoverWorld::apply(const FailoverAction& action) {
  const std::vector<FailoverAction> legal = enabled();
  QRES_REQUIRE(std::find(legal.begin(), legal.end(), action) != legal.end(),
               "FailoverWorld::apply: action not enabled");
  switch (action.kind) {
    case FailoverActionKind::kGrant: {
      --attempts_left_[static_cast<std::size_t>(action.session)];
      const bool confirmed =
          group_->reserve_at(replica_host(action.replica), now_,
                             model_session(action.session), topo_->amount);
      if (confirmed) {
        granted_[static_cast<std::size_t>(action.session)] = true;
        confirmed_ += topo_->amount;
      }
      break;
    }
    case FailoverActionKind::kCrash:
      --crashes_left_;
      group_->crash_replica(replica_host(action.replica), now_);
      break;
    case FailoverActionKind::kRestart:
      --restarts_left_;
      group_->restart_replica(replica_host(action.replica), now_);
      break;
    case FailoverActionKind::kPromote:
      --promotions_left_;
      // Refusal (raced epoch) only burns the budget, like a real
      // coordinator's promote_refused.
      // qres-lint: allow(unchecked-status): the model deliberately explores
      // refused promotions too; the checker's invariants judge the outcome
      group_->promote(replica_host(action.replica), group_->next_epoch(),
                      now_);
      break;
    case FailoverActionKind::kPartition:
      --partitions_left_;
      partitioned_ = true;
      transport_->online = false;
      break;
    case FailoverActionKind::kHeal:
      partitioned_ = false;
      transport_->online = true;
      // Anti-entropy on reconnect: the primary re-ships its pending tail.
      // qres-lint: allow(unchecked-status): convergence is asserted by
      // check_invariants below, not by this ship's aggregate verdict
      if (group_->up()) group_->flush(now_);
      break;
  }
  now_ += 1.0;
  check_invariants();
}

void FailoverWorld::check_invariants() {
  int live_primaries = 0;
  for (std::size_t r = 0; r < topo_->replicas; ++r) {
    const HostId host = replica_host(static_cast<std::int32_t>(r));
    if (group_->role_of(host) == ReplicaRole::kPrimary &&
        group_->replica_up(host))
      ++live_primaries;
  }
  if (live_primaries >= 2) {
    violation_ = "split-brain";
    return;
  }
  if (confirmed_ > topo_->capacity + 1e-9)
    violation_ = "confirmed-exceeds-capacity";
}

std::pair<std::uint64_t, std::uint64_t> FailoverWorld::canonical_key() const {
  struct Fnv {
    std::uint64_t h;
    void mix(std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
  };
  Fnv a{14695981039346656037ull};
  Fnv b{0x9e3779b97f4a7c15ull};
  const auto mix = [&](std::uint64_t v) {
    a.mix(v);
    b.mix(v);
  };
  for (std::size_t r = 0; r < topo_->replicas; ++r) {
    const HostId host = replica_host(static_cast<std::int32_t>(r));
    mix(static_cast<std::uint64_t>(group_->role_of(host)));
    mix(group_->epoch_of(host));
    mix(group_->replica_up(host) ? 1 : 0);
    mix(group_->watermark_of(host));
    const ResourceBroker& broker = group_->replica_broker(host);
    mix(quantize(broker.available()));
    for (std::int32_t s = 0; s < topo_->sessions; ++s)
      mix(quantize(broker.held_by(model_session(s))));
  }
  mix(partitioned_ ? 1 : 0);
  mix(static_cast<std::uint64_t>(crashes_left_));
  mix(static_cast<std::uint64_t>(restarts_left_));
  mix(static_cast<std::uint64_t>(promotions_left_));
  mix(static_cast<std::uint64_t>(partitions_left_));
  for (std::int32_t s = 0; s < topo_->sessions; ++s) {
    mix(static_cast<std::uint64_t>(
        attempts_left_[static_cast<std::size_t>(s)]));
    mix(granted_[static_cast<std::size_t>(s)] ? 1 : 0);
  }
  mix(quantize(confirmed_));
  mix(violation_.empty() ? 0 : 1);
  return {a.h, b.h};
}

// --- Checker --------------------------------------------------------------

namespace {

std::unique_ptr<FailoverWorld> rebuild(const FailoverTopology& topology,
                                       const std::vector<FailoverAction>& t) {
  auto world = std::make_unique<FailoverWorld>(topology);
  for (const FailoverAction& action : t) world->apply(action);
  return world;
}

struct Dfs {
  const FailoverTopology* topo;
  FailoverCheckLimits limits;
  FailoverCheckResult* result;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::vector<FailoverAction> prefix;

  // ReplicatedBroker is not clonable (it owns journals and capture
  // sinks), so each child is rebuilt by replaying the prefix — cheap at
  // model depths, and it exercises the exact production objects.
  bool run(FailoverWorld& world, std::size_t depth) {
    if (!world.violation().empty()) {
      result->violation_found = true;
      result->invariant = world.violation();
      result->trace = prefix;
      return true;
    }
    if (depth >= limits.max_depth) return false;
    for (const FailoverAction& action : world.enabled()) {
      if (result->distinct_states >= limits.max_states) {
        result->budget_exhausted = true;
        return false;
      }
      prefix.push_back(action);
      ++result->transitions;
      const std::unique_ptr<FailoverWorld> child = rebuild(*topo, prefix);
      if (!child->violation().empty()) {
        result->violation_found = true;
        result->invariant = child->violation();
        result->trace = prefix;
        return true;
      }
      if (seen.insert(child->canonical_key()).second) {
        ++result->distinct_states;
        result->deepest = std::max(result->deepest, depth + 1);
        if (run(*child, depth + 1)) return true;
        if (result->budget_exhausted) return false;
      } else {
        ++result->revisits;
      }
      prefix.pop_back();
    }
    return false;
  }
};

}  // namespace

FailoverCheckResult check_failover(const FailoverTopology& topology,
                                   const FailoverCheckLimits& limits) {
  FailoverCheckResult result;
  FailoverWorld initial(topology);
  Dfs dfs{&topology, limits, &result, {}, {}};
  dfs.seen.insert(initial.canonical_key());
  result.distinct_states = 1;
  dfs.run(initial, 0);
  if (result.violation_found)
    result.trace =
        minimize_failover(topology, std::move(result.trace), result.invariant);
  return result;
}

bool replay_failover(const FailoverTopology& topology,
                     const std::vector<FailoverAction>& trace,
                     std::string* violated) {
  FailoverWorld world(topology);
  for (const FailoverAction& action : trace) {
    if (!world.violation().empty()) break;  // terminal; ignore the tail
    const std::vector<FailoverAction> legal = world.enabled();
    if (std::find(legal.begin(), legal.end(), action) == legal.end())
      return false;
    world.apply(action);
  }
  if (violated != nullptr) *violated = world.violation();
  return true;
}

std::vector<FailoverAction> minimize_failover(
    const FailoverTopology& topology, std::vector<FailoverAction> trace,
    const std::string& invariant) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::vector<FailoverAction> candidate = trace;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      std::string violated;
      if (replay_failover(topology, candidate, &violated) &&
          violated == invariant) {
        trace = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return trace;
}

// --- Topologies -----------------------------------------------------------

const std::vector<FailoverTopology>& all_failover_topologies() {
  static const std::vector<FailoverTopology> topologies = [] {
    std::vector<FailoverTopology> out;

    FailoverTopology sync;
    sync.name = "failover-sync-fenced";
    sync.summary =
        "3-replica sync group, fencing on: one crash/restart/promotion "
        "cycle can neither split-brain nor over-confirm";
    out.push_back(sync);

    FailoverTopology partition = sync;
    partition.name = "failover-sync-partition";
    partition.summary =
        "sync group with a partitionable ship link: promotion under "
        "false suspicion fences the live-but-unreachable primary";
    partition.allow_partition = true;
    out.push_back(partition);

    FailoverTopology async_tight = sync;
    async_tight.name = "failover-async-tight";
    async_tight.summary =
        "async group, lag bound 2: every grant ships before the next "
        "action, so one failover cycle loses nothing";
    async_tight.mode = ReplicationMode::kAsync;
    out.push_back(async_tight);

    FailoverTopology async_window = sync;
    async_window.name = "failover-async-losswindow";
    async_window.summary =
        "DEMO async, lag bound 8: a grant confirms before it ships — a "
        "primary kill inside the window loses it and the successor "
        "re-grants (the loss bench/ext_failover measures; sync refuses "
        "this by construction)";
    async_window.mode = ReplicationMode::kAsync;
    async_window.async_lag = 8;
    async_window.expect_violation = true;
    async_window.expected_invariant = "confirmed-exceeds-capacity";
    out.push_back(async_window);

    FailoverTopology demo = sync;
    demo.name = "failover-nofence-splitbrain";
    demo.summary =
        "DEMO fencing off: a deposed primary restarts still believing it "
        "serves — two live primaries (the bug epoch fencing fixes)";
    demo.fencing = false;
    demo.expect_violation = true;
    demo.expected_invariant = "split-brain";
    out.push_back(demo);

    return out;
  }();
  return topologies;
}

const FailoverTopology* find_failover_topology(const std::string& name) {
  for (const FailoverTopology& t : all_failover_topologies())
    if (t.name == name) return &t;
  return nullptr;
}

// --- Trace files ----------------------------------------------------------

namespace {
constexpr const char* kFailoverTraceHeader = "# qres_mc failover-trace v1";
}  // namespace

bool is_failover_trace(const std::string& text) {
  return text.rfind(kFailoverTraceHeader, 0) == 0;
}

std::string format_failover_trace(const FailoverTraceFile& trace) {
  std::ostringstream out;
  out << kFailoverTraceHeader << "\n";
  out << "topology: " << trace.topology << "\n";
  if (trace.expect_violation)
    out << "expect: violation " << trace.expected_invariant << "\n";
  else
    out << "expect: ok\n";
  for (const FailoverAction& action : trace.actions)
    out << "action: " << to_string(action) << "\n";
  return out.str();
}

bool parse_failover_trace(const std::string& text, FailoverTraceFile* out,
                          std::string* error) {
  FailoverTraceFile trace;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr)
      *error = "line " + std::to_string(lineno) + ": " + what;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (!saw_header) {
        if (line != kFailoverTraceHeader) return fail("bad header");
        saw_header = true;
      }
      continue;
    }
    if (!saw_header) return fail("missing header");
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) return fail("expected 'key: value'");
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (key == "topology") {
      trace.topology = value;
    } else if (key == "expect") {
      if (value == "ok") {
        trace.expect_violation = false;
      } else if (value.rfind("violation ", 0) == 0) {
        trace.expect_violation = true;
        trace.expected_invariant = value.substr(10);
      } else {
        return fail("expect must be 'ok' or 'violation <invariant>'");
      }
    } else if (key == "action") {
      FailoverAction action;
      if (!parse_failover_action(value, &action))
        return fail("unparseable action '" + value + "'");
      trace.actions.push_back(action);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_header) return fail("empty trace");
  if (trace.topology.empty()) return fail("missing topology");
  *out = std::move(trace);
  return true;
}

bool run_failover_trace(const FailoverTraceFile& trace, std::string* error) {
  const FailoverTopology* topo = find_failover_topology(trace.topology);
  if (topo == nullptr) {
    if (error != nullptr)
      *error = "unknown failover topology: " + trace.topology;
    return false;
  }
  std::string violated;
  if (!replay_failover(*topo, trace.actions, &violated)) {
    if (error != nullptr) *error = "trace action not enabled when replayed";
    return false;
  }
  if (trace.expect_violation) {
    if (violated != trace.expected_invariant) {
      if (error != nullptr)
        *error = "expected violation '" + trace.expected_invariant +
                 "', got " + (violated.empty() ? "'ok'" : "'" + violated + "'");
      return false;
    }
    return true;
  }
  if (!violated.empty()) {
    if (error != nullptr) *error = "unexpected violation '" + violated + "'";
    return false;
  }
  return true;
}

}  // namespace qres::mc
