// The model checker's world: real production objects driven by a
// controlled scheduler (DESIGN.md §13).
//
// A World owns, per broker process, a real BrokerRegistry + ResourceBroker
// + MemoryJournal + BrokerService — the exact objects the runtime uses —
// plus explicit client state machines and a content-keyed multiset of
// in-flight frames. Nothing inside the world consumes time or randomness:
// every nondeterministic choice (which frame is delivered, dropped or
// duplicated; when a lease expires; when a broker crashes, how much
// journal tail the crash loses, when it restarts; when a client retries,
// renews, tears down, abandons) is an enumerable Action, applied by the
// checker in every relevant order.
//
// Logical time is part of the world and advances only through kExpire:
// firing a broker's earliest lease deadline jumps `now` to it. All other
// actions are instantaneous, which collapses the continuous-time protocol
// into a finite branching structure without losing the orderings that
// matter (expiry-vs-delivery races are exactly the kExpire interleavings).
//
// canonical_key() hashes the behaviorally relevant state — client FSMs,
// frames, broker holdings/leases (times stored relative to `now`), the
// retained journal and the dedup cache — and deliberately excludes the
// absolute clock and the availability history, merging states that can
// only differ in when they happened, not in what can happen next.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/journal.hpp"
#include "broker/registry.hpp"
#include "mc/topology.hpp"
#include "rpc/broker_service.hpp"

namespace qres::mc {

enum class ActionKind : std::uint8_t {
  kStart,           ///< client sends its (re-)reserve request
  kRetry,           ///< client retransmits the in-flight request (same id)
  kGiveUp,          ///< client stops waiting (budget exhausted, no frame left)
  kRenew,           ///< client sends a lease renewal
  kTeardown,        ///< client sends release-all
  kAbandon,         ///< client process crashes silently (no teardown)
  kObserveExpired,  ///< client notices its believed deadline passed
  kDeliver,         ///< network delivers one copy of a frame
  kDrop,            ///< network loses one copy of a frame
  kDup,             ///< network duplicates a frame
  kExpire,          ///< broker's earliest lease deadline fires (advances now)
  kCrash,           ///< broker process crashes (arg = journal tail loss)
  kRestart,         ///< crashed broker process restarts
};

const char* to_string(ActionKind kind) noexcept;

/// One scheduler choice. Identity is content-based (frame actions carry
/// the frame's destination + content hash, never a volatile index), so
/// actions compare equal across worlds — the sleep-set machinery and
/// trace replay both depend on that.
struct Action {
  ActionKind kind{};
  std::int32_t broker = -1;  ///< target broker process (or frame dest)
  std::int32_t client = -1;  ///< acting client (or frame dest client)
  std::int32_t owner = -1;   ///< frame actions: client whose session owns it
  std::int32_t arg = 0;      ///< kCrash: records of journal tail lost
  std::uint64_t request_id = 0;  ///< frame actions: id inside the frame
  std::uint64_t frame_hash = 0;  ///< frame actions: content hash

  friend bool operator==(const Action&, const Action&) = default;
  friend auto operator<=>(const Action&, const Action&) = default;
};

/// Renders an action as one stable trace line ("deliver b0 id 101 h ...").
std::string to_string(const Action& action);

/// True when `a` and `b` commute from any state where both are enabled:
/// neither advances logical time and their footprints (touched broker
/// processes and clients) are disjoint. Static and symmetric — the
/// sleep-set reduction's independence oracle.
bool independent(const Action& a, const Action& b);

class World {
 public:
  World(const Topology& topology, const McConfig& config);

  World(World&&) noexcept = default;
  World& operator=(World&&) noexcept = default;

  /// Deep copy: brokers are copy-assigned into freshly built registries,
  /// journals copied, each clone's broker rebound to its own journal
  /// copy, services rebuilt with the dedup cache restored.
  World clone() const;

  /// Every enabled action, in a deterministic canonical order.
  std::vector<Action> enabled() const;

  /// Applies one action (must be enabled) and re-checks the invariants;
  /// violation() reports the first broken one.
  void apply(const Action& action);

  /// Runs the quiescent-state invariants (no stranded capacity). Call
  /// when enabled() is empty.
  void check_quiescent();

  /// 128-bit canonical state hash (two independent FNV-1a-64 streams).
  std::pair<std::uint64_t, std::uint64_t> canonical_key() const;

  /// Name of the first violated invariant, empty while the world is sound.
  const std::string& violation() const noexcept { return violation_; }

  double now() const noexcept { return now_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,       ///< may (re-)start
    kReserving,  ///< reserve in flight
    kGranted,    ///< believes it holds the reservation
    kRenewing,   ///< renewal in flight
    kReleasing,  ///< final release in flight
    kRelForRereserve,  ///< release in flight, will re-reserve after
    kDone,
    kAborted,  ///< client process crashed
  };

  struct Client {
    Phase phase = Phase::kIdle;
    int retries_left = 0;
    int dups_left = 0;
    int renews_left = 0;
    int rereserves_left = 0;
    bool started = false;
    bool awaiting = false;          ///< a request of ours is unanswered
    std::uint64_t seq = 0;          ///< per-session request counter
    std::uint64_t inflight_request = 0;
    std::vector<std::uint8_t> inflight_bytes;  ///< for retransmission
    bool holds = false;             ///< believes the reservation is live
    double believed_deadline = 0.0; ///< +inf = permanent / none
  };

  /// One copy-class of in-flight frames: identical bytes headed to the
  /// same destination are one entry with a count (delivering any copy is
  /// the same transition, so separate entries would only split states).
  struct Frame {
    std::vector<std::uint8_t> bytes;
    std::uint64_t hash = 0;  ///< content + destination hash
    int to_broker = -1;
    int to_client = -1;
    int owner = -1;  ///< client whose session this exchange belongs to
    std::uint32_t session = 0;
    std::uint64_t request_id = 0;
    int count = 1;
  };

  struct Proc {
    std::unique_ptr<BrokerRegistry> registry;
    std::unique_ptr<MemoryJournal> journal;  ///< null when not journaled
    std::unique_ptr<rpc::BrokerService> service;
    int crashes_left = 0;
  };

  ResourceBroker& leaf(int proc) const;
  bool proc_up(int proc) const;
  void add_frame(std::vector<std::uint8_t> bytes, int to_broker,
                 int to_client, int owner);
  void send_request(int client, const std::vector<std::uint8_t>& bytes,
                    std::uint64_t request_id);
  void deliver_to_broker(const Action& action);
  void deliver_to_client(const Action& action);
  void resolve_failure(int client);
  int frame_index(const Action& action) const;
  void check_invariants();

  const Topology* topo_;
  McConfig cfg_;
  double now_ = 0.0;
  std::vector<Proc> procs_;
  std::vector<Client> clients_;
  std::vector<Frame> frames_;
  std::string violation_;
};

}  // namespace qres::mc
