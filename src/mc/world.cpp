#include "mc/world.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <utility>

#include "rpc/wire.hpp"
#include "util/assert.hpp"

namespace qres::mc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Reservation amounts are sums of client-spec doubles; exact in IEEE
/// for the topologies we ship, but the invariants tolerate rounding.
constexpr double kEps = 1e-9;

/// Request ids are session-scoped: session*100 + per-session sequence.
/// The session is recoverable from any id, and ids from different
/// clients never collide — which is what lets frame actions commute.
std::uint64_t make_request_id(std::uint32_t session, std::uint64_t seq) {
  QRES_ENSURE(seq < 100, "mc: per-session request budget exceeded");
  return static_cast<std::uint64_t>(session) * 100 + seq;
}

std::uint32_t session_of_request(std::uint64_t request_id) {
  return static_cast<std::uint32_t>(request_id / 100);
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t hash) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Canonical-state byte stream feeding the two key hashes.
struct KeyStream {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back((v >> (8 * i)) & 0xff);
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Absolute simulation times enter the key relative to `now`, so two
  /// worlds that differ only in when they happened merge.
  void rel_time(double t, double now) { f64(std::isinf(t) ? t : t - now); }
};

void hex_append(std::string* out, std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out->push_back(digits[(v >> shift) & 0xf]);
}

}  // namespace

const char* to_string(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kStart: return "start";
    case ActionKind::kRetry: return "retry";
    case ActionKind::kGiveUp: return "giveup";
    case ActionKind::kRenew: return "renew";
    case ActionKind::kTeardown: return "teardown";
    case ActionKind::kAbandon: return "abandon";
    case ActionKind::kObserveExpired: return "observe-expired";
    case ActionKind::kDeliver: return "deliver";
    case ActionKind::kDrop: return "drop";
    case ActionKind::kDup: return "dup";
    case ActionKind::kExpire: return "expire";
    case ActionKind::kCrash: return "crash";
    case ActionKind::kRestart: return "restart";
  }
  return "?";
}

std::string to_string(const Action& action) {
  std::string out = to_string(action.kind);
  switch (action.kind) {
    case ActionKind::kStart:
    case ActionKind::kRetry:
    case ActionKind::kGiveUp:
    case ActionKind::kRenew:
    case ActionKind::kTeardown:
    case ActionKind::kAbandon:
    case ActionKind::kObserveExpired:
      out += " c" + std::to_string(action.client);
      break;
    case ActionKind::kDeliver:
    case ActionKind::kDrop:
    case ActionKind::kDup:
      out += action.broker >= 0 ? " b" + std::to_string(action.broker)
                                : " c" + std::to_string(action.client);
      out += " id " + std::to_string(action.request_id) + " h ";
      hex_append(&out, action.frame_hash);
      break;
    case ActionKind::kExpire:
    case ActionKind::kRestart:
      out += " b" + std::to_string(action.broker);
      break;
    case ActionKind::kCrash:
      out += " b" + std::to_string(action.broker) + " loss " +
             std::to_string(action.arg);
      break;
  }
  return out;
}

namespace {

/// Footprint of an action: broker processes are encoded as their index,
/// clients as 100 + index. Conservative — anything an action might read
/// or write is included.
void footprint(const Action& a, int out[3], int* n) {
  *n = 0;
  switch (a.kind) {
    case ActionKind::kStart:
    case ActionKind::kRetry:
    case ActionKind::kGiveUp:
    case ActionKind::kRenew:
    case ActionKind::kTeardown:
    case ActionKind::kAbandon:
    case ActionKind::kObserveExpired:
      out[(*n)++] = 100 + a.client;
      break;
    case ActionKind::kDeliver:
    case ActionKind::kDrop:
    case ActionKind::kDup:
      out[(*n)++] = 100 + a.owner;
      if (a.broker >= 0) out[(*n)++] = a.broker;
      if (a.client >= 0 && a.client != a.owner) out[(*n)++] = 100 + a.client;
      break;
    case ActionKind::kExpire:  // time advancer: never independent
      break;
    case ActionKind::kCrash:
    case ActionKind::kRestart:
      out[(*n)++] = a.broker;
      break;
  }
}

}  // namespace

bool independent(const Action& a, const Action& b) {
  // kExpire advances the shared logical clock, so it is dependent with
  // everything (time-gated enabledness would otherwise be missed).
  if (a.kind == ActionKind::kExpire || b.kind == ActionKind::kExpire)
    return false;
  int fa[3];
  int fb[3];
  int na = 0;
  int nb = 0;
  footprint(a, fa, &na);
  footprint(b, fb, &nb);
  for (int i = 0; i < na; ++i)
    for (int j = 0; j < nb; ++j)
      if (fa[i] == fb[j]) return false;
  return true;
}

// ---------------------------------------------------------------------------
// World construction and cloning.

World::World(const Topology& topology, const McConfig& config)
    : topo_(&topology), cfg_(config) {
  procs_.reserve(topology.brokers.size());
  for (const BrokerSpec& spec : topology.brokers) {
    Proc proc;
    proc.registry = std::make_unique<BrokerRegistry>();
    const ResourceId id = proc.registry->add_resource(
        spec.name, ResourceKind::kCpu, HostId{0}, spec.capacity);
    if (spec.journaled) {
      proc.journal = std::make_unique<MemoryJournal>(spec.compact);
      proc.registry->leaf(id)->attach_journal(proc.journal.get(),
                                              spec.snapshot_every, 0.0);
    }
    rpc::BrokerService::Config svc;
    svc.down_check_before_dedup = cfg_.down_check_before_dedup;
    proc.service =
        std::make_unique<rpc::BrokerService>(proc.registry.get(), svc);
    proc.crashes_left = spec.max_crashes;
    procs_.push_back(std::move(proc));
  }
  clients_.reserve(topology.clients.size());
  for (const ClientSpec& spec : topology.clients) {
    QRES_REQUIRE(spec.broker >= 0 &&
                     spec.broker < static_cast<int>(procs_.size()),
                 "mc: client targets a nonexistent broker");
    Client client;
    client.retries_left = spec.max_retries;
    client.dups_left = spec.max_dups;
    client.renews_left = spec.max_renews;
    client.rereserves_left = spec.max_rereserves;
    client.believed_deadline = kInf;
    clients_.push_back(client);
  }
}

ResourceBroker& World::leaf(int proc) const {
  ResourceBroker* broker = procs_[proc].registry->leaf(ResourceId{0});
  QRES_ENSURE(broker != nullptr, "mc: proc without a leaf broker");
  return *broker;
}

bool World::proc_up(int proc) const { return leaf(proc).up(); }

World World::clone() const {
  World copy(*topo_, cfg_);
  copy.now_ = now_;
  copy.clients_ = clients_;
  copy.frames_ = frames_;
  copy.violation_ = violation_;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    // Journal first (so the rebind below lands on the copied contents),
    // then the broker value, then re-point its sink at the copy.
    if (procs_[i].journal)
      *copy.procs_[i].journal = *procs_[i].journal;
    ResourceBroker& dst = copy.leaf(static_cast<int>(i));
    dst = leaf(static_cast<int>(i));
    dst.rebind_journal(copy.procs_[i].journal.get());
    copy.procs_[i].service->restore_dedup(procs_[i].service->dedup_state());
    copy.procs_[i].crashes_left = procs_[i].crashes_left;
  }
  return copy;
}

// ---------------------------------------------------------------------------
// Frames.

void World::add_frame(std::vector<std::uint8_t> bytes, int to_broker,
                      int to_client, int owner) {
  const rpc::Decoded decoded = rpc::decode_frame(bytes);
  QRES_ENSURE(decoded.ok(), "mc: undecodable frame entering flight");
  const std::uint64_t request_id = rpc::request_id_of(decoded.message);
  std::uint64_t hash = fnv1a(bytes.data(), bytes.size(), 14695981039346656037ull);
  hash ^= (static_cast<std::uint64_t>(to_broker + 1) << 1) ^
          (static_cast<std::uint64_t>(to_client + 1) << 33);
  for (Frame& frame : frames_) {
    if (frame.hash == hash && frame.to_broker == to_broker &&
        frame.to_client == to_client && frame.bytes == bytes) {
      ++frame.count;
      return;
    }
  }
  Frame frame;
  frame.bytes = std::move(bytes);
  frame.hash = hash;
  frame.to_broker = to_broker;
  frame.to_client = to_client;
  frame.owner = owner;
  frame.session = session_of_request(request_id);
  frame.request_id = request_id;
  frames_.push_back(std::move(frame));
}

int World::frame_index(const Action& action) const {
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.hash == action.frame_hash && f.to_broker == action.broker &&
        f.to_client == action.client)
      return static_cast<int>(i);
  }
  return -1;
}

void World::send_request(int client, const std::vector<std::uint8_t>& bytes,
                         std::uint64_t request_id) {
  Client& c = clients_[client];
  c.awaiting = true;
  c.inflight_request = request_id;
  c.inflight_bytes = bytes;
  add_frame(bytes, topo_->clients[client].broker, -1, client);
}

// ---------------------------------------------------------------------------
// Enabled actions (deterministic canonical order).

std::vector<Action> World::enabled() const {
  std::vector<Action> actions;
  if (!violation_.empty()) return actions;

  for (int i = 0; i < static_cast<int>(clients_.size()); ++i) {
    const Client& c = clients_[i];
    const ClientSpec& spec = topo_->clients[i];
    const auto client_action = [&](ActionKind kind) {
      Action a;
      a.kind = kind;
      a.client = i;
      actions.push_back(a);
    };
    if (c.phase == Phase::kIdle) client_action(ActionKind::kStart);
    if (c.awaiting && c.retries_left > 0) client_action(ActionKind::kRetry);
    if (c.awaiting && c.retries_left == 0) {
      bool frame_pending = false;
      for (const Frame& f : frames_)
        if (f.request_id == c.inflight_request) frame_pending = true;
      if (!frame_pending) client_action(ActionKind::kGiveUp);
    }
    if (c.phase == Phase::kGranted && !c.awaiting) {
      if (c.renews_left > 0 && spec.lease > 0.0)
        client_action(ActionKind::kRenew);
      client_action(ActionKind::kTeardown);
      if (spec.lease > 0.0 && c.rereserves_left > 0 &&
          c.believed_deadline <= now_)
        client_action(ActionKind::kObserveExpired);
      if (spec.may_abandon) client_action(ActionKind::kAbandon);
    }
  }

  // Frames in canonical order, independent of insertion history.
  std::vector<int> order(frames_.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Frame& fa = frames_[a];
    const Frame& fb = frames_[b];
    if (fa.to_broker != fb.to_broker) return fa.to_broker < fb.to_broker;
    if (fa.to_client != fb.to_client) return fa.to_client < fb.to_client;
    if (fa.request_id != fb.request_id) return fa.request_id < fb.request_id;
    return fa.hash < fb.hash;
  });
  for (const int idx : order) {
    const Frame& f = frames_[idx];
    Action a;
    a.broker = f.to_broker;
    a.client = f.to_client;
    a.owner = f.owner;
    a.request_id = f.request_id;
    a.frame_hash = f.hash;
    // A request cannot reach a dead colocated process: with the cache in
    // the broker process, delivery-while-down is indistinguishable from a
    // drop, so only the drop is enabled. A surviving frontend
    // (dedup_survives_crash) answers even while the broker is down.
    const bool deliverable = f.to_client >= 0 || proc_up(f.to_broker) ||
                             cfg_.dedup_survives_crash;
    if (deliverable) {
      a.kind = ActionKind::kDeliver;
      actions.push_back(a);
    }
    // Fairness: never destroy a permanent client's last path to the
    // truth. When a retry-exhausted, lease-less client's active exchange
    // is down to one in-flight copy (request or reply — a request
    // redelivery regenerates the reply via the dedup cache), and the
    // broker-side holding disagrees with where giving up will leave the
    // client (a granted reserve it never learned of, an unexecuted
    // release), dropping that copy forces a strand no protocol action can
    // undo. Those schedules — the network eating literally every copy —
    // are excluded; leased sessions stay fully droppable because expiry
    // reclaims server-side regardless.
    const Client& oc = clients_[f.owner];
    const ClientSpec& ocs = topo_->clients[f.owner];
    bool droppable = oc.retries_left > 0 || ocs.lease > 0.0 ||
                     !oc.awaiting || f.request_id != oc.inflight_request;
    if (!droppable) {
      int copies = 0;
      for (const Frame& other : frames_)
        if (other.request_id == f.request_id) copies += other.count;
      // While the broker is down its in-memory holdings read zero, but
      // restart will restore the journaled truth — consulting held_by()
      // there would let the network eat a release whose session the
      // restarted broker still holds (a strand). Down broker: keep the
      // last copy alive.
      droppable =
          copies > 1 ||
          (proc_up(ocs.broker) &&
           leaf(ocs.broker).held_by(SessionId{ocs.session}) <= kEps);
    }
    if (droppable) {
      a.kind = ActionKind::kDrop;
      actions.push_back(a);
    }
    if (clients_[f.owner].dups_left > 0) {
      a.kind = ActionKind::kDup;
      actions.push_back(a);
    }
  }

  for (int b = 0; b < static_cast<int>(procs_.size()); ++b) {
    const BrokerSpec& spec = topo_->brokers[b];
    if (proc_up(b)) {
      double earliest = kInf;
      for (const ClientSpec& cs : topo_->clients)
        earliest =
            std::min(earliest, leaf(b).lease_deadline(SessionId{cs.session}));
      if (std::isfinite(earliest)) {
        Action a;
        a.kind = ActionKind::kExpire;
        a.broker = b;
        actions.push_back(a);
      }
      if (procs_[b].crashes_left > 0) {
        const std::size_t max_loss =
            procs_[b].journal ? spec.max_tail_loss : 0;
        for (std::size_t k = 0; k <= max_loss; ++k) {
          Action a;
          a.kind = ActionKind::kCrash;
          a.broker = b;
          a.arg = static_cast<std::int32_t>(k);
          actions.push_back(a);
        }
      }
    } else {
      Action a;
      a.kind = ActionKind::kRestart;
      a.broker = b;
      actions.push_back(a);
    }
  }
  return actions;
}

// ---------------------------------------------------------------------------
// Applying actions.

void World::apply(const Action& action) {
  QRES_REQUIRE(violation_.empty(), "mc: apply after a violation");
  const int ci = action.client >= 0 ? action.client : action.owner;
  switch (action.kind) {
    case ActionKind::kStart: {
      Client& c = clients_[ci];
      const ClientSpec& spec = topo_->clients[ci];
      const std::uint64_t rid = make_request_id(spec.session, ++c.seq);
      rpc::ReserveRequest req;
      req.header = {rid, spec.session, kInf};
      req.resource = 0;
      req.amount = spec.amount;
      req.lease = spec.lease;
      c.phase = Phase::kReserving;
      c.started = true;
      send_request(ci, rpc::encode(req), rid);
      break;
    }
    case ActionKind::kRetry: {
      Client& c = clients_[ci];
      --c.retries_left;
      add_frame(c.inflight_bytes, topo_->clients[ci].broker, -1, ci);
      break;
    }
    case ActionKind::kGiveUp:
      resolve_failure(ci);
      break;
    case ActionKind::kRenew: {
      Client& c = clients_[ci];
      const ClientSpec& spec = topo_->clients[ci];
      --c.renews_left;
      const std::uint64_t rid = make_request_id(spec.session, ++c.seq);
      rpc::RenewRequest req;
      req.header = {rid, spec.session, kInf};
      req.resource = 0;
      req.lease = spec.lease;
      c.phase = Phase::kRenewing;
      send_request(ci, rpc::encode(req), rid);
      break;
    }
    case ActionKind::kTeardown: {
      Client& c = clients_[ci];
      const ClientSpec& spec = topo_->clients[ci];
      const std::uint64_t rid = make_request_id(spec.session, ++c.seq);
      rpc::ReleaseRequest req;
      req.header = {rid, spec.session, kInf};
      req.resource = 0;
      req.release_all = 1;
      c.phase = Phase::kReleasing;
      send_request(ci, rpc::encode(req), rid);
      break;
    }
    case ActionKind::kAbandon:
      clients_[ci].phase = Phase::kAborted;
      break;
    case ActionKind::kObserveExpired: {
      Client& c = clients_[ci];
      const ClientSpec& spec = topo_->clients[ci];
      --c.rereserves_left;
      c.holds = false;
      c.believed_deadline = kInf;
      if (cfg_.rereserve_releases_first) {
        const std::uint64_t rid = make_request_id(spec.session, ++c.seq);
        rpc::ReleaseRequest req;
        req.header = {rid, spec.session, kInf};
        req.resource = 0;
        req.release_all = 1;
        c.phase = Phase::kRelForRereserve;
        send_request(ci, rpc::encode(req), rid);
      } else {
        // The buggy client: assumes the broker side is gone too and goes
        // straight to a fresh reserve. If the broker still holds (restart
        // grace pushed the server-side deadline out), the grants stack.
        c.phase = Phase::kIdle;
      }
      break;
    }
    case ActionKind::kDeliver:
      if (action.broker >= 0)
        deliver_to_broker(action);
      else
        deliver_to_client(action);
      break;
    case ActionKind::kDrop: {
      const int idx = frame_index(action);
      QRES_REQUIRE(idx >= 0, "mc: drop of an unknown frame");
      if (--frames_[idx].count == 0)
        frames_.erase(frames_.begin() + idx);
      break;
    }
    case ActionKind::kDup: {
      const int idx = frame_index(action);
      QRES_REQUIRE(idx >= 0, "mc: dup of an unknown frame");
      --clients_[frames_[idx].owner].dups_left;
      ++frames_[idx].count;
      break;
    }
    case ActionKind::kExpire: {
      double earliest = kInf;
      for (const ClientSpec& cs : topo_->clients)
        earliest = std::min(
            earliest, leaf(action.broker).lease_deadline(SessionId{cs.session}));
      QRES_REQUIRE(std::isfinite(earliest), "mc: expire with no lease due");
      now_ = std::max(now_, earliest);
      leaf(action.broker).expire_due(now_, nullptr);
      break;
    }
    case ActionKind::kCrash: {
      Proc& proc = procs_[action.broker];
      --proc.crashes_left;
      leaf(action.broker).crash(now_);
      if (proc.journal)
        proc.journal->drop_tail(static_cast<std::size_t>(action.arg));
      if (!cfg_.dedup_survives_crash)
        proc.service->forget_dedup(ResourceId{0});
      break;
    }
    case ActionKind::kRestart: {
      Proc& proc = procs_[action.broker];
      leaf(action.broker).restart(now_,
                                  topo_->brokers[action.broker].restart_grace);
      if (proc.journal && cfg_.rebuild_dedup_on_restart)
        proc.service->rebuild_dedup(ResourceId{0});
      break;
    }
  }
  check_invariants();
}

void World::deliver_to_broker(const Action& action) {
  const int idx = frame_index(action);
  QRES_REQUIRE(idx >= 0, "mc: deliver of an unknown frame");
  const std::vector<std::uint8_t> bytes = frames_[idx].bytes;
  if (--frames_[idx].count == 0) frames_.erase(frames_.begin() + idx);
  const bool was_up = proc_up(action.broker);
  const std::uint64_t dup_before =
      procs_[action.broker].service->stats().duplicates;
  std::vector<std::vector<std::uint8_t>> replies;
  procs_[action.broker].service->handle_frame(bytes, now_, &replies);
  // A cached reply describes an execution that journal recovery may
  // still lose; serving it while the broker is down promises state
  // nobody can guarantee. The fixed ordering (down-check at ingress,
  // before the dedup lookup) makes this unreachable.
  if (!was_up &&
      procs_[action.broker].service->stats().duplicates > dup_before &&
      violation_.empty())
    violation_ = "no-stale-dedup-replay";
  for (std::vector<std::uint8_t>& reply : replies) {
    const rpc::Decoded decoded = rpc::decode_frame(reply);
    QRES_ENSURE(decoded.ok(), "mc: service produced an undecodable reply");
    const std::uint32_t session =
        session_of_request(rpc::request_id_of(decoded.message));
    int target = -1;
    for (int i = 0; i < static_cast<int>(topo_->clients.size()); ++i)
      if (topo_->clients[i].session == session) target = i;
    QRES_ENSURE(target >= 0, "mc: reply for an unknown session");
    add_frame(std::move(reply), -1, target, target);
  }
}

void World::deliver_to_client(const Action& action) {
  const int idx = frame_index(action);
  QRES_REQUIRE(idx >= 0, "mc: deliver of an unknown frame");
  const std::vector<std::uint8_t> bytes = frames_[idx].bytes;
  if (--frames_[idx].count == 0) frames_.erase(frames_.begin() + idx);

  Client& c = clients_[action.client];
  const ClientSpec& spec = topo_->clients[action.client];
  if (c.phase == Phase::kDone || c.phase == Phase::kAborted) return;
  const rpc::Decoded decoded = rpc::decode_frame(bytes);
  QRES_ENSURE(decoded.ok(), "mc: undecodable reply delivered");
  if (rpc::request_id_of(decoded.message) != c.inflight_request)
    return;  // duplicate or superseded reply: ignored

  const auto settle = [&] {
    c.awaiting = false;
    c.inflight_request = 0;
    c.inflight_bytes.clear();
  };
  // Retryable transport-level failures keep the exchange open while the
  // retry budget lasts (the at-least-once shim's behavior); once the
  // budget is gone the failure resolves the client's phase.
  const auto transport_failure = [&] {
    if (c.retries_left == 0) resolve_failure(action.client);
  };

  if (const auto* r = std::get_if<rpc::ReserveReply>(&decoded.message)) {
    if (r->code == rpc::RpcCode::kOk) {
      settle();
      c.phase = Phase::kGranted;
      c.holds = true;
      c.believed_deadline =
          spec.lease <= 0.0 ? kInf
          : cfg_.client_trusts_reply_deadline ? r->lease_deadline
                                              : now_ + spec.lease;
    } else if (r->code == rpc::RpcCode::kAdmissionReject) {
      settle();
      c.phase = Phase::kDone;
    } else {
      transport_failure();
    }
  } else if (const auto* n = std::get_if<rpc::RenewReply>(&decoded.message)) {
    if (n->code == rpc::RpcCode::kOk) {
      settle();
      if (n->renewed != 0) {
        c.phase = Phase::kGranted;
        c.believed_deadline = cfg_.client_trusts_reply_deadline
                                  ? n->lease_deadline
                                  : now_ + spec.lease;
      } else {
        // The broker no longer holds anything leased for us: the lease
        // lapsed. Re-reserve if budgeted, otherwise finish.
        c.holds = false;
        c.believed_deadline = kInf;
        if (c.rereserves_left > 0) {
          --c.rereserves_left;
          c.phase = Phase::kIdle;
        } else {
          c.phase = Phase::kDone;
        }
      }
    } else {
      transport_failure();
    }
  } else if (const auto* l = std::get_if<rpc::ReleaseReply>(&decoded.message)) {
    if (l->code == rpc::RpcCode::kOk) {
      settle();
      c.holds = false;
      c.believed_deadline = kInf;
      c.phase = c.phase == Phase::kRelForRereserve ? Phase::kIdle : Phase::kDone;
    } else {
      transport_failure();
    }
  } else {
    QRES_ENSURE(false, "mc: client received an unexpected reply type");
  }
}

void World::resolve_failure(int client) {
  Client& c = clients_[client];
  c.awaiting = false;
  c.inflight_request = 0;
  c.inflight_bytes.clear();
  switch (c.phase) {
    case Phase::kReserving:
      c.phase = Phase::kDone;  // nothing believed granted
      break;
    case Phase::kRenewing:
      c.phase = Phase::kGranted;  // keeps its old belief; expiry will tell
      break;
    case Phase::kReleasing:
    case Phase::kRelForRereserve:
      // Best-effort release failed; leased holdings are reclaimed by
      // expiry, so the client is done either way.
      c.holds = false;
      c.believed_deadline = kInf;
      c.phase = Phase::kDone;
      break;
    case Phase::kIdle:
    case Phase::kGranted:
    case Phase::kDone:
    case Phase::kAborted:
      QRES_ENSURE(false, "mc: failure resolution in a settled phase");
  }
}

// ---------------------------------------------------------------------------
// Invariants.

void World::check_invariants() {
  if (!violation_.empty()) return;
  for (int b = 0; b < static_cast<int>(procs_.size()); ++b) {
    ResourceBroker& broker = leaf(b);
    if (!broker.up()) continue;
    const BrokerSpec& spec = topo_->brokers[b];
    double sum = 0.0;
    for (const ClientSpec& cs : topo_->clients) {
      if (cs.broker != b) continue;
      const double held = broker.held_by(SessionId{cs.session});
      sum += held;
      if (held > cs.amount + kEps) {
        violation_ = "no-double-grant";
        return;
      }
    }
    if (std::abs(broker.reserved() - sum) > kEps ||
        broker.reserved() > spec.capacity + kEps) {
      violation_ = "conservation";
      return;
    }
    if (procs_[b].journal) {
      const ResourceBroker recovered =
          ResourceBroker::recover(procs_[b].journal->load());
      if (to_line(recovered.snapshot(now_)) != to_line(broker.snapshot(now_))) {
        violation_ = "recovery-bit-identity";
        return;
      }
    }
  }
  for (int i = 0; i < static_cast<int>(clients_.size()); ++i) {
    const Client& c = clients_[i];
    const ClientSpec& cs = topo_->clients[i];
    const BrokerSpec& bs = topo_->brokers[cs.broker];
    // A client whose believed deadline is still in the future must be
    // covered by a live broker-side holding. Only checkable when crashes
    // cannot legitimately lose state (journaled, lossless tail), and only
    // while the client still claims the holding — once it has sent a
    // release (kReleasing/kRelForRereserve) the broker-side holding is
    // legitimately gone before the reply arrives.
    const bool checkable =
        (bs.max_crashes == 0 || bs.journaled) && bs.max_tail_loss == 0;
    const bool claims =
        c.phase == Phase::kGranted || c.phase == Phase::kRenewing;
    if (c.holds && claims && c.believed_deadline > now_ && checkable &&
        proc_up(cs.broker) &&
        leaf(cs.broker).held_by(SessionId{cs.session}) + kEps < cs.amount) {
      violation_ = "no-phantom-grant";
      return;
    }
  }
}

void World::check_quiescent() {
  if (!violation_.empty() || topo_->allow_stranded) return;
  for (int b = 0; b < static_cast<int>(procs_.size()); ++b) {
    if (proc_up(b) && leaf(b).reserved() > kEps) {
      violation_ = "no-stranded";
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical key.

std::pair<std::uint64_t, std::uint64_t> World::canonical_key() const {
  KeyStream s;
  // Canonical form for frame/cached-reply bytes: replies embed the
  // broker's *absolute* lease deadline, so hashing raw bytes would split
  // time-shifted but behaviorally identical worlds. Decode and hash the
  // fields with deadlines made now-relative instead; anything else (the
  // requests the world itself builds are deadline-free) hashes raw.
  const auto canon_bytes = [&](const std::vector<std::uint8_t>& bytes) {
    const rpc::Decoded decoded = rpc::decode_frame(bytes);
    if (decoded.ok()) {
      if (const auto* r = std::get_if<rpc::ReserveReply>(&decoded.message)) {
        s.u8(1);
        s.u64(r->request_id);
        s.u8(static_cast<std::uint8_t>(r->code));
        s.f64(r->available_after);
        s.rel_time(r->lease_deadline, now_);
        return;
      }
      if (const auto* r = std::get_if<rpc::RenewReply>(&decoded.message)) {
        s.u8(2);
        s.u64(r->request_id);
        s.u8(static_cast<std::uint8_t>(r->code));
        s.u8(r->renewed);
        s.rel_time(r->lease_deadline, now_);
        return;
      }
    }
    s.u8(0);
    s.u64(fnv1a(bytes.data(), bytes.size(), 14695981039346656037ull));
  };
  // Request ids that can still reach broker `b`: a request frame in
  // flight, or a client that can still retransmit. A dedup entry (or
  // journaled reply record) for any other id is behaviorally inert — no
  // future action can hit it — and hashing it would keep behaviorally
  // merged states apart forever.
  const auto live_ids = [&](int b) {
    std::set<std::uint64_t> live;
    for (const Frame& f : frames_)
      if (f.to_broker == b && f.to_client < 0) live.insert(f.request_id);
    for (std::size_t i = 0; i < clients_.size(); ++i)
      if (topo_->clients[i].broker == b && clients_[i].awaiting &&
          clients_[i].retries_left > 0)
        live.insert(clients_[i].inflight_request);
    return live;
  };
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const Client& c = clients_[i];
    s.u8(static_cast<std::uint8_t>(c.phase));
    s.u8(static_cast<std::uint8_t>(c.retries_left));
    s.u8(static_cast<std::uint8_t>(c.dups_left));
    s.u8(static_cast<std::uint8_t>(c.renews_left));
    s.u8(static_cast<std::uint8_t>(c.rereserves_left));
    s.u8(c.awaiting ? 1 : 0);
    s.u8(c.holds ? 1 : 0);
    s.u64(c.seq);
    s.u64(c.inflight_request);
    s.rel_time(c.believed_deadline, now_);
    s.u64(fnv1a(c.inflight_bytes.data(), c.inflight_bytes.size(),
                14695981039346656037ull));
  }
  // Frames in the same canonical order enabled() uses.
  std::vector<int> order(frames_.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Frame& fa = frames_[a];
    const Frame& fb = frames_[b];
    if (fa.to_broker != fb.to_broker) return fa.to_broker < fb.to_broker;
    if (fa.to_client != fb.to_client) return fa.to_client < fb.to_client;
    if (fa.request_id != fb.request_id) return fa.request_id < fb.request_id;
    return fa.hash < fb.hash;
  });
  for (const int idx : order) {
    const Frame& f = frames_[idx];
    s.u64(static_cast<std::uint64_t>(f.to_broker + 1) |
          (static_cast<std::uint64_t>(f.to_client + 1) << 16));
    canon_bytes(f.bytes);
    s.u64(static_cast<std::uint64_t>(f.count));
  }
  for (int b = 0; b < static_cast<int>(procs_.size()); ++b) {
    const ResourceBroker& broker = leaf(b);
    const std::set<std::uint64_t> live = live_ids(b);
    s.u8(broker.up() ? 1 : 0);
    s.u8(static_cast<std::uint8_t>(procs_[b].crashes_left));
    s.f64(broker.reserved());
    for (const ClientSpec& cs : topo_->clients) {
      s.f64(broker.held_by(SessionId{cs.session}));
      s.rel_time(broker.lease_deadline(SessionId{cs.session}), now_);
    }
    // The journal is behaviorally inert once no crash can consume it (no
    // crash budget left and the process is up): recovery can never be
    // invoked again, and bit-identity — once established — is preserved
    // inductively by every append. Hashing it then would split states
    // that behave identically (absolute record times, interleaving
    // noise), exploding the visited set for nothing.
    if (procs_[b].journal &&
        (procs_[b].crashes_left > 0 || !broker.up())) {
      for (const JournalRecord& rec : procs_[b].journal->records()) {
        // Reply records for dead ids would be resurrected by a rebuild
        // but can never be hit again — inert, skip them.
        if (rec.op == JournalOp::kReplyCache && !live.contains(rec.request_id))
          continue;
        s.u8(static_cast<std::uint8_t>(rec.op));
        s.rel_time(rec.time, now_);
        s.u64(rec.session.value());
        s.f64(rec.amount);
        s.f64(rec.lease);
        s.u64(rec.request_id);
        s.u8(rec.grouped ? 1 : 0);
        if (rec.op == JournalOp::kReplyCache)
          canon_bytes(rec.reply);
        if (rec.op == JournalOp::kSnapshot) {
          s.f64(rec.reserved);
          for (const auto& [session, amount] : rec.holdings) {
            s.u64(session);
            s.f64(amount);
          }
          for (const auto& [session, deadline] : rec.lease_deadlines) {
            s.u64(session);
            s.rel_time(deadline, now_);
          }
        }
      }
    }
    const rpc::BrokerService::DedupState dedup =
        procs_[b].service->dedup_state();
    for (const auto& [id, entry] : dedup.entries) {
      if (!live.contains(id)) continue;
      s.u64(id);
      canon_bytes(entry.bytes);
    }
  }
  const std::uint64_t h1 =
      fnv1a(s.bytes.data(), s.bytes.size(), 14695981039346656037ull);
  const std::uint64_t h2 =
      fnv1a(s.bytes.data(), s.bytes.size(), 0x9e3779b97f4a7c15ull);
  return {h1, h2};
}

}  // namespace qres::mc
