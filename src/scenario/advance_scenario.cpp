#include "scenario/advance_scenario.hpp"

#include <string>

#include "scenario/paper_scenario.hpp"
#include "util/assert.hpp"

namespace qres {

int AdvanceScenario::template_index(int service, int domain) const {
  QRES_REQUIRE(service >= 1 && service <= kServers,
               "AdvanceScenario: service out of range");
  QRES_REQUIRE(domain >= 1 && domain <= kDomains,
               "AdvanceScenario: domain out of range");
  return (service - 1) * kDomains + (domain - 1);
}

AdvanceScenario::AdvanceScenario(const AdvanceScenarioConfig& config)
    : config_(config) {
  Rng setup_rng(config_.setup_seed);
  auto draw_capacity = [&] {
    return setup_rng.uniform(config_.capacity_min, config_.capacity_max);
  };

  for (int i = 0; i < kServers; ++i)
    host_res_[i] = registry_.add_resource("h_H" + std::to_string(i + 1),
                                          ResourceKind::kCpu,
                                          draw_capacity());
  for (int i = 0; i < kServers; ++i)
    for (int j = i + 1; j < kServers; ++j) {
      const ResourceId id = registry_.add_resource(
          "net(H" + std::to_string(i + 1) + "-H" + std::to_string(j + 1) +
              ")",
          ResourceKind::kNetworkBandwidth, draw_capacity());
      net_pair_[i][j] = id;
      net_pair_[j][i] = id;
    }
  for (int d = 0; d < kDomains; ++d) {
    const int proxy = PaperScenario::proxy_host_of_domain(d + 1);
    net_access_[d] = registry_.add_resource(
        "net(H" + std::to_string(proxy) + "-D" + std::to_string(d + 1) +
            ")",
        ResourceKind::kNetworkBandwidth, draw_capacity());
  }

  services_.resize(static_cast<std::size_t>(kServers) * kDomains);
  coordinators_.resize(services_.size());
  PaperServiceOptions options;
  options.low_diversity = config_.low_diversity;
  options.requirement_scale = config_.requirement_scale;
  for (int s = 1; s <= kServers; ++s) {
    const QosTableKind kind =
        (s == 1 || s == 4) ? QosTableKind::kTypeA : QosTableKind::kTypeB;
    for (int d = 1; d <= kDomains; ++d) {
      if (PaperScenario::excluded_service(d) == s) continue;
      const int proxy = PaperScenario::proxy_host_of_domain(d);
      if (proxy == s) continue;  // defensive; implied by the exclusion
      ServiceResources resources;
      resources.server_local = host_res_[s - 1];
      resources.proxy_local = host_res_[proxy - 1];
      resources.net_server_proxy = net_pair_[s - 1][proxy - 1];
      resources.net_proxy_client = net_access_[d - 1];
      const int index = template_index(s, d);
      services_[index] = std::make_unique<ServiceDefinition>(
          make_paper_service(
              "S" + std::to_string(s) + "@D" + std::to_string(d), kind,
              resources, HostId{static_cast<std::uint32_t>(s - 1)},
              HostId{static_cast<std::uint32_t>(proxy - 1)},
              HostId{static_cast<std::uint32_t>(kServers + d - 1)},
              options));
      coordinators_[index] = std::make_unique<AdvanceSessionCoordinator>(
          services_[index].get(), paper_service_footprint(resources),
          &registry_);
    }
  }
}

AdvanceSessionCoordinator& AdvanceScenario::coordinator(int service,
                                                        int domain) {
  const int index = template_index(service, domain);
  QRES_REQUIRE(coordinators_[index] != nullptr,
               "AdvanceScenario: service is excluded for this domain");
  return *coordinators_[index];
}

AdvanceScenario::Request AdvanceScenario::sample_request(Rng& rng) {
  const int domain = rng.uniform_int(1, kDomains);
  const int excluded = PaperScenario::excluded_service(domain);
  int service = rng.uniform_int(1, kServers - 1);
  if (service >= excluded) ++service;  // uniform over the 3 allowed
  Request request;
  request.coordinator = &coordinator(service, domain);
  request.traits = sample_traits(config_.workload, rng);
  return request;
}

}  // namespace qres
