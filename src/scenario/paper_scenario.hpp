// The simulated reservation-enabled environment of the paper's §5.1
// (figure 9): four high-performance servers H1..H4 in a full mesh (links
// L1..L6), eight client domains D1..D8 each attached to one server (access
// links L7..L14; domain D_i attaches to H_ceil(i/2)), four deployed
// services S1..S4 with main server H_i for S_i.
//
// A session from a client in domain D_i requests a service type chosen by
// the (dynamically changing) service popularity among the four services
// *except* S_ceil(i/2); its proxy component runs on H_ceil(i/2). Thus every
// session touches: the server's local resource, the proxy's local
// resource, the server-proxy network resource, and the proxy-client
// network resource — all fronted by Resource Brokers, with the network
// resources brokered two-level over the per-link brokers.
#pragma once

#include <array>
#include <memory>

#include "broker/registry.hpp"
#include "core/psi.hpp"
#include "proxy/qos_proxy.hpp"
#include "scenario/qos_tables.hpp"
#include "sim/simulation.hpp"
#include "core/topology.hpp"

namespace qres {

struct PaperScenarioConfig {
  /// Initial resource capacities are drawn U(capacity_min, capacity_max)
  /// (paper: 1000..4000 units) using setup_seed.
  double capacity_min = 1000.0;
  double capacity_max = 4000.0;
  std::uint64_t setup_seed = 42;

  /// The tradeoff policy's averaging window T (paper: 3 TUs).
  double alpha_window = 3.0;
  /// How r_avg is computed (eq. 5): time-weighted history (default) or
  /// the paper's literal report-average (accurate observations only).
  AlphaMode alpha_mode = AlphaMode::kTimeWeighted;
  /// How much availability history brokers keep (bounds the staleness E).
  double history_keep = 64.0;

  /// Figure-13 variant: compress requirement diversity to 3:1.
  bool low_diversity = false;
  /// Contention-index definition used by the planners (ablation).
  PsiKind psi_kind = PsiKind::kRatio;
  /// Uniform multiplier on all base requirements (load calibration knob;
  /// 1.0 reproduces the DESIGN.md tables as-is).
  double requirement_scale = 1.0;

  WorkloadConfig workload;

  /// Service popularity is re-drawn U(popularity_min, popularity_max) per
  /// service every popularity_period TUs ("we dynamically change the
  /// probability that each service is requested").
  double popularity_period = 600.0;
  double popularity_min = 0.2;
  double popularity_max = 1.8;
};

class PaperScenario {
 public:
  static constexpr int kServers = 4;
  static constexpr int kDomains = 8;
  static constexpr int kMeshLinks = 6;
  static constexpr int kLinks = 14;

  explicit PaperScenario(const PaperScenarioConfig& config = {});
  PaperScenario(const PaperScenario&) = delete;
  PaperScenario& operator=(const PaperScenario&) = delete;

  const PaperScenarioConfig& config() const noexcept { return config_; }
  BrokerRegistry& registry() noexcept { return registry_; }
  const Topology& topology() const noexcept { return topology_; }

  /// The proxy host for clients of domain `domain` (1-based): ceil(d/2).
  static int proxy_host_of_domain(int domain);
  /// The service a domain's clients never request: S_ceil(d/2) (1-based).
  static int excluded_service(int domain);

  /// Coordinator for (service type 1..4, client domain 1..8). Requires the
  /// pair to be allowed (service != excluded_service(domain)).
  SessionCoordinator& coordinator(int service, int domain);

  /// Histogram group of a service type: "a" for S1/S4, "b" for S2/S3.
  static const char* table_group(int service);

  /// Host-local resource of server H_i (1-based).
  ResourceId host_resource(int server) const;
  /// Physical link resource L_1..L_14 (1-based, figure-9 numbering).
  ResourceId link_resource(int link) const;

  /// Builds the paper's session source: uniform domain, popularity-driven
  /// service choice (excluding the domain's excluded service), workload
  /// traits per §5.1. The source holds mutable popularity state inside
  /// this scenario; one scenario instance must not be shared by
  /// concurrent simulations.
  SessionSource make_source();

  /// All resource ids in the environment (hosts + links), for inspection.
  std::vector<ResourceId> all_physical_resources() const;

  /// Current per-service popularity weights (S1..S4); re-drawn by the
  /// session source every popularity_period TUs. Exposed for tests.
  const std::array<double, kServers>& service_popularity() const noexcept {
    return popularity_;
  }

 private:
  int template_index(int service, int domain) const;

  PaperScenarioConfig config_;
  BrokerRegistry registry_;
  Topology topology_;

  std::array<HostId, kServers> servers_{};
  std::array<HostId, kDomains> domains_{};
  std::array<ResourceId, kServers> host_res_{};
  std::array<ResourceId, kLinks> link_res_{};
  /// Two-level network resources: mesh pairs (i < j) and access paths.
  std::array<std::array<ResourceId, kServers>, kServers> net_pair_{};
  std::array<ResourceId, kDomains> net_access_{};

  /// One service instance per allowed (service, domain) pair.
  std::vector<std::unique_ptr<ServiceDefinition>> services_;
  std::vector<std::unique_ptr<SessionCoordinator>> coordinators_;

  /// Popularity state used by make_source().
  std::array<double, kServers> popularity_{};
  double next_reroll_ = 0.0;
};

}  // namespace qres
