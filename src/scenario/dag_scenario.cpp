#include "scenario/dag_scenario.hpp"

#include <algorithm>
#include <string>

#include "scenario/paper_scenario.hpp"
#include "util/assert.hpp"

namespace qres {

namespace {

ResourceVector rv1(ResourceId a, double va) {
  ResourceVector v;
  v.set(a, va);
  return v;
}

ResourceVector rv2(ResourceId a, double va, ResourceId b, double vb) {
  ResourceVector v;
  v.set(a, va);
  v.set(b, vb);
  return v;
}

}  // namespace

int DagScenario::template_index(int service, int domain) const {
  QRES_REQUIRE(service >= 1 && service <= kServers,
               "DagScenario: service out of range");
  QRES_REQUIRE(domain >= 1 && domain <= kDomains,
               "DagScenario: domain out of range");
  return (service - 1) * kDomains + (domain - 1);
}

ResourceId DagScenario::net(int host_a, int host_b) {
  const auto key = std::minmax(host_a, host_b);
  auto it = net_res_.find({key.first, key.second});
  if (it != net_res_.end()) return it->second;
  const ResourceId id = registry_.add_resource(
      "net(H" + std::to_string(key.first) + "-H" +
          std::to_string(key.second) + ")",
      ResourceKind::kNetworkBandwidth, HostId{},
      capacity_rng_.uniform(config_.capacity_min, config_.capacity_max));
  net_res_.emplace(std::pair{key.first, key.second}, id);
  return id;
}

ResourceId DagScenario::access(int proxy, int domain) {
  auto it = access_res_.find({proxy, domain});
  if (it != access_res_.end()) return it->second;
  const ResourceId id = registry_.add_resource(
      "net(H" + std::to_string(proxy) + "-D" + std::to_string(domain) + ")",
      ResourceKind::kNetworkBandwidth, HostId{},
      capacity_rng_.uniform(config_.capacity_min, config_.capacity_max));
  access_res_.emplace(std::pair{proxy, domain}, id);
  return id;
}

DagScenario::DagScenario(const DagScenarioConfig& config)
    : config_(config), capacity_rng_(config.setup_seed) {
  for (int i = 0; i < kServers; ++i)
    host_res_[i] = registry_.add_resource(
        "h_H" + std::to_string(i + 1), ResourceKind::kCpu,
        HostId{static_cast<std::uint32_t>(i)},
        capacity_rng_.uniform(config_.capacity_min, config_.capacity_max));

  const QoSSchema raw({"grid", "rate"});
  const QoSSchema merged({"grid", "rate", "layers"});
  auto levels2 = [&](double hi, double lo) {
    return std::vector<QoSVector>{QoSVector(raw, {hi, 10}),
                                  QoSVector(raw, {lo, 10})};
  };
  const std::vector<QoSVector> sink_levels{QoSVector(merged, {512, 10, 3}),
                                           QoSVector(merged, {256, 10, 2}),
                                           QoSVector(merged, {128, 10, 1})};

  services_.resize(static_cast<std::size_t>(kServers) * kDomains);
  coordinators_.resize(services_.size());
  footprints_.resize(services_.size());
  const double scale = config_.requirement_scale;

  for (int s = 1; s <= kServers; ++s) {
    for (int d = 1; d <= kDomains; ++d) {
      if (PaperScenario::excluded_service(d) == s) continue;
      const int p1 = PaperScenario::proxy_host_of_domain(d);
      int p2 = p1 % kServers + 1;
      if (p2 == s) p2 = p2 % kServers + 1;
      QRES_ASSERT(p2 != s && p2 != p1);

      const ResourceId h_s = host_res_[s - 1];
      const ResourceId h_a = host_res_[p1 - 1];
      const ResourceId h_b = host_res_[p2 - 1];
      const ResourceId n_sa = net(s, p1);
      const ResourceId n_sb = net(s, p2);
      const ResourceId n_ad = access(p1, d);
      const ResourceId n_bd = access(p2, d);

      // c_S: source on the server (2 output levels).
      TranslationTable t_source;
      t_source.set(0, 0, rv1(h_s, 10 * scale));
      t_source.set(0, 1, rv1(h_s, 4 * scale));
      // c_F: fan-out splitter on the server.
      TranslationTable t_split;
      t_split.set(0, 0, rv1(h_s, 6 * scale));
      t_split.set(0, 1, rv1(h_s, 3 * scale));
      t_split.set(1, 1, rv1(h_s, 2 * scale));
      // c_A: analysis branch on the primary proxy (can refine level 1).
      TranslationTable t_a;
      t_a.set(0, 0, rv2(h_a, 8 * scale, n_sa, 10 * scale));
      t_a.set(1, 0, rv2(h_a, 13 * scale, n_sa, 5 * scale));
      t_a.set(0, 1, rv2(h_a, 5 * scale, n_sa, 7 * scale));
      t_a.set(1, 1, rv2(h_a, 3 * scale, n_sa, 4 * scale));
      // c_B: preview/archive branch on the secondary proxy.
      TranslationTable t_b;
      t_b.set(0, 0, rv2(h_b, 7 * scale, n_sb, 9 * scale));
      t_b.set(1, 0, rv2(h_b, 12 * scale, n_sb, 4 * scale));
      t_b.set(0, 1, rv2(h_b, 4 * scale, n_sb, 6 * scale));
      t_b.set(1, 1, rv2(h_b, 2 * scale, n_sb, 3 * scale));
      // c_M: fan-in merge at the client; input = (c_A out, c_B out)
      // combos, row-major with c_A (the lower component index) first.
      TranslationTable t_m;
      auto combo = [](LevelIndex a, LevelIndex b) {
        return static_cast<LevelIndex>(a * 2 + b);
      };
      t_m.set(combo(0, 0), 0, rv2(n_ad, 12 * scale, n_bd, 10 * scale));
      t_m.set(combo(0, 1), 1, rv2(n_ad, 8 * scale, n_bd, 4 * scale));
      t_m.set(combo(1, 0), 1, rv2(n_ad, 5 * scale, n_bd, 8 * scale));
      t_m.set(combo(1, 1), 1, rv2(n_ad, 6 * scale, n_bd, 5 * scale));
      t_m.set(combo(1, 1), 2, rv2(n_ad, 3 * scale, n_bd, 2 * scale));

      std::vector<ServiceComponent> components;
      components.emplace_back("c_S", levels2(512, 256),
                              t_source.as_function(),
                              HostId{static_cast<std::uint32_t>(s - 1)});
      components.emplace_back("c_F", levels2(512, 256),
                              t_split.as_function(),
                              HostId{static_cast<std::uint32_t>(s - 1)});
      components.emplace_back("c_A", levels2(512, 256), t_a.as_function(),
                              HostId{static_cast<std::uint32_t>(p1 - 1)});
      components.emplace_back("c_B", levels2(512, 256), t_b.as_function(),
                              HostId{static_cast<std::uint32_t>(p2 - 1)});
      components.emplace_back("c_M", sink_levels, t_m.as_function());

      const int index = template_index(s, d);
      services_[index] = std::make_unique<ServiceDefinition>(
          "DagS" + std::to_string(s) + "@D" + std::to_string(d),
          std::move(components),
          std::vector<std::pair<ComponentIndex, ComponentIndex>>{
              {0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}},
          QoSVector(raw, {512, 10}));
      footprints_[index] = {h_s, h_a, h_b, n_sa, n_sb, n_ad, n_bd};
      coordinators_[index] = std::make_unique<SessionCoordinator>(
          services_[index].get(), footprints_[index], &registry_);
    }
  }
}

SessionCoordinator& DagScenario::coordinator(int service, int domain) {
  const int index = template_index(service, domain);
  QRES_REQUIRE(coordinators_[index] != nullptr,
               "DagScenario: service is excluded for this domain");
  return *coordinators_[index];
}

SessionSource DagScenario::make_source() {
  return [this](Rng& rng, double /*now*/) {
    const int domain = rng.uniform_int(1, kDomains);
    const int excluded = PaperScenario::excluded_service(domain);
    int service = rng.uniform_int(1, kServers - 1);
    if (service >= excluded) ++service;
    SessionSpec spec;
    spec.coordinator = &coordinator(service, domain);
    spec.traits = sample_traits(config_.workload, rng);
    spec.path_group.clear();  // DAG plans are graphs, not paths
    return spec;
  };
}

}  // namespace qres
