#include "scenario/paper_scenario.hpp"

#include <string>

#include "util/assert.hpp"

namespace qres {

int PaperScenario::proxy_host_of_domain(int domain) {
  QRES_REQUIRE(domain >= 1 && domain <= kDomains,
               "PaperScenario: domain out of range");
  return (domain + 1) / 2;  // ceil(d/2)
}

int PaperScenario::excluded_service(int domain) {
  return proxy_host_of_domain(domain);
}

const char* PaperScenario::table_group(int service) {
  QRES_REQUIRE(service >= 1 && service <= kServers,
               "PaperScenario: service out of range");
  return (service == 1 || service == 4) ? "a" : "b";
}

int PaperScenario::template_index(int service, int domain) const {
  QRES_REQUIRE(service >= 1 && service <= kServers,
               "PaperScenario: service out of range");
  QRES_REQUIRE(domain >= 1 && domain <= kDomains,
               "PaperScenario: domain out of range");
  return (service - 1) * kDomains + (domain - 1);
}

PaperScenario::PaperScenario(const PaperScenarioConfig& config)
    : config_(config) {
  QRES_REQUIRE(config_.capacity_min > 0.0 &&
                   config_.capacity_min <= config_.capacity_max,
               "PaperScenario: bad capacity range");
  Rng setup_rng(config_.setup_seed);

  // --- Topology: H1..H4 full mesh + D1..D8 access (figure 9) ----------
  for (int i = 0; i < kServers; ++i)
    servers_[i] = topology_.add_host("H" + std::to_string(i + 1));
  for (int d = 0; d < kDomains; ++d)
    domains_[d] = topology_.add_host("D" + std::to_string(d + 1));

  int link_number = 0;
  std::array<LinkId, kLinks> links{};
  for (int i = 0; i < kServers; ++i)
    for (int j = i + 1; j < kServers; ++j) {
      links[link_number] = topology_.add_link(
          "L" + std::to_string(link_number + 1), servers_[i], servers_[j]);
      ++link_number;
    }
  for (int d = 0; d < kDomains; ++d) {
    const int attach = proxy_host_of_domain(d + 1) - 1;
    links[link_number] = topology_.add_link(
        "L" + std::to_string(link_number + 1), domains_[d], servers_[attach]);
    ++link_number;
  }
  QRES_ASSERT(link_number == kLinks);

  // --- Brokers: host resources and per-link brokers --------------------
  auto draw_capacity = [&] {
    return setup_rng.uniform(config_.capacity_min, config_.capacity_max);
  };
  for (int i = 0; i < kServers; ++i)
    host_res_[i] = registry_.add_resource(
        "h_H" + std::to_string(i + 1), ResourceKind::kCpu, servers_[i],
        draw_capacity(), config_.alpha_window, config_.history_keep,
        config_.alpha_mode);
  for (int l = 0; l < kLinks; ++l)
    link_res_[l] = registry_.add_resource(
        topology_.link_name(links[l]), ResourceKind::kNetworkBandwidth,
        HostId{}, draw_capacity(), config_.alpha_window,
        config_.history_keep, config_.alpha_mode);

  // Map topology link ids to broker resource ids for route lookups.
  auto links_to_resources = [&](const std::vector<LinkId>& route) {
    std::vector<ResourceId> ids;
    ids.reserve(route.size());
    for (LinkId lid : route) ids.push_back(link_res_[lid.value()]);
    return ids;
  };

  // --- Two-level network resources -------------------------------------
  for (int i = 0; i < kServers; ++i)
    for (int j = i + 1; j < kServers; ++j) {
      const auto route = topology_.route(servers_[i], servers_[j]);
      const ResourceId id = registry_.add_network_path(
          "net(H" + std::to_string(i + 1) + "-H" + std::to_string(j + 1) +
              ")",
          links_to_resources(route));
      net_pair_[i][j] = id;
      net_pair_[j][i] = id;
    }
  for (int d = 0; d < kDomains; ++d) {
    const int proxy = proxy_host_of_domain(d + 1) - 1;
    const auto route = topology_.route(servers_[proxy], domains_[d]);
    net_access_[d] = registry_.add_network_path(
        "net(H" + std::to_string(proxy + 1) + "-D" + std::to_string(d + 1) +
            ")",
        links_to_resources(route));
  }

  // --- Service instances and coordinators ------------------------------
  services_.resize(static_cast<std::size_t>(kServers) * kDomains);
  coordinators_.resize(services_.size());
  PaperServiceOptions options;
  options.low_diversity = config_.low_diversity;
  options.requirement_scale = config_.requirement_scale;
  for (int s = 1; s <= kServers; ++s) {
    const QosTableKind kind =
        (s == 1 || s == 4) ? QosTableKind::kTypeA : QosTableKind::kTypeB;
    for (int d = 1; d <= kDomains; ++d) {
      if (excluded_service(d) == s) continue;  // never requested
      const int proxy = proxy_host_of_domain(d);
      ServiceResources resources;
      resources.server_local = host_res_[s - 1];
      resources.proxy_local = host_res_[proxy - 1];
      resources.net_server_proxy = net_pair_[s - 1][proxy - 1];
      resources.net_proxy_client = net_access_[d - 1];
      const int index = template_index(s, d);
      services_[index] = std::make_unique<ServiceDefinition>(
          make_paper_service("S" + std::to_string(s) + "@D" +
                                 std::to_string(d),
                             kind, resources, servers_[s - 1],
                             servers_[proxy - 1], domains_[d - 1], options));
      coordinators_[index] = std::make_unique<SessionCoordinator>(
          services_[index].get(), paper_service_footprint(resources),
          &registry_, config_.psi_kind);
    }
  }

  popularity_.fill(1.0);
  next_reroll_ = config_.popularity_period;
}

SessionCoordinator& PaperScenario::coordinator(int service, int domain) {
  const int index = template_index(service, domain);
  QRES_REQUIRE(coordinators_[index] != nullptr,
               "PaperScenario: service is excluded for this domain");
  return *coordinators_[index];
}

ResourceId PaperScenario::host_resource(int server) const {
  QRES_REQUIRE(server >= 1 && server <= kServers,
               "PaperScenario: server out of range");
  return host_res_[server - 1];
}

ResourceId PaperScenario::link_resource(int link) const {
  QRES_REQUIRE(link >= 1 && link <= kLinks,
               "PaperScenario: link out of range");
  return link_res_[link - 1];
}

std::vector<ResourceId> PaperScenario::all_physical_resources() const {
  std::vector<ResourceId> ids;
  ids.reserve(kServers + kLinks);
  for (ResourceId id : host_res_) ids.push_back(id);
  for (ResourceId id : link_res_) ids.push_back(id);
  return ids;
}

SessionSource PaperScenario::make_source() {
  return [this](Rng& rng, double now) {
    // Re-draw the per-service popularity every popularity_period TUs.
    while (now >= next_reroll_) {
      for (double& weight : popularity_)
        weight = rng.uniform(config_.popularity_min, config_.popularity_max);
      next_reroll_ += config_.popularity_period;
    }

    const int domain = rng.uniform_int(1, kDomains);
    const int excluded = excluded_service(domain);
    std::vector<double> weights;
    std::vector<int> candidates;
    for (int s = 1; s <= kServers; ++s) {
      if (s == excluded) continue;
      candidates.push_back(s);
      weights.push_back(popularity_[s - 1]);
    }
    const int service = candidates[rng.categorical(weights)];

    SessionSpec spec;
    spec.coordinator = &coordinator(service, domain);
    spec.traits = sample_traits(config_.workload, rng);
    spec.path_group = table_group(service);
    return spec;
  };
}

}  // namespace qres
