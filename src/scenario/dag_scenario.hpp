// A figure-9-style environment whose services have *DAG* dependency
// graphs (paper §4.3.2, figure 6): each session runs
//
//            c_S -> c_F -> { c_A, c_B } -> c_M
//
// where c_S (source) and c_F (fan-out splitter) run on the main server,
// branch c_A runs on the client's primary proxy, branch c_B on a
// secondary proxy, and the fan-in c_M on the client. This exercises the
// two-pass heuristic — fan-in input concatenation, non-convergent
// backtracking — inside the full closed admission loop, which the paper's
// own evaluation (chains only) never does.
//
// Network resources are modeled as flat per-(endpoint pair) brokers (the
// figure-9 routes are single links, so this admits the same workloads as
// the two-level model).
#pragma once

#include <array>
#include <map>
#include <memory>

#include "broker/registry.hpp"
#include "proxy/qos_proxy.hpp"
#include "sim/simulation.hpp"

namespace qres {

struct DagScenarioConfig {
  double capacity_min = 1000.0;
  double capacity_max = 4000.0;
  std::uint64_t setup_seed = 42;
  double requirement_scale = 1.0;
  WorkloadConfig workload;
};

class DagScenario {
 public:
  static constexpr int kServers = 4;
  static constexpr int kDomains = 8;

  explicit DagScenario(const DagScenarioConfig& config = {});
  DagScenario(const DagScenario&) = delete;
  DagScenario& operator=(const DagScenario&) = delete;

  BrokerRegistry& registry() noexcept { return registry_; }

  /// Coordinator for (service 1..4, domain 1..8); the domain's excluded
  /// service rule matches PaperScenario.
  SessionCoordinator& coordinator(int service, int domain);

  /// Number of end-to-end QoS levels of every DAG service.
  static constexpr std::size_t kLevels = 3;

  /// Session source for Simulation (uniform domain, uniform allowed
  /// service, §5.1 traits; no path-group recording — paths are graphs).
  SessionSource make_source();

 private:
  int template_index(int service, int domain) const;
  ResourceId net(int host_a, int host_b);      // inter-server, lazy
  ResourceId access(int proxy, int domain);    // proxy->client, lazy

  DagScenarioConfig config_;
  Rng capacity_rng_;
  BrokerRegistry registry_;
  std::array<ResourceId, kServers> host_res_{};
  std::map<std::pair<int, int>, ResourceId> net_res_;
  std::map<std::pair<int, int>, ResourceId> access_res_;
  std::vector<std::unique_ptr<ServiceDefinition>> services_;
  std::vector<std::unique_ptr<SessionCoordinator>> coordinators_;
  std::vector<std::vector<ResourceId>> footprints_;
};

}  // namespace qres
