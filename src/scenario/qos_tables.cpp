#include "scenario/qos_tables.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace qres {

namespace {

ResourceVector rv1(ResourceId a, double va) {
  ResourceVector v;
  v.set(a, va);
  return v;
}

ResourceVector rv2(ResourceId a, double va, ResourceId b, double vb) {
  ResourceVector v;
  v.set(a, va);
  v.set(b, vb);
  return v;
}

}  // namespace

// Requirement magnitudes: the structure (which pairs exist) is fixed by
// the paper's tables 1/2; the values are synthesized with wide per-
// resource diversity (max:min between ~5:1 and ~8:1) so that the §5.2.5
// diversity experiment — which compresses each spread to 3:1 around the
// same mean — has room to bite.
TranslationTable server_table(QosTableKind kind, ResourceId h) {
  TranslationTable t;
  if (kind == QosTableKind::kTypeA) {
    // Source quality Qa -> outs {Qb, Qc, Qd} (high, medium, low).
    t.set(0, 0, rv1(h, 12.0));
    t.set(0, 1, rv1(h, 6.0));
    t.set(0, 2, rv1(h, 2.0));
  } else {
    // Source quality Qa -> outs {Qb, Qc}.
    t.set(0, 0, rv1(h, 10.0));
    t.set(0, 1, rv1(h, 4.0));
  }
  return t;
}

TranslationTable proxy_table(QosTableKind kind, ResourceId h, ResourceId l) {
  TranslationTable t;
  if (kind == QosTableKind::kTypeA) {
    // Ins {Qe,Qf,Qg} (= server outs), outs {Qh,Qi,Qj,Qk}. The edge set is
    // exactly the set of pairs appearing in the paper's table 1; producing
    // a higher output than the input (image intrapolation, figure 4)
    // costs extra host capacity but less bandwidth.
    t.set(0, 0, rv2(h, 8.0, l, 14.0));   // Qe -> Qh
    t.set(1, 0, rv2(h, 16.0, l, 8.0));   // Qf -> Qh (upscale)
    t.set(0, 1, rv2(h, 5.0, l, 10.0));   // Qe -> Qi
    t.set(1, 1, rv2(h, 6.0, l, 6.0));    // Qf -> Qi
    t.set(1, 2, rv2(h, 4.0, l, 4.0));    // Qf -> Qj
    t.set(2, 2, rv2(h, 8.0, l, 3.0));    // Qg -> Qj (upscale)
    t.set(1, 3, rv2(h, 3.0, l, 4.0));    // Qf -> Qk
    t.set(2, 3, rv2(h, 2.0, l, 2.0));    // Qg -> Qk
  } else {
    // Ins {Qd,Qe}, outs {Qf,Qg,Qh}; all pairs appear in table 2.
    t.set(0, 0, rv2(h, 6.0, l, 12.0));  // Qd -> Qf
    t.set(1, 0, rv2(h, 14.0, l, 7.0));  // Qe -> Qf (upscale)
    t.set(0, 1, rv2(h, 5.0, l, 8.0));   // Qd -> Qg
    t.set(1, 1, rv2(h, 8.0, l, 5.0));   // Qe -> Qg
    t.set(0, 2, rv2(h, 3.0, l, 6.0));   // Qd -> Qh
    t.set(1, 2, rv2(h, 5.0, l, 3.0));   // Qe -> Qh
  }
  return t;
}

TranslationTable client_table(QosTableKind kind, ResourceId l) {
  TranslationTable t;
  if (kind == QosTableKind::kTypeA) {
    // Ins {Ql,Qm,Qn,Qo} (= proxy outs), outs {Qp,Qq,Qr}.
    t.set(0, 0, rv1(l, 8.0));   // Ql -> Qp
    t.set(1, 0, rv1(l, 14.0));  // Qm -> Qp (upscale)
    t.set(2, 0, rv1(l, 20.0));  // Qn -> Qp (upscale)
    t.set(1, 1, rv1(l, 6.0));   // Qm -> Qq
    t.set(2, 1, rv1(l, 9.0));   // Qn -> Qq
    t.set(3, 1, rv1(l, 12.0));  // Qo -> Qq
    t.set(2, 2, rv1(l, 3.0));   // Qn -> Qr
    t.set(3, 2, rv1(l, 4.0));   // Qo -> Qr
  } else {
    // Ins {Qi,Qj,Qk}, outs {Ql,Qm,Qn}.
    t.set(0, 0, rv1(l, 10.0));  // Qi -> Ql
    t.set(1, 0, rv1(l, 14.0));  // Qj -> Ql
    t.set(2, 0, rv1(l, 20.0));  // Qk -> Ql
    t.set(0, 1, rv1(l, 5.0));   // Qi -> Qm
    t.set(1, 1, rv1(l, 7.0));   // Qj -> Qm
    t.set(2, 1, rv1(l, 10.0));  // Qk -> Qm
    t.set(2, 2, rv1(l, 3.0));   // Qk -> Qn
  }
  return t;
}

TranslationTable compress_diversity(const TranslationTable& table,
                                    double ratio) {
  QRES_REQUIRE(ratio >= 1.0, "compress_diversity: ratio must be >= 1");

  // Per resource: collect (entry order, value) over all entries.
  struct Occurrence {
    std::pair<LevelIndex, LevelIndex> key;
    double value;
  };
  std::map<std::uint32_t, std::vector<Occurrence>> per_resource;
  for (const auto& [key, req] : table)
    for (const auto& [rid, amount] : req)
      per_resource[rid.value()].push_back({key, amount});

  TranslationTable result = table;  // start with the same keys
  for (auto& [rid_value, occurrences] : per_resource) {
    const ResourceId rid{rid_value};
    double mean = 0.0;
    for (const auto& o : occurrences) mean += o.value;
    mean /= static_cast<double>(occurrences.size());

    // Target values: evenly spaced in [lo, ratio*lo] with the same mean,
    // so lo = 2*mean / (1 + ratio). Assign by the rank of the original
    // value, preserving the original ordering.
    const double lo = 2.0 * mean / (1.0 + ratio);
    const double hi = ratio * lo;
    std::vector<std::size_t> order(occurrences.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return occurrences[a].value < occurrences[b].value;
                     });
    const std::size_t n = occurrences.size();
    for (std::size_t rank = 0; rank < n; ++rank) {
      const double target =
          n == 1 ? mean
                 : lo + (hi - lo) * static_cast<double>(rank) /
                            static_cast<double>(n - 1);
      const auto& occurrence = occurrences[order[rank]];
      auto req = result.get(occurrence.key.first, occurrence.key.second);
      QRES_ASSERT(req.has_value());
      req->set(rid, target);
      result.set(occurrence.key.first, occurrence.key.second, *req);
    }
  }
  return result;
}

namespace {

std::vector<QoSVector> type_a_server_levels() {
  const QoSSchema schema({"frame_rate", "image_size"});
  return {QoSVector(schema, {30, 4}), QoSVector(schema, {24, 3}),
          QoSVector(schema, {15, 2})};
}

std::vector<QoSVector> type_a_proxy_levels() {
  const QoSSchema schema({"frame_rate", "image_size", "tracked_objects"});
  return {QoSVector(schema, {30, 4, 5}), QoSVector(schema, {24, 3, 4}),
          QoSVector(schema, {20, 3, 3}), QoSVector(schema, {15, 2, 2})};
}

std::vector<QoSVector> type_a_client_levels() {
  const QoSSchema schema({"frame_rate", "image_size", "tracked_objects"});
  return {QoSVector(schema, {30, 4, 5}), QoSVector(schema, {24, 3, 3}),
          QoSVector(schema, {15, 2, 2})};
}

std::vector<QoSVector> type_b_server_levels() {
  const QoSSchema schema({"sample_rate", "precision"});
  return {QoSVector(schema, {48, 24}), QoSVector(schema, {32, 16})};
}

std::vector<QoSVector> type_b_proxy_levels() {
  const QoSSchema schema({"sample_rate", "precision", "channels"});
  return {QoSVector(schema, {48, 24, 6}), QoSVector(schema, {44, 20, 4}),
          QoSVector(schema, {32, 16, 2})};
}

std::vector<QoSVector> type_b_client_levels() {
  const QoSSchema schema({"sample_rate", "precision", "channels"});
  return {QoSVector(schema, {48, 24, 6}), QoSVector(schema, {44, 20, 4}),
          QoSVector(schema, {32, 16, 2})};
}

QoSVector source_quality(QosTableKind kind) {
  if (kind == QosTableKind::kTypeA) {
    const QoSSchema schema({"frame_rate", "image_size"});
    return QoSVector(schema, {30, 4});
  }
  const QoSSchema schema({"sample_rate", "precision"});
  return QoSVector(schema, {48, 24});
}

TranslationTable finalize(TranslationTable table,
                          const PaperServiceOptions& options) {
  if (options.low_diversity) table = compress_diversity(table);
  if (options.requirement_scale != 1.0)
    table = table.scaled(options.requirement_scale);
  return table;
}

}  // namespace

ServiceDefinition make_paper_service(std::string name, QosTableKind kind,
                                     const ServiceResources& resources,
                                     HostId server, HostId proxy,
                                     HostId client,
                                     const PaperServiceOptions& options) {
  const bool a = kind == QosTableKind::kTypeA;
  std::vector<ServiceComponent> components;
  components.reserve(3);
  components.emplace_back(
      "c_S", a ? type_a_server_levels() : type_b_server_levels(),
      finalize(server_table(kind, resources.server_local), options)
          .as_function(),
      server);
  components.emplace_back(
      "c_P", a ? type_a_proxy_levels() : type_b_proxy_levels(),
      finalize(proxy_table(kind, resources.proxy_local,
                           resources.net_server_proxy),
               options)
          .as_function(),
      proxy);
  components.emplace_back(
      "c_C", a ? type_a_client_levels() : type_b_client_levels(),
      finalize(client_table(kind, resources.net_proxy_client), options)
          .as_function(),
      client);
  return ServiceDefinition(std::move(name), std::move(components),
                           {{0, 1}, {1, 2}}, source_quality(kind));
}

std::vector<ResourceId> paper_service_footprint(
    const ServiceResources& resources) {
  return {resources.server_local, resources.proxy_local,
          resources.net_server_proxy, resources.net_proxy_client};
}

}  // namespace qres
