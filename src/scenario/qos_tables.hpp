// The figure-10 QoS-Resource Model definitions of the paper's evaluation.
//
// Services S1/S4 share the type-(a) tables, S2/S3 the type-(b) tables.
// Every service is a chain  c_S -> c_P -> c_C  where
//   * c_S runs on the main server and requires the server-local resource
//     h_S,
//   * c_P runs on a proxy host and requires the proxy-local resource h_P
//     and the server-proxy network resource l_P^S,
//   * c_C runs on the client and requires the proxy-client network
//     resource l_C^P.
//
// The *structure* of the tables (which (Q_in, Q_out) pairs exist and the
// paper's node labels Qa..Qr / Qa..Qn) is fixed exactly by the paper's
// tables 1 and 2. The requirement *magnitudes* are not printed in the
// paper's text; the values below are synthesized to produce the resource
// trade-offs the algorithms exploit (alternative paths stressing host
// capacity vs. bandwidth differently) — see DESIGN.md §2.
//
// Type (a) QRG structure (labels as in table 1):
//   source Qa -> c_S outs {Qb,Qc,Qd} -> c_P ins {Qe,Qf,Qg},
//   c_P outs {Qh,Qi,Qj,Qk} -> c_C ins {Ql,Qm,Qn,Qo}, c_C outs {Qp,Qq,Qr}.
// Type (b) QRG structure (labels as in table 2):
//   source Qa -> c_S outs {Qb,Qc} -> c_P ins {Qd,Qe},
//   c_P outs {Qf,Qg,Qh} -> c_C ins {Qi,Qj,Qk}, c_C outs {Ql,Qm,Qn}.
#pragma once

#include "core/service.hpp"

namespace qres {

enum class QosTableKind : std::uint8_t {
  kTypeA,  ///< services S1, S4 (figure 10(a))
  kTypeB,  ///< services S2, S3 (figure 10(b))
};

/// The four end-to-end resources of one service instance (paper §5.1).
struct ServiceResources {
  ResourceId server_local;      ///< h_S
  ResourceId proxy_local;       ///< h_P
  ResourceId net_server_proxy;  ///< l_P^S
  ResourceId net_proxy_client;  ///< l_C^P
};

/// Base requirement tables bound to concrete resource ids.
TranslationTable server_table(QosTableKind kind, ResourceId server_local);
TranslationTable proxy_table(QosTableKind kind, ResourceId proxy_local,
                             ResourceId net_server_proxy);
TranslationTable client_table(QosTableKind kind,
                              ResourceId net_proxy_client);

/// Figure-13 variant: per resource, compresses the spread of requirement
/// values across a component's table entries to max:min = `ratio` while
/// preserving the per-resource mean, with the remaining values evenly
/// distributed in between and the original ordering kept (§5.2.5).
TranslationTable compress_diversity(const TranslationTable& table,
                                    double ratio = 3.0);

struct PaperServiceOptions {
  bool low_diversity = false;    ///< apply compress_diversity (figure 13)
  double requirement_scale = 1.0;  ///< uniform calibration multiplier
};

/// Builds one fully-bound chain service instance (one (service type,
/// client placement) pair of the paper's environment).
ServiceDefinition make_paper_service(std::string name, QosTableKind kind,
                                     const ServiceResources& resources,
                                     HostId server, HostId proxy,
                                     HostId client,
                                     const PaperServiceOptions& options = {});

/// The resource footprint the main QoSProxy collects for such a service.
std::vector<ResourceId> paper_service_footprint(
    const ServiceResources& resources);

/// Number of end-to-end QoS levels (3 for both table types; the paper's
/// levels 3 > 2 > 1).
constexpr std::size_t kPaperQoSLevels = 3;

}  // namespace qres
