// The figure-9 environment rebuilt on advance (book-ahead) brokers — the
// testbed for the paper's §6 future-work extension.
//
// Same hosts, services, proxy placement and figure-10 QoS tables as
// PaperScenario; the difference is the brokerage: every resource is
// fronted by an AdvanceBroker whose availability is interval-based, so
// sessions can reserve [start, start + duration) windows ahead of time.
// One simplification versus the immediate scenario: each logical network
// resource (host pair / access path) is booked as a single advance
// resource rather than per physical link — in figure 9 every logical path
// is a single link anyway, so the admitted workloads are identical.
#pragma once

#include <array>
#include <memory>

#include "proxy/advance_coordinator.hpp"
#include "scenario/qos_tables.hpp"
#include "sim/workload.hpp"

namespace qres {

struct AdvanceScenarioConfig {
  double capacity_min = 1000.0;
  double capacity_max = 4000.0;
  std::uint64_t setup_seed = 42;
  bool low_diversity = false;
  double requirement_scale = 1.0;
  WorkloadConfig workload;
};

class AdvanceScenario {
 public:
  static constexpr int kServers = 4;
  static constexpr int kDomains = 8;

  explicit AdvanceScenario(const AdvanceScenarioConfig& config = {});
  AdvanceScenario(const AdvanceScenario&) = delete;
  AdvanceScenario& operator=(const AdvanceScenario&) = delete;

  AdvanceRegistry& registry() noexcept { return registry_; }

  /// Coordinator for (service 1..4, domain 1..8); same exclusion rule as
  /// PaperScenario.
  AdvanceSessionCoordinator& coordinator(int service, int domain);

  /// Samples a session request like the paper's workload: uniform domain,
  /// uniform allowed service (popularity dynamics omitted — the advance
  /// experiments vary the booking horizon instead), §5.1 traits.
  struct Request {
    AdvanceSessionCoordinator* coordinator;
    SessionTraits traits;
  };
  Request sample_request(Rng& rng);

 private:
  int template_index(int service, int domain) const;

  AdvanceScenarioConfig config_;
  AdvanceRegistry registry_;
  std::array<ResourceId, kServers> host_res_{};
  std::array<std::array<ResourceId, kServers>, kServers> net_pair_{};
  std::array<ResourceId, kDomains> net_access_{};
  std::vector<std::unique_ptr<ServiceDefinition>> services_;
  std::vector<std::unique_ptr<AdvanceSessionCoordinator>> coordinators_;
};

}  // namespace qres
