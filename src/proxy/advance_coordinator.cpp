#include "proxy/advance_coordinator.hpp"

#include "util/assert.hpp"

namespace qres {

AdvanceSessionCoordinator::AdvanceSessionCoordinator(
    const ServiceDefinition* service, std::vector<ResourceId> footprint,
    AdvanceRegistry* registry, PsiKind psi_kind)
    : service_(service),
      footprint_(std::move(footprint)),
      registry_(registry),
      psi_kind_(psi_kind) {
  QRES_REQUIRE(service != nullptr, "AdvanceSessionCoordinator: null service");
  QRES_REQUIRE(registry != nullptr,
               "AdvanceSessionCoordinator: null registry");
  QRES_REQUIRE(!footprint_.empty(),
               "AdvanceSessionCoordinator: empty resource footprint");
}

AdvanceEstablishResult AdvanceSessionCoordinator::establish(
    SessionId session, double start, double end, const IPlanner& planner,
    Rng& rng, double scale) {
  QRES_REQUIRE(start < end, "AdvanceSessionCoordinator: empty interval");
  AdvanceEstablishResult result;

  // Phase 1: interval availability over the requested window.
  const AvailabilityView view = registry_->collect(footprint_, start, end);

  // Phase 2: plan with the unchanged algorithm.
  const Qrg qrg(*service_, view, psi_kind_, scale);
  PlanResult planned = planner.plan(qrg, rng);
  result.sinks = std::move(planned.sinks);
  if (!planned.plan) return result;
  result.plan = std::move(planned.plan);

  // Phase 3: book all-or-nothing.
  const ResourceVector total = result.plan->total_requirement();
  std::vector<std::pair<ResourceId, BookingId>> booked;
  booked.reserve(total.size());
  bool ok = true;
  for (const auto& [id, amount] : total) {
    const BookingId booking =
        registry_->broker(id).book(session, amount, start, end);
    if (booking == 0) {
      ok = false;
      break;
    }
    booked.push_back({id, booking});
  }
  if (!ok) {
    for (const auto& [id, booking] : booked)
      registry_->broker(id).cancel(booking);
    return result;
  }
  result.success = true;
  result.bookings = std::move(booked);
  return result;
}

void AdvanceSessionCoordinator::cancel(
    const std::vector<std::pair<ResourceId, BookingId>>& bookings) {
  for (const auto& [id, booking] : bookings)
    registry_->broker(id).cancel(booking);
}

}  // namespace qres
