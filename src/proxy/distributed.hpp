// The *distributed* model-storage mode of the paper's architecture (§3):
// "in a distributed approach, the Q_in and Q_out levels and the
// Translation Function of each service component will be stored and
// accessed by the QoSProxy of the host where the service component runs."
//
// With the model fragments distributed, no single proxy can build the
// whole QRG. For chain services the bottleneck-shortest-path computation
// decomposes naturally into a hop-by-hop protocol:
//
//   forward pass   — each proxy receives the upstream frontier (one label
//                    per upstream output level), extends it across its own
//                    translation edges using *locally observed*
//                    availability, and forwards its own output frontier
//                    (one message per dependency edge);
//   backward pass  — the sink proxy picks the end-to-end level (highest
//                    reachable; or the §4.3.1 tradeoff rule) and each
//                    proxy backtracks its recorded predecessor choice,
//                    demanding one output level from its upstream
//                    neighbor (one message per edge);
//   reserve pass   — each proxy reserves its own segment with its local
//                    brokers; any failure aborts and rolls back the
//                    already-reserved segments (one message per proxy).
//
// On chains this computes exactly the centralized basic/tradeoff plan
// (property-tested), with 2(K-1) + K protocol messages instead of
// centralized collection + dispatch. Messages are explicit structs so the
// protocol is inspectable and testable.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "broker/registry.hpp"
#include "core/planner.hpp"
#include "proxy/qos_proxy.hpp"  // EstablishResult / CoordinationStats
#include "rpc/channel.hpp"

namespace qres {

/// One frontier entry of the forward pass: the pass-I label of an
/// upstream output-level node, as shipped between proxies.
struct FrontierLabel {
  bool reachable = false;
  double value = 0.0;
  double alpha = 1.0;
  ResourceId bottleneck;
};

/// Forward-pass message: labels of the sender component's output levels.
struct ForwardMessage {
  std::vector<FrontierLabel> out_labels;
};

/// Backward-pass message: the output level demanded from the upstream
/// component.
struct BackwardMessage {
  LevelIndex demanded_out = 0;
};

/// The per-host planning agent: holds one component's model fragment and
/// processes the protocol messages. Availability is observed through the
/// host's own brokers only.
class ComponentAgent {
 public:
  ComponentAgent(const ServiceComponent* component,
                 std::vector<ResourceId> local_footprint,
                 BrokerRegistry* registry);

  /// Processes the upstream frontier at time `now`: relaxes all local
  /// translation edges (scaled by `scale`) and returns the local output
  /// frontier. Must be called before backward()/reserve().
  ForwardMessage forward(const ForwardMessage& upstream, double now,
                         double scale, PsiKind psi_kind,
                         const PlannerOptions& options);

  /// Processes the downstream demand: fixes this component's operating
  /// point and returns the demand for the upstream component.
  BackwardMessage backward(const BackwardMessage& demand);

  /// The operating point fixed by backward(); valid afterwards.
  const PlanStep& chosen_step() const;

  /// Reserves the chosen step's requirement with the local brokers;
  /// returns false on admission failure (nothing partially held locally).
  /// `lease` > 0 takes leased reservations of that duration; `failed`
  /// (optional) receives the resource that was rejected.
  bool reserve(SessionId session, double now, double lease = 0.0,
               ResourceId* failed = nullptr);

  /// Releases exactly what reserve() took for the session.
  void release(SessionId session, double now);

 private:
  const ServiceComponent* component_;
  std::vector<ResourceId> footprint_;
  BrokerRegistry* registry_;
  ComponentIndex index_in_service_ = 0;  // set by DistributedSession

  // Per-output-level working state recorded by forward().
  struct OutState {
    FrontierLabel label;
    LevelIndex pred_in = 0;
    ResourceVector requirement;
    double edge_psi = 0.0;
  };
  std::vector<OutState> out_states_;
  std::optional<PlanStep> chosen_;

  friend class DistributedSession;
};

/// Orchestrates one chain service session in distributed mode.
class DistributedSession {
 public:
  /// `per_component_footprint[i]` lists the resources component i's
  /// translation may reference (all local to that component's host).
  DistributedSession(const ServiceDefinition* service,
                     std::vector<std::vector<ResourceId>> per_component_footprint,
                     BrokerRegistry* registry,
                     PsiKind psi_kind = PsiKind::kRatio,
                     PlannerOptions options = {});

  /// Routes every protocol message (forward/backward hops between
  /// neighboring proxies, reserve-pass dispatches from the sink) through
  /// `transport`, wrapped in an rpc::RpcChannel shim (request ids,
  /// per-peer stats, optional breaker/deadline via rpc_channel()).
  /// Components with invalid hosts exchange no RPCs (they are
  /// co-located). Without a transport the control plane is perfect.
  void attach_faults(IControlTransport* transport);

  /// The shim every protocol message goes through (null until
  /// attach_faults). Exposed so callers can tune the breaker config or
  /// read per-peer stats.
  rpc::RpcChannel* rpc_channel() const noexcept { return channel_.get(); }

  /// Reserve-pass reservations become leases of `lease_duration` (see
  /// SessionCoordinator::enable_leases).
  void enable_leases(double lease_duration);

  /// Runs the three passes. `use_tradeoff` applies the §4.3.1 sink rule
  /// at the sink proxy. Returns the same result shape as the centralized
  /// coordinator; stats count protocol messages.
  EstablishResult establish(SessionId session, double now, double scale = 1.0,
                            bool use_tradeoff = false);

  void teardown(const std::vector<std::pair<ResourceId, double>>& holdings,
                SessionId session, double now);

 private:
  /// Host of agent i's component (invalid when the component is unhosted).
  HostId agent_host(std::size_t i) const;
  /// One protocol RPC from `from` to `to` at `now`; true when delivered
  /// (trivially so when either host is invalid or they coincide). Updates
  /// `stats` retransmission/unreachable counters.
  bool protocol_exchange(HostId from, HostId to, double now,
                         CoordinationStats& stats);

  const ServiceDefinition* service_;
  BrokerRegistry* registry_;
  PsiKind psi_kind_;
  PlannerOptions options_;
  std::unique_ptr<rpc::RpcChannel> channel_;
  double lease_ = 0.0;  ///< 0 = permanent reservations
  std::vector<ComponentAgent> agents_;  // in topological (chain) order
};

}  // namespace qres
