#include "proxy/distributed.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace qres {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ComponentAgent::ComponentAgent(const ServiceComponent* component,
                               std::vector<ResourceId> local_footprint,
                               BrokerRegistry* registry)
    : component_(component),
      footprint_(std::move(local_footprint)),
      registry_(registry) {
  QRES_REQUIRE(component != nullptr, "ComponentAgent: null component");
  QRES_REQUIRE(registry != nullptr, "ComponentAgent: null registry");
  QRES_REQUIRE(!footprint_.empty(), "ComponentAgent: empty footprint");
}

ForwardMessage ComponentAgent::forward(const ForwardMessage& upstream,
                                       double now, double scale,
                                       PsiKind psi_kind,
                                       const PlannerOptions& options) {
  QRES_REQUIRE(!upstream.out_labels.empty(),
               "ComponentAgent::forward: empty upstream frontier");
  chosen_.reset();
  // Local availability observation (phase-1 equivalent, but local only).
  const AvailabilityView view = registry_->collect(footprint_, now);

  const std::size_t in_count = upstream.out_labels.size();
  const std::size_t out_count = component_->out_level_count();
  out_states_.assign(out_count, OutState{});
  std::vector<double> best_edge_psi(out_count, kInf);

  for (LevelIndex in = 0; in < in_count; ++in) {
    const FrontierLabel& in_label = upstream.out_labels[in];
    if (!in_label.reachable) continue;
    for (LevelIndex out = 0; out < out_count; ++out) {
      const auto base = component_->requirement(in, out);
      if (!base) continue;
      const ResourceVector requirement = base->scaled(scale);
      double psi = 0.0;
      double alpha = 1.0;
      ResourceId bottleneck;
      bool feasible = true;
      for (const auto& [rid, amount] : requirement) {
        QRES_REQUIRE(view.contains(rid),
                     "ComponentAgent: translation references a resource "
                     "outside the local footprint");
        const ResourceObservation& obs = view.get(rid);
        if (amount > obs.available || obs.available <= 0.0) {
          feasible = false;
          break;
        }
        const double index = contention_index(psi_kind, amount, obs.available);
        if (!bottleneck.valid() || index > psi) {
          psi = index;
          alpha = obs.alpha;
          bottleneck = rid;
        }
      }
      if (!feasible) continue;

      const double candidate = std::max(in_label.value, psi);
      OutState& state = out_states_[out];
      bool better = !state.label.reachable || candidate < state.label.value;
      if (!better && options.use_tie_break && state.label.reachable &&
          candidate == state.label.value)
        better = psi < best_edge_psi[out];
      if (!better) continue;
      state.label.reachable = true;
      state.label.value = candidate;
      if (psi >= in_label.value) {
        state.label.bottleneck = bottleneck;
        state.label.alpha = alpha;
      } else {
        state.label.bottleneck = in_label.bottleneck;
        state.label.alpha = in_label.alpha;
      }
      state.pred_in = in;
      state.requirement = requirement;
      state.edge_psi = psi;
      best_edge_psi[out] = psi;
    }
  }

  ForwardMessage message;
  message.out_labels.reserve(out_count);
  for (const OutState& state : out_states_)
    message.out_labels.push_back(state.label);
  return message;
}

BackwardMessage ComponentAgent::backward(const BackwardMessage& demand) {
  QRES_REQUIRE(demand.demanded_out < out_states_.size(),
               "ComponentAgent::backward: demand out of range");
  const OutState& state = out_states_[demand.demanded_out];
  QRES_REQUIRE(state.label.reachable,
               "ComponentAgent::backward: demanded level is unreachable");
  PlanStep step;
  step.component = index_in_service_;
  step.in_level = state.pred_in;
  step.out_level = demand.demanded_out;
  step.requirement = state.requirement;
  step.psi = state.edge_psi;
  chosen_ = step;
  return BackwardMessage{state.pred_in};
}

const PlanStep& ComponentAgent::chosen_step() const {
  QRES_REQUIRE(chosen_.has_value(),
               "ComponentAgent: no operating point chosen yet");
  return *chosen_;
}

bool ComponentAgent::reserve(SessionId session, double now, double lease,
                             ResourceId* failed) {
  const PlanStep& step = chosen_step();
  std::vector<std::pair<ResourceId, double>> taken;
  for (const auto& [rid, amount] : step.requirement) {
    const bool ok =
        lease > 0.0
            ? registry_->broker(rid).reserve_leased(now, session, amount,
                                                    lease)
            : registry_->broker(rid).reserve(now, session, amount);
    if (!ok) {
      for (const auto& [id, held] : taken)
        registry_->broker(id).release_amount(now, session, held);
      if (failed) *failed = rid;
      return false;
    }
    taken.push_back({rid, amount});
  }
  return true;
}

void ComponentAgent::release(SessionId session, double now) {
  const PlanStep& step = chosen_step();
  for (const auto& [rid, amount] : step.requirement)
    registry_->broker(rid).release_amount(now, session, amount);
}

DistributedSession::DistributedSession(
    const ServiceDefinition* service,
    std::vector<std::vector<ResourceId>> per_component_footprint,
    BrokerRegistry* registry, PsiKind psi_kind, PlannerOptions options)
    : service_(service),
      registry_(registry),
      psi_kind_(psi_kind),
      options_(options) {
  QRES_REQUIRE(service != nullptr, "DistributedSession: null service");
  QRES_REQUIRE(registry != nullptr, "DistributedSession: null registry");
  QRES_REQUIRE(service->is_chain(),
               "DistributedSession: chain services only (the paper's "
               "distributed mode predates the DAG extension)");
  QRES_REQUIRE(per_component_footprint.size() == service->component_count(),
               "DistributedSession: one footprint per component required");
  agents_.reserve(service->component_count());
  for (ComponentIndex c : service->topological_order()) {
    agents_.emplace_back(&service->component(c),
                         per_component_footprint[c], registry);
    agents_.back().index_in_service_ = c;
  }
}

void DistributedSession::attach_faults(IControlTransport* transport) {
  QRES_REQUIRE(transport != nullptr, "attach_faults: null transport");
  // Every protocol hop goes through the RPC shim; with the default config
  // (breaker disabled, no deadline) the shim is bit-identical to a direct
  // exchange.
  channel_ = std::make_unique<rpc::RpcChannel>(transport, nullptr, nullptr);
}

void DistributedSession::enable_leases(double lease_duration) {
  QRES_REQUIRE(lease_duration > 0.0,
               "enable_leases: lease duration must be positive");
  lease_ = lease_duration;
}

HostId DistributedSession::agent_host(std::size_t i) const {
  return agents_[i].component_->host();
}

bool DistributedSession::protocol_exchange(HostId from, HostId to,
                                           double now,
                                           CoordinationStats& stats) {
  if (!channel_ || !from.valid() || !to.valid() || from == to) return true;
  const ExchangeResult result = channel_->ping(from, to, now);
  if (!result.ok()) {
    ++stats.unreachable_proxies;
    return false;
  }
  // Retransmission accounting counts only attempts that got through
  // (failed trains surface as unreachable_proxies, as before).
  if (result.transmissions > 1)
    stats.retransmissions += static_cast<std::size_t>(result.transmissions - 1);
  return true;
}

EstablishResult DistributedSession::establish(SessionId session, double now,
                                              double scale,
                                              bool use_tradeoff) {
  EstablishResult result;
  result.stats.participating_proxies = agents_.size();

  // Forward pass: the source frontier is the single source-quality label.
  // Under faults each hop-to-hop message is one RPC; an unreachable
  // neighbor kills the pass (there is no one to carry the frontier on).
  ForwardMessage frontier;
  frontier.out_labels.push_back(FrontierLabel{true, 0.0, 1.0, ResourceId{}});
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (i > 0) {
      if (!protocol_exchange(agent_host(i - 1), agent_host(i), now,
                             result.stats)) {
        result.outcome = EstablishOutcome::kUnreachable;
        result.failed_resource = agents_[i].footprint_.front();
        return result;
      }
      ++result.stats.availability_messages;
    }
    frontier = agents_[i].forward(frontier, now, scale, psi_kind_, options_);
  }

  // Sink decision: sink infos in rank order.
  const auto& ranking = service_->end_to_end_ranking();
  result.sinks.reserve(ranking.size());
  std::size_t best_rank = ranking.size();
  for (std::size_t rank = 0; rank < ranking.size(); ++rank) {
    const FrontierLabel& label = frontier.out_labels[ranking[rank]];
    SinkInfo info;
    info.level = ranking[rank];
    info.rank = rank;
    info.reachable = label.reachable;
    info.psi = label.reachable ? label.value : 0.0;
    info.alpha = label.alpha;
    info.bottleneck = label.bottleneck;
    result.sinks.push_back(info);
    if (label.reachable && best_rank == ranking.size()) best_rank = rank;
  }
  if (best_rank == ranking.size()) return result;  // nothing reachable

  std::size_t target = best_rank;
  if (use_tradeoff && result.sinks[best_rank].alpha < 1.0) {
    const double budget =
        result.sinks[best_rank].alpha * result.sinks[best_rank].psi;
    for (std::size_t rank = best_rank; rank < result.sinks.size(); ++rank) {
      if (!result.sinks[rank].reachable) continue;
      if (result.sinks[rank].psi <= budget) {
        target = rank;
        break;
      }
    }
  }

  // Backward pass: demand flows sink -> source, one RPC per hop.
  BackwardMessage demand{ranking[target]};
  for (std::size_t i = agents_.size(); i-- > 0;) {
    if (i + 1 < agents_.size()) {
      if (!protocol_exchange(agent_host(i + 1), agent_host(i), now,
                             result.stats)) {
        result.outcome = EstablishOutcome::kUnreachable;
        result.failed_resource = agents_[i].footprint_.front();
        return result;
      }
      ++result.stats.dispatch_messages;
    }
    demand = agents_[i].backward(demand);
  }

  // Assemble the plan from the fixed operating points.
  ReservationPlan plan;
  plan.steps.reserve(agents_.size());
  double bottleneck = -1.0;
  for (const ComponentAgent& agent : agents_) {
    const PlanStep& step = agent.chosen_step();
    plan.steps.push_back(step);
    if (step.psi > bottleneck) bottleneck = step.psi;
  }
  plan.bottleneck_psi = bottleneck < 0.0 ? 0.0 : bottleneck;
  plan.bottleneck_resource = result.sinks[target].bottleneck;
  plan.bottleneck_alpha = result.sinks[target].alpha;
  plan.end_to_end_level = ranking[target];
  plan.end_to_end_rank = target;
  result.plan = std::move(plan);

  // Reserve pass: the sink proxy (which fixed the operating point)
  // dispatches one commit RPC per proxy; each commits its own segment.
  // Abort on failure, admission or unreachable alike.
  const HostId sink_host = agent_host(agents_.size() - 1);
  std::size_t committed = 0;
  bool ok = true;
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (!protocol_exchange(sink_host, agent_host(i), now, result.stats)) {
      result.outcome = EstablishOutcome::kUnreachable;
      result.failed_resource = agents_[i].footprint_.front();
      ok = false;
      break;
    }
    ++result.stats.reservations_attempted;
    ResourceId rejected;
    if (!agents_[i].reserve(session, now, lease_, &rejected)) {
      result.outcome = EstablishOutcome::kAdmission;
      result.failed_resource = rejected;
      ok = false;
      break;
    }
    ++committed;
  }
  if (!ok) {
    // Roll back the committed segments. A rollback release is an RPC
    // too; a proxy that has since become unreachable keeps its segment
    // until the lease expires — reported via result.leaked.
    for (std::size_t i = 0; i < committed; ++i) {
      if (!protocol_exchange(sink_host, agent_host(i), now, result.stats)) {
        for (const auto& [rid, amount] :
             agents_[i].chosen_step().requirement)
          result.leaked.push_back({rid, amount});
        continue;
      }
      agents_[i].release(session, now);
      ++result.stats.reservations_rolled_back;
    }
    return result;
  }
  result.success = true;
  result.outcome = EstablishOutcome::kOk;
  for (const PlanStep& step : result.plan->steps)
    for (const auto& [rid, amount] : step.requirement)
      result.holdings.push_back({rid, amount});
  return result;
}

void DistributedSession::teardown(
    const std::vector<std::pair<ResourceId, double>>& holdings,
    SessionId session, double now) {
  for (const auto& [id, amount] : holdings)
    registry_->broker(id).release_amount(now, session, amount);
}

}  // namespace qres
