// QoSProxy runtime architecture (paper §3, §4.2).
//
// A QoSProxy runs on each end host and coordinates multi-resource
// reservation for the sessions that involve its host. The paper's
// centralized mode is implemented: the *main* QoSProxy (on the service's
// main server) stores the QoS-Resource Model and runs the algorithm. A
// session establishment has three phases:
//   1. every participating QoSProxy reports current resource availability
//      to the main proxy (one message round trip per participant),
//   2. the main proxy builds the QRG and runs the planner locally,
//   3. the main proxy dispatches each plan segment to the participating
//      proxies, which reserve with their local Resource Brokers.
// Phase 3 is all-or-nothing: if any reservation fails, everything already
// reserved for the session is rolled back and establishment fails.
//
// CoordinationStats counts the message rounds of §4.2 so the overhead
// model can be examined by tests and benches.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "broker/registry.hpp"
#include "core/admission.hpp"
#include "core/planner.hpp"
#include "core/transport.hpp"
#include "rpc/broker_service.hpp"
#include "rpc/channel.hpp"

namespace qres {

/// A QoSProxy: the per-host coordination agent. In this library the proxy
/// is a thin facade over its host's brokers; the interesting coordination
/// logic lives in SessionCoordinator (the "main QoSProxy" role).
class QoSProxy {
 public:
  QoSProxy(HostId host, BrokerRegistry* registry);

  HostId host() const noexcept { return host_; }

  /// Resources whose brokers this proxy fronts.
  const std::vector<ResourceId>& local_resources() const noexcept {
    return local_;
  }
  void attach_resource(ResourceId id);

  /// Phase-1 operation: report observations for the requested local
  /// resources at observation time `t`.
  void report(const std::vector<ResourceId>& ids, double t,
              AvailabilityView& into) const;

  /// Phase-3 operation: reserve one plan segment amount with a local
  /// broker. Returns false on admission failure.
  bool reserve(ResourceId id, double now, SessionId session, double amount);

  /// Releases a specific amount (used for rollback and teardown).
  void release(ResourceId id, double now, SessionId session, double amount);

 private:
  HostId host_;
  BrokerRegistry* registry_;
  std::vector<ResourceId> local_;
};

/// Message/overhead accounting for one establishment (paper §4.2: one
/// round trip per participating proxy plus local algorithm execution).
struct CoordinationStats {
  std::size_t participating_proxies = 0;
  std::size_t availability_messages = 0;  ///< phase-1 request/report pairs
  std::size_t dispatch_messages = 0;      ///< phase-3 plan segments sent
  std::size_t reservations_attempted = 0;
  std::size_t reservations_rolled_back = 0;
  /// Fault-plane accounting (all zero without an attached transport).
  std::size_t retransmissions = 0;       ///< extra RPC attempts that got through
  std::size_t unreachable_proxies = 0;   ///< RPC rounds that never got through
  std::size_t replans = 0;               ///< recovery rounds after kUnreachable
};

/// Why a session establishment ended the way it did. Separates hard
/// rejections (no plan / admission) from control-plane faults
/// (kUnreachable), which establish_with_recovery re-plans around, and
/// from overload fast-rejects (kOverload), which an admission governor
/// issues before any planning or RPC work is spent.
enum class EstablishOutcome : std::uint8_t {
  kOk,           ///< established; holdings are live
  kNoPlan,       ///< no feasible end-to-end plan for the snapshot
  kAdmission,    ///< a broker rejected a plan segment (stale observation)
  kUnreachable,  ///< a participating proxy could not be reached
  kOverload,     ///< rejected fast by the admission governor
  /// No feasible plan while one or more footprint brokers were down (or,
  /// defensively, a dispatch hit a down broker). A broker outage is a
  /// fault, not a rejection: the coordinator routes around down brokers
  /// when any alternative exists, so this outcome means the outage itself
  /// is (potentially) what blocked the session — retry after restart.
  kBrokerUnavailable,
};

const char* to_string(EstablishOutcome outcome) noexcept;

/// Outcome of a session establishment attempt.
struct EstablishResult {
  bool success = false;
  EstablishOutcome outcome = EstablishOutcome::kNoPlan;
  /// Resource whose reservation or dispatch failed (invalid otherwise).
  ResourceId failed_resource;
  /// The computed plan (present whenever planning succeeded, even if the
  /// subsequent reservation failed due to stale observations).
  std::optional<ReservationPlan> plan;
  /// Diagnostics for every end-to-end QoS level.
  std::vector<SinkInfo> sinks;
  /// What was actually reserved (resource, amount) — empty on failure;
  /// needed to tear the session down later.
  std::vector<std::pair<ResourceId, double>> holdings;
  /// Reservations whose rollback release could not be dispatched (the
  /// owning proxy was unreachable). They stay held by the session until
  /// the broker lease expires (lease mode) or an explicit release; the
  /// caller must account for them (the auditor does).
  std::vector<std::pair<ResourceId, double>> leaked;
  CoordinationStats stats;
};

/// The main-QoSProxy coordination logic for one distributed service.
class SessionCoordinator {
 public:
  /// `footprint` lists every resource any translation of `service` may
  /// reference (the set the main proxy asks the participants to report).
  /// `psi_kind` selects the contention-index definition used when
  /// building QRGs (paper eq. 2 / footnote 2).
  SessionCoordinator(const ServiceDefinition* service,
                     std::vector<ResourceId> footprint,
                     BrokerRegistry* registry,
                     PsiKind psi_kind = PsiKind::kRatio);

  /// Routes every coordination RPC (phase-1 availability round trips,
  /// phase-3 dispatches and rollback releases) through `transport`,
  /// wrapped in an rpc::RpcChannel shim (request ids, per-peer stats,
  /// optional circuit breaker and deadline — see rpc_channel() /
  /// set_rpc_deadline). `main_host` is where this coordinator (the main
  /// QoSProxy) runs; resources whose catalog host is invalid count as
  /// main-local and need no RPC. Without a transport the control plane is
  /// perfect, as before.
  void attach_faults(IControlTransport* transport, HostId main_host);

  /// Switches the coordinator to the *typed* control plane: phase-1
  /// polls become versioned QueryRequest frames answered from the
  /// brokers by `service`, and phase-3 dispatches / rollback releases /
  /// teardowns become ReserveRequest / ReleaseRequest frames executed
  /// through the service's bounded per-broker queues. `transport`
  /// (optional) still decides reachability and retransmission cost per
  /// call; `faults` (optional) injects frame-level corruption /
  /// duplication / reordering; `config` tunes the shim's retry policy
  /// and circuit breaker. With null transport/faults and the default
  /// config the typed plane is bit-identical to the implicit one
  /// (differential-tested in tests/fuzz/rpc_fuzz.cpp).
  void attach_rpc_service(rpc::BrokerService* service, HostId main_host,
                          IControlTransport* transport = nullptr,
                          rpc::IFrameFaults* faults = nullptr,
                          rpc::RpcChannel::Config config = {});

  /// Per-call deadline budget: every subsequent coordination RPC carries
  /// an absolute deadline of now + `budget` (propagated to the broker
  /// service in typed mode, truncating retry trains in both modes).
  /// Infinity (the default) disables deadlines.
  void set_rpc_deadline(double budget);

  /// Client-transparent re-homing after failover (DESIGN.md §14): typed
  /// dispatches for resources the directory knows route to its primary
  /// and carry its epoch; a kNotPrimary redirect is followed under the
  /// same request id (RpcChannel::call_routed) and the directory learns
  /// the new primary/epoch from the redirect, so the next dispatch goes
  /// straight there. Null (the default) keeps catalog-host routing.
  void set_replication_directory(ReplicationDirectory* directory) {
    directory_ = directory;
  }

  /// The shim every coordination RPC goes through (null until
  /// attach_faults / attach_rpc_service). Exposed for breaker
  /// configuration and per-peer stats (`qresctl rpc`).
  rpc::RpcChannel* rpc_channel() const noexcept { return channel_.get(); }

  /// Phase-3 reservations become leases of `lease_duration` time units:
  /// if the owning proxy (or this coordinator) crashes before renewing,
  /// the broker reclaims the capacity instead of leaking it. The caller
  /// renews through a LeaseKeeper (src/sim) or directly via the brokers.
  void enable_leases(double lease_duration);

  /// Consults `governor` at the start of every establish call; when it
  /// rejects, the attempt fails immediately with kOverload — no planning,
  /// no RPC rounds, no broker churn. Null (the default) disables the
  /// check; renegotiation is never governed (adaptation must keep running
  /// under overload — that is its job).
  void set_admission_governor(const IAdmissionGovernor* governor) {
    governor_ = governor;
  }

  /// Priority the governor sees for subsequent establish calls (the
  /// AdaptationEngine sets this per admission; plain callers stay at 0).
  void set_priority_hint(int priority) { priority_hint_ = priority; }

  /// Runs the three-phase establishment for `session` at time `now` using
  /// `planner`. `scale` multiplies the service's base requirements (the
  /// paper's fat sessions). `staleness` (optional) maps each resource to
  /// how many time units old its observation is (§5.2.4); accurate when
  /// null. `rng` feeds randomized planners only.
  EstablishResult establish(SessionId session, double now,
                            const IPlanner& planner, Rng& rng,
                            double scale = 1.0,
                            const std::function<double(ResourceId)>&
                                staleness = nullptr);

  // --- Phase-split establishment (DESIGN.md §11). establish() is exactly
  // snapshot_for_planning + plan_on_snapshot + commit_planned; batch
  // admission (src/sim/batch_admission.*) composes the same three phases
  // with the middle one fanned across a ThreadPool.

  /// Everything phase 2 needs, captured sequentially. Snapshotting
  /// observes brokers (alpha history advances) and spends RPC rounds, so
  /// it mutates world state and must stay in arrival order; the captured
  /// snapshot is immutable afterwards.
  struct PlanningSnapshot {
    bool overloaded = false;  ///< governor fast-reject; skip planning
    AvailabilityView view;
    std::vector<ResourceId> down;  ///< footprint brokers that were down
    CoordinationStats stats;       ///< phase-1 accounting so far
  };

  /// Phase 0+1 of establish(): governor check, participant polling, and
  /// the footprint availability snapshot. `dead` resources are pinned at
  /// zero availability regardless of their brokers (recovery replans).
  PlanningSnapshot snapshot_for_planning(
      double now,
      const std::function<double(ResourceId)>& staleness = nullptr,
      const std::vector<ResourceId>& dead = {});

  /// Phase 2 of establish(): QRG build + planner run against a snapshot.
  /// A pure const function of its arguments — safe to call concurrently
  /// from ThreadPool workers on distinct (snapshot, rng) pairs while
  /// nobody mutates the coordinator or its registry. Requires a
  /// non-overloaded snapshot.
  PlanResult plan_on_snapshot(const PlanningSnapshot& snapshot,
                              const IPlanner& planner, Rng& rng,
                              double scale = 1.0) const;

  /// Phase 3 of establish(): dispatch plus all-or-nothing reservation of
  /// a planned result against broker state *now* — which may have moved
  /// since the snapshot (an earlier member of the same batch may have
  /// taken the capacity); that surfaces as kAdmission exactly like a
  /// stale observation would. Handles overloaded snapshots (kOverload)
  /// and planless results (kNoPlan / kBrokerUnavailable) uniformly.
  EstablishResult commit_planned(SessionId session, double now,
                                 const PlanningSnapshot& snapshot,
                                 PlanResult planned);

  /// Like establish() with the basic algorithm, but resilient to stale
  /// observations: if the Psi-minimal plan's reservation is rejected
  /// (possible only when `staleness` is non-null — with accurate
  /// observations planning and reservation are atomic), the coordinator
  /// falls back to the next-cheapest feasible plan for the same (then
  /// lower-ranked) end-to-end level, attempting at most `max_attempts`
  /// plans in total. Chain services only.
  EstablishResult establish_resilient(
      SessionId session, double now, std::size_t max_attempts, Rng& rng,
      double scale = 1.0,
      const std::function<double(ResourceId)>& staleness = nullptr);

  /// Self-healing establishment: like establish(), but when the attempt
  /// fails because a participating proxy was unreachable (kUnreachable —
  /// a fault, not a rejection), the coordinator marks every footprint
  /// resource on the dead host as unavailable, re-snapshots and re-plans
  /// around it (at degraded QoS if the planner must), up to `max_replans`
  /// additional rounds. Hard failures (kNoPlan / kAdmission) are returned
  /// as-is. Stats accumulate across rounds; stats.replans counts the
  /// recovery rounds taken.
  EstablishResult establish_with_recovery(
      SessionId session, double now, const IPlanner& planner, Rng& rng,
      double scale = 1.0, int max_replans = 2,
      const std::function<double(ResourceId)>& staleness = nullptr);

  /// Make-before-break renegotiation of a live session (the adaptation
  /// layer's primitive, see src/adapt). Re-plans against a fresh snapshot
  /// in which the session's `current` holdings are credited back as
  /// available (the new plan may reuse anything already held), then
  /// reserves only the positive per-resource deltas of the new plan;
  /// once every delta is in place the transition commits and the excess
  /// of the old holdings is released. The session therefore never holds
  /// less than its committed plan mid-transition: an abort (admission
  /// rejection or unreachable proxy) rolls the deltas back and leaves
  /// exactly the old holdings — never the zero-holdings window of the
  /// old break-before-make loop.
  ///
  /// `min_rank` clamps how good the new plan may be: the chosen sink's
  /// end-to-end rank is >= min_rank (AIMD additive upgrades pass
  /// current_rank - 1; forced priority shedding passes the worst rank).
  ///
  /// On success result.holdings is the complete replacement holdings set
  /// (old holdings are consumed); an excess release whose RPC failed
  /// stays both in result.holdings and in result.leaked, so the caller's
  /// record keeps matching the broker until a later renegotiation or the
  /// final teardown releases it. On failure result.holdings is empty and
  /// the caller keeps `current` — plus result.leaked, the delta
  /// reservations whose rollback release could not be dispatched.
  ///
  /// `on_commit` (optional) fires at the commit point — every delta
  /// reserved, nothing released yet — with the new plan's per-resource
  /// totals. From before the call until that instant the session's
  /// broker holdings cover `current`; from that instant on they cover the
  /// reported totals. The AdaptationEngine uses it to maintain the
  /// holdings floor the make-before-break invariant is audited against.
  EstablishResult renegotiate(
      SessionId session, double now, const IPlanner& planner, Rng& rng,
      double scale,
      const std::vector<std::pair<ResourceId, double>>& current,
      std::size_t min_rank = 0,
      const std::function<double(ResourceId)>& staleness = nullptr,
      const std::function<
          void(const std::vector<std::pair<ResourceId, double>>&)>&
          on_commit = nullptr);

  /// Releases every holding of a previously established session. Releases
  /// toward a down broker cannot be delivered: the journal will restore
  /// the holding at restart, where reconciliation reclaims it as an
  /// orphan (or lease expiry does).
  void teardown(const std::vector<std::pair<ResourceId, double>>& holdings,
                SessionId session, double now);

  const ServiceDefinition& service() const noexcept { return *service_; }

  // --- Post-restart session reconciliation (DESIGN.md §9).

  /// One live session's belief about `resource`: it holds `amount` there
  /// and is owned by proxy host `owner`.
  struct ReconcileClaim {
    SessionId session;
    HostId owner;
    double amount = 0.0;
  };

  /// How one (session, holding) divergence was resolved — always toward
  /// the journal, whose recovered broker state is the durable truth.
  enum class ReconcileResolution : std::uint8_t {
    kConfirmed,       ///< claim matches the recovered holding (lease renewed)
    kLostClaim,       ///< journal lost the claim's tail; the claim is forfeit
    kOrphanReleased,  ///< recovered holding has no live claimant; released
    kExcessReleased,  ///< recovered holding exceeds the claim; excess released
    kRpcFailed,       ///< re-sync RPC lost; left to lease grace / next pass
  };

  struct ReconcileEvent {
    ReconcileResolution resolution = ReconcileResolution::kConfirmed;
    SessionId session;
    double claimed = 0.0;  ///< what the session believes it holds
    double held = 0.0;     ///< what the recovered broker holds
  };

  struct ReconcileReport {
    ResourceId resource;
    std::vector<ReconcileEvent> events;
    std::size_t confirmed = 0;
    std::size_t lost_claims = 0;
    std::size_t orphans_released = 0;
    std::size_t excess_released = 0;
    std::size_t rpc_failures = 0;
  };

  /// Re-sync protocol after `resource`'s broker restarted: every live
  /// claimant re-asserts its holding (one RPC from its owner host to the
  /// broker's host, subject to the attached fault plane), and divergences
  /// between the claims and the journal-recovered broker state are
  /// resolved toward the journal:
  ///   * claim == recovered holding: confirmed; in lease mode the
  ///     re-assertion renews the lease;
  ///   * claim > recovered holding (crash lost the journal tail): the
  ///     difference is forfeit (kLostClaim) — the caller drops it from
  ///     the session's books and may re-reserve via establish;
  ///   * recovered holding with no (or a smaller) live claim — the
  ///     session died or tore down during the outage: the orphan amount
  ///     is released at the broker (one coordinator-to-broker-host RPC);
  ///   * any re-sync RPC that never gets through leaves that holding
  ///     untouched, protected by the restart lease grace until a later
  ///     pass or expiry reclaims it.
  /// The caller folds each event into the ReservationAuditor (typed
  /// Discrepancy records) so conservation stays exact. The broker must be
  /// a leaf and up.
  ReconcileReport reconcile_broker(ResourceId resource, double now,
                                   const std::vector<ReconcileClaim>& claims);

 private:
  /// How one phase-3 dispatch ended (typed analogue of the old
  /// up()/rpc_to_owner()/reserve_segment() ladder).
  enum class Dispatch : std::uint8_t {
    kOk,
    kAdmission,    ///< the broker rejected the amount
    kUnreachable,  ///< the owner proxy (or its reply) never got through
    kBrokerDown,   ///< the broker process is down
  };

  /// Phase-1 snapshot tolerant of broker outages: down footprint
  /// resources are reported at zero availability (the planner routes
  /// around them) and appended to `down`. Never observes a down broker.
  /// Resources present in `sampled` (typed-mode query replies) use the
  /// remote sample instead of a local observation, so each broker is
  /// observed exactly once per snapshot in either mode.
  AvailabilityView collect_footprint(
      double now, const std::function<double(ResourceId)>& staleness,
      std::vector<ResourceId>* down,
      const FlatMap<ResourceId, rpc::QuerySample>& sampled = {}) const;

  /// establish() with an explicit set of resources to treat as dead
  /// (observed at zero availability regardless of their brokers).
  EstablishResult establish_impl(
      SessionId session, double now, const IPlanner& planner, Rng& rng,
      double scale, const std::function<double(ResourceId)>& staleness,
      const std::vector<ResourceId>& dead);

  /// One phase-3 reservation through the local broker, leased when lease
  /// mode is on.
  bool reserve_segment(ResourceId id, double now, SessionId session,
                       double amount);

  /// Phase-1 RPC round: polls every remote participating proxy once
  /// (implicit mode: one ping; typed mode: one QueryRequest whose
  /// samples land in `sampled`). Resources of unreachable owners are
  /// appended to `unavailable`; `stats` accumulates retransmissions /
  /// unreachable counts.
  void poll_participants(double now,
                         const std::function<double(ResourceId)>& staleness,
                         CoordinationStats* stats,
                         std::vector<ResourceId>* unavailable,
                         FlatMap<ResourceId, rpc::QuerySample>* sampled);

  /// One control RPC to the proxy owning `id` (a no-op returning true
  /// without a channel or for main-local resources). False = the owner
  /// was unreachable; `stats` accumulates the RPC accounting.
  bool rpc_to_owner(ResourceId id, double now, CoordinationStats* stats);

  /// One phase-3 reservation dispatch: RPC to the owner plus the broker
  /// reservation — implicit mode runs them as two steps, typed mode as
  /// one ReserveRequest through the service queue.
  Dispatch dispatch_reserve(ResourceId id, double now, SessionId session,
                            double amount, CoordinationStats* stats);

  /// One release dispatch (rollback, excess release, teardown). False =
  /// the release could not be delivered (the holding leaks to lease
  /// expiry / reconciliation).
  bool dispatch_release(ResourceId id, double now, SessionId session,
                        double amount, CoordinationStats* stats);

  /// The absolute deadline for an RPC issued at `now`.
  double rpc_deadline(double now) const;

  /// Typed-mode routing for `id`: the replication directory's primary
  /// (writing its epoch into *epoch) when one is known, else the catalog
  /// owner, else the main host.
  HostId route_for(ResourceId id, std::uint64_t* epoch) const;

  const ServiceDefinition* service_;
  std::vector<ResourceId> footprint_;
  BrokerRegistry* registry_;
  PsiKind psi_kind_;
  std::unique_ptr<rpc::RpcChannel> channel_;
  rpc::BrokerService* rpc_service_ = nullptr;  ///< non-null in typed mode
  HostId main_host_;
  double rpc_deadline_budget_ = rpc::RpcChannel::kNoDeadline;
  double lease_ = 0.0;  ///< 0 = permanent reservations
  const IAdmissionGovernor* governor_ = nullptr;
  int priority_hint_ = 0;
  ReplicationDirectory* directory_ = nullptr;
};

const char* to_string(SessionCoordinator::ReconcileResolution
                          resolution) noexcept;

}  // namespace qres
