// Session establishment with advance reservations (paper §6 future work).
//
// Mirrors SessionCoordinator's three-phase protocol, but phase 1 collects
// *interval* availability (the minimum unreserved amount over the
// session's requested [start, end) window) from AdvanceBrokers, and phase
// 3 books the plan's amounts over that window, all-or-nothing. The
// planning algorithm itself (QRG + bottleneck shortest path) is reused
// unchanged — exactly the property that makes advance reservations a
// natural extension of the framework.
#pragma once

#include <optional>
#include <vector>

#include "broker/advance_broker.hpp"
#include "core/planner.hpp"

namespace qres {

struct AdvanceEstablishResult {
  bool success = false;
  std::optional<ReservationPlan> plan;
  std::vector<SinkInfo> sinks;
  /// Live bookings of the session, one per distinct resource; pass to
  /// cancel() to tear the session down (or let them expire at `end`).
  std::vector<std::pair<ResourceId, BookingId>> bookings;
};

class AdvanceSessionCoordinator {
 public:
  AdvanceSessionCoordinator(const ServiceDefinition* service,
                            std::vector<ResourceId> footprint,
                            AdvanceRegistry* registry,
                            PsiKind psi_kind = PsiKind::kRatio);

  /// Plans and books the session over [start, end). `start` may be now
  /// (immediate reservation) or in the future (advance reservation).
  AdvanceEstablishResult establish(SessionId session, double start,
                                   double end, const IPlanner& planner,
                                   Rng& rng, double scale = 1.0);

  /// Cancels every booking of a previously established session.
  void cancel(const std::vector<std::pair<ResourceId, BookingId>>& bookings);

  const ServiceDefinition& service() const noexcept { return *service_; }

 private:
  const ServiceDefinition* service_;
  std::vector<ResourceId> footprint_;
  AdvanceRegistry* registry_;
  PsiKind psi_kind_;
};

}  // namespace qres
