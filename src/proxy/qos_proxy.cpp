#include "proxy/qos_proxy.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace qres {

QoSProxy::QoSProxy(HostId host, BrokerRegistry* registry)
    : host_(host), registry_(registry) {
  QRES_REQUIRE(host.valid(), "QoSProxy: invalid host");
  QRES_REQUIRE(registry != nullptr, "QoSProxy: null registry");
}

void QoSProxy::attach_resource(ResourceId id) {
  QRES_REQUIRE(id.valid(), "QoSProxy::attach_resource: invalid id");
  registry_->broker(id);  // validates existence
  local_.push_back(id);
}

void QoSProxy::report(const std::vector<ResourceId>& ids, double t,
                      AvailabilityView& into) const {
  for (ResourceId id : ids) {
    QRES_REQUIRE(std::find(local_.begin(), local_.end(), id) != local_.end(),
                 "QoSProxy::report: resource is not local to this proxy");
    const ResourceObservation obs = registry_->broker(id).observe(t);
    into.set(id, obs.available, obs.alpha);
  }
}

bool QoSProxy::reserve(ResourceId id, double now, SessionId session,
                       double amount) {
  return registry_->broker(id).reserve(now, session, amount);
}

void QoSProxy::release(ResourceId id, double now, SessionId session,
                       double amount) {
  registry_->broker(id).release_amount(now, session, amount);
}

const char* to_string(EstablishOutcome outcome) noexcept {
  switch (outcome) {
    case EstablishOutcome::kOk: return "ok";
    case EstablishOutcome::kNoPlan: return "no-plan";
    case EstablishOutcome::kAdmission: return "admission";
    case EstablishOutcome::kUnreachable: return "unreachable";
    case EstablishOutcome::kOverload: return "overload";
    case EstablishOutcome::kBrokerUnavailable: return "broker-unavailable";
  }
  return "?";
}

const char* to_string(
    SessionCoordinator::ReconcileResolution resolution) noexcept {
  using R = SessionCoordinator::ReconcileResolution;
  switch (resolution) {
    case R::kConfirmed: return "confirmed";
    case R::kLostClaim: return "lost-claim";
    case R::kOrphanReleased: return "orphan-released";
    case R::kExcessReleased: return "excess-released";
    case R::kRpcFailed: return "rpc-failed";
  }
  return "?";
}

SessionCoordinator::SessionCoordinator(const ServiceDefinition* service,
                                       std::vector<ResourceId> footprint,
                                       BrokerRegistry* registry,
                                       PsiKind psi_kind)
    : service_(service),
      footprint_(std::move(footprint)),
      registry_(registry),
      psi_kind_(psi_kind) {
  QRES_REQUIRE(service != nullptr, "SessionCoordinator: null service");
  QRES_REQUIRE(registry != nullptr, "SessionCoordinator: null registry");
  QRES_REQUIRE(!footprint_.empty(),
               "SessionCoordinator: empty resource footprint");
}

void SessionCoordinator::attach_faults(IControlTransport* transport,
                                       HostId main_host) {
  QRES_REQUIRE(transport != nullptr, "attach_faults: null transport");
  QRES_REQUIRE(main_host.valid(), "attach_faults: invalid main host");
  // Implicit control plane through the RPC shim: with the default config
  // (breaker disabled, no deadline) the shim is bit-identical to a
  // direct exchange.
  channel_ = std::make_unique<rpc::RpcChannel>(transport, nullptr, nullptr);
  rpc_service_ = nullptr;
  main_host_ = main_host;
}

void SessionCoordinator::attach_rpc_service(rpc::BrokerService* service,
                                            HostId main_host,
                                            IControlTransport* transport,
                                            rpc::IFrameFaults* faults,
                                            rpc::RpcChannel::Config config) {
  QRES_REQUIRE(service != nullptr, "attach_rpc_service: null service");
  QRES_REQUIRE(main_host.valid(), "attach_rpc_service: invalid main host");
  channel_ =
      std::make_unique<rpc::RpcChannel>(transport, service, faults, config);
  rpc_service_ = service;
  main_host_ = main_host;
}

void SessionCoordinator::set_rpc_deadline(double budget) {
  QRES_REQUIRE(budget > 0.0, "set_rpc_deadline: budget must be positive");
  rpc_deadline_budget_ = budget;
}

double SessionCoordinator::rpc_deadline(double now) const {
  return now + rpc_deadline_budget_;
}

void SessionCoordinator::enable_leases(double lease_duration) {
  QRES_REQUIRE(lease_duration > 0.0,
               "enable_leases: lease duration must be positive");
  lease_ = lease_duration;
}

bool SessionCoordinator::reserve_segment(ResourceId id, double now,
                                         SessionId session, double amount) {
  if (lease_ > 0.0)
    return registry_->broker(id).reserve_leased(now, session, amount, lease_);
  return registry_->broker(id).reserve(now, session, amount);
}

AvailabilityView SessionCoordinator::collect_footprint(
    double now, const std::function<double(ResourceId)>& staleness,
    std::vector<ResourceId>* down,
    const FlatMap<ResourceId, rpc::QuerySample>& sampled) const {
  // A down broker cannot be observed (its observe() aborts by contract:
  // unavailable, never "empty"). The coordinator observes the up subset
  // and pins down resources at zero availability so planning routes
  // around them; the typed kBrokerUnavailable outcome is attributed when
  // that routing finds no plan. Resources already sampled remotely (a
  // typed-mode QueryReply) take the remote observation verbatim — each
  // broker is observed exactly once per snapshot in either mode.
  std::vector<ResourceId> up;
  up.reserve(footprint_.size());
  std::vector<std::pair<ResourceId, rpc::QuerySample>> remote;
  for (ResourceId id : footprint_) {
    if (const auto it = sampled.find(id); it != sampled.end()) {
      remote.push_back({id, it->second});
      if (it->second.up == 0) down->push_back(id);
      continue;
    }
    if (registry_->broker(id).up())
      up.push_back(id);
    else
      down->push_back(id);
  }
  AvailabilityView view = registry_->collect(up, now, staleness);
  for (const auto& [id, sample] : remote)
    if (sample.up != 0) view.set(id, sample.available, sample.alpha);
  for (ResourceId id : *down) view.set(id, 0.0, 1.0);
  return view;
}

EstablishResult SessionCoordinator::establish(
    SessionId session, double now, const IPlanner& planner, Rng& rng,
    double scale, const std::function<double(ResourceId)>& staleness) {
  return establish_impl(session, now, planner, rng, scale, staleness, {});
}

void SessionCoordinator::poll_participants(
    double now, const std::function<double(ResourceId)>& staleness,
    CoordinationStats* stats, std::vector<ResourceId>* unavailable,
    FlatMap<ResourceId, rpc::QuerySample>* sampled) {
  // Overhead accounting (§4.2): one availability round trip per
  // participating proxy (distinct component host), one dispatch per plan
  // segment later.
  std::set<std::uint32_t> hosts;
  for (ComponentIndex c = 0; c < service_->component_count(); ++c) {
    const HostId host = service_->component(c).host();
    if (host.valid()) hosts.insert(host.value());
  }
  stats->participating_proxies = hosts.empty() ? 1 : hosts.size();
  stats->availability_messages = stats->participating_proxies;

  // Under faults each remote proxy's report is one RPC round trip; a
  // proxy that cannot be reached contributes zero availability for its
  // resources (the main proxy has no report to plan from), so the
  // planner routes around it instead of reserving blind. Typed mode
  // folds the round trip and the report into one QueryRequest whose
  // samples land in `sampled`.
  if (!channel_) return;
  std::set<std::uint32_t> polled;
  for (ResourceId id : footprint_) {
    const HostId owner = registry_->catalog().host(id);
    if (!owner.valid() || owner == main_host_) continue;
    if (!polled.insert(owner.value()).second) continue;
    bool reached = false;
    int transmissions = 0;
    if (rpc_service_) {
      rpc::QueryRequest request;
      request.header.deadline = rpc_deadline(now);
      for (ResourceId other : footprint_)
        if (registry_->catalog().host(other) == owner)
          request.entries.push_back(
              {other.value(), now - (staleness ? staleness(other) : 0.0)});
      const rpc::CallResult result =
          channel_->call(main_host_, owner, std::move(request), now);
      transmissions = result.transmissions;
      if (result.ok()) {
        const auto& reply = std::get<rpc::QueryReply>(result.reply);
        if (reply.code == rpc::RpcCode::kOk) {
          reached = true;
          for (const rpc::QuerySample& sample : reply.samples)
            sampled->insert_or_assign(ResourceId{sample.resource}, sample);
        }
      }
    } else {
      const ExchangeResult result =
          channel_->ping(main_host_, owner, now, rpc_deadline(now));
      reached = result.ok();
      transmissions = result.transmissions;
    }
    if (!reached) {
      ++stats->unreachable_proxies;
      for (ResourceId other : footprint_)
        if (registry_->catalog().host(other) == owner)
          unavailable->push_back(other);
    } else if (transmissions > 1) {
      stats->retransmissions += static_cast<std::size_t>(transmissions - 1);
    }
  }
}

bool SessionCoordinator::rpc_to_owner(ResourceId id, double now,
                                      CoordinationStats* stats) {
  if (!channel_) return true;
  const HostId owner = registry_->catalog().host(id);
  if (!owner.valid() || owner == main_host_) return true;
  const ExchangeResult result =
      channel_->ping(main_host_, owner, now, rpc_deadline(now));
  if (!result.ok()) {
    ++stats->unreachable_proxies;
    return false;
  }
  if (result.transmissions > 1)
    stats->retransmissions += static_cast<std::size_t>(result.transmissions - 1);
  return true;
}

SessionCoordinator::Dispatch SessionCoordinator::dispatch_reserve(
    ResourceId id, double now, SessionId session, double amount,
    CoordinationStats* stats) {
  if (!rpc_service_) {
    // Implicit mode: the old up()/RPC/reserve ladder, verbatim.
    if (!registry_->broker(id).up()) return Dispatch::kBrokerDown;
    if (!rpc_to_owner(id, now, stats)) return Dispatch::kUnreachable;
    ++stats->reservations_attempted;
    return reserve_segment(id, now, session, amount) ? Dispatch::kOk
                                                     : Dispatch::kAdmission;
  }
  rpc::ReserveRequest request;
  request.header.session = session.value();
  request.header.deadline = rpc_deadline(now);
  request.resource = id.value();
  request.amount = amount;
  request.lease = lease_;
  std::uint64_t epoch = 0;
  const HostId to = route_for(id, &epoch);
  request.header.epoch = epoch;
  const rpc::RoutedResult routed =
      channel_->call_routed(main_host_, to, std::move(request), now);
  if (!routed.ok()) {
    ++stats->unreachable_proxies;
    return Dispatch::kUnreachable;
  }
  const rpc::CallResult& result = routed.result;
  if (result.transmissions > 1)
    stats->retransmissions += static_cast<std::size_t>(result.transmissions - 1);
  if (const auto* redirect = std::get_if<rpc::RedirectReply>(&result.reply)) {
    // Redirect chain did not converge (hint-less or looping): learn what
    // the refuser knew so the next attempt routes to the new primary,
    // and report a retryable fault.
    if (directory_ != nullptr)
      directory_->update(id, redirect->epoch, HostId{redirect->primary_host});
    ++stats->unreachable_proxies;
    return Dispatch::kUnreachable;
  }
  if (routed.redirects > 0 && directory_ != nullptr)
    directory_->update(id, routed.epoch_hint, routed.served_by);
  const auto& reply = std::get<rpc::ReserveReply>(result.reply);
  switch (reply.code) {
    case rpc::RpcCode::kOk:
      ++stats->reservations_attempted;
      return Dispatch::kOk;
    case rpc::RpcCode::kAdmissionReject:
      ++stats->reservations_attempted;
      return Dispatch::kAdmission;
    case rpc::RpcCode::kBrokerDown:
      return Dispatch::kBrokerDown;
    case rpc::RpcCode::kBadRequest:
    case rpc::RpcCode::kDeadlineExceeded:
    case rpc::RpcCode::kBackpressure:
    case rpc::RpcCode::kNotPrimary:
      // The dispatch never took effect — retryable, like an unreachable
      // owner.
      ++stats->unreachable_proxies;
      return Dispatch::kUnreachable;
  }
  return Dispatch::kUnreachable;  // out-of-range code from a hostile peer
}

bool SessionCoordinator::dispatch_release(ResourceId id, double now,
                                          SessionId session, double amount,
                                          CoordinationStats* stats) {
  if (!rpc_service_) {
    if (!registry_->broker(id).up()) return false;
    if (!rpc_to_owner(id, now, stats)) return false;
    registry_->broker(id).release_amount(now, session, amount);
    return true;
  }
  rpc::ReleaseRequest request;
  request.header.session = session.value();
  request.header.deadline = rpc_deadline(now);
  request.resource = id.value();
  request.release_all = 0;
  request.amount = amount;
  std::uint64_t epoch = 0;
  const HostId to = route_for(id, &epoch);
  request.header.epoch = epoch;
  const rpc::RoutedResult routed =
      channel_->call_routed(main_host_, to, std::move(request), now);
  if (!routed.ok()) {
    if (stats) ++stats->unreachable_proxies;
    return false;
  }
  const rpc::CallResult& result = routed.result;
  if (stats && result.transmissions > 1)
    stats->retransmissions += static_cast<std::size_t>(result.transmissions - 1);
  if (const auto* redirect = std::get_if<rpc::RedirectReply>(&result.reply)) {
    if (directory_ != nullptr)
      directory_->update(id, redirect->epoch, HostId{redirect->primary_host});
    if (stats) ++stats->unreachable_proxies;
    return false;
  }
  if (routed.redirects > 0 && directory_ != nullptr)
    directory_->update(id, routed.epoch_hint, routed.served_by);
  const auto* reply = std::get_if<rpc::ReleaseReply>(&result.reply);
  return reply != nullptr && reply->code == rpc::RpcCode::kOk;
}

HostId SessionCoordinator::route_for(ResourceId id,
                                     std::uint64_t* epoch) const {
  if (directory_ != nullptr) {
    if (const ReplicationDirectory::Entry* entry = directory_->find(id)) {
      if (epoch != nullptr) *epoch = entry->epoch;
      if (entry->primary.valid()) return entry->primary;
    }
  }
  const HostId owner = registry_->catalog().host(id);
  return owner.valid() ? owner : main_host_;
}

SessionCoordinator::PlanningSnapshot SessionCoordinator::snapshot_for_planning(
    double now, const std::function<double(ResourceId)>& staleness,
    const std::vector<ResourceId>& dead) {
  PlanningSnapshot snapshot;
  if (governor_ && governor_->should_reject(now, priority_hint_)) {
    snapshot.overloaded = true;
    return snapshot;
  }

  // Phase 1: collect availability for the service's resource footprint.
  std::vector<ResourceId> unavailable = dead;
  FlatMap<ResourceId, rpc::QuerySample> sampled;
  poll_participants(now, staleness, &snapshot.stats, &unavailable, &sampled);
  snapshot.view = collect_footprint(now, staleness, &snapshot.down, sampled);
  for (ResourceId id : unavailable) snapshot.view.set(id, 0.0, 1.0);
  return snapshot;
}

PlanResult SessionCoordinator::plan_on_snapshot(
    const PlanningSnapshot& snapshot, const IPlanner& planner, Rng& rng,
    double scale) const {
  QRES_REQUIRE(!snapshot.overloaded,
               "plan_on_snapshot: snapshot was governor-rejected");
  // Phase 2: build the QRG and run the algorithm at the main proxy. Pure
  // function of (snapshot, planner, rng, scale): no coordinator or
  // broker state is touched, which is what lets batch admission run this
  // phase on ThreadPool workers.
  const Qrg qrg(*service_, snapshot.view, psi_kind_, scale);
  return planner.plan(qrg, rng);
}

EstablishResult SessionCoordinator::commit_planned(
    SessionId session, double now, const PlanningSnapshot& snapshot,
    PlanResult planned) {
  EstablishResult result;
  if (snapshot.overloaded) {
    result.outcome = EstablishOutcome::kOverload;
    return result;
  }
  result.stats = snapshot.stats;
  result.sinks = std::move(planned.sinks);
  if (!planned.plan) {
    // No feasible end-to-end plan. With a broker outage in the footprint
    // the rejection is typed as the fault it may well be, not as a plain
    // capacity rejection.
    if (!snapshot.down.empty()) {
      result.outcome = EstablishOutcome::kBrokerUnavailable;
      result.failed_resource = snapshot.down.front();
    }
    return result;
  }
  result.plan = std::move(planned.plan);

  // Phase 3: dispatch plan segments; all-or-nothing reservation. Under
  // faults every remote segment is one dispatch RPC; an unreachable
  // owner aborts the establishment like an admission failure, except the
  // outcome is retryable (establish_with_recovery re-plans around it).
  result.stats.dispatch_messages = result.plan->steps.size();
  const ResourceVector total = result.plan->total_requirement();
  std::vector<std::pair<ResourceId, double>> reserved;
  reserved.reserve(total.size());
  bool ok = true;
  for (const auto& [id, amount] : total) {
    // A plan cannot normally require a down broker (its availability was
    // pinned at zero), but a zero-amount segment can slip through — the
    // dispatch types it as the outage it is.
    switch (dispatch_reserve(id, now, session, amount, &result.stats)) {
      case Dispatch::kOk:
        reserved.push_back({id, amount});
        continue;
      case Dispatch::kBrokerDown:
        result.outcome = EstablishOutcome::kBrokerUnavailable;
        break;
      case Dispatch::kUnreachable:
        result.outcome = EstablishOutcome::kUnreachable;
        break;
      case Dispatch::kAdmission:
        result.outcome = EstablishOutcome::kAdmission;
        break;
    }
    result.failed_resource = id;
    ok = false;
    break;
  }
  if (!ok) {
    // Roll back everything reserved for this session so far. A rollback
    // release is itself an RPC; if the owning proxy has become
    // unreachable (or its broker went down, in which case the journal
    // will resurrect the holding at restart) the release cannot be
    // delivered and the reservation leaks until its lease expires or
    // reconciliation reclaims it — reported via result.leaked so the
    // caller (and the auditor) can account for it.
    for (const auto& [id, amount] : reserved) {
      if (!dispatch_release(id, now, session, amount, &result.stats)) {
        result.leaked.push_back({id, amount});
        continue;
      }
      ++result.stats.reservations_rolled_back;
    }
    return result;
  }
  result.success = true;
  result.outcome = EstablishOutcome::kOk;
  result.holdings = std::move(reserved);
  return result;
}

EstablishResult SessionCoordinator::establish_impl(
    SessionId session, double now, const IPlanner& planner, Rng& rng,
    double scale, const std::function<double(ResourceId)>& staleness,
    const std::vector<ResourceId>& dead) {
  PlanningSnapshot snapshot = snapshot_for_planning(now, staleness, dead);
  if (snapshot.overloaded)
    return commit_planned(session, now, snapshot, PlanResult{});
  PlanResult planned = plan_on_snapshot(snapshot, planner, rng, scale);
  return commit_planned(session, now, snapshot, std::move(planned));
}

EstablishResult SessionCoordinator::renegotiate(
    SessionId session, double now, const IPlanner& planner, Rng& rng,
    double scale,
    const std::vector<std::pair<ResourceId, double>>& current,
    std::size_t min_rank,
    const std::function<double(ResourceId)>& staleness,
    const std::function<
        void(const std::vector<std::pair<ResourceId, double>>&)>&
        on_commit) {
  QRES_REQUIRE(session.valid(), "renegotiate: invalid session");
  constexpr double kEps = 1e-9;
  EstablishResult result;

  // Phase 1: fresh snapshot, same RPC accounting as an establishment.
  std::vector<ResourceId> unavailable;
  FlatMap<ResourceId, rpc::QuerySample> sampled;
  poll_participants(now, staleness, &result.stats, &unavailable, &sampled);
  std::vector<ResourceId> down;
  AvailabilityView view = collect_footprint(now, staleness, &down, sampled);
  for (ResourceId id : unavailable) view.set(id, 0.0, 1.0);

  // Credit the session's own holdings back into the snapshot: the new
  // plan may reuse anything it already holds, so feasibility is judged
  // against available + held — exactly what delta reservation can admit
  // without ever releasing first.
  for (const auto& [id, amount] : current) {
    if (!view.contains(id)) continue;
    const ResourceObservation& obs = view.get(id);
    view.set(id, obs.available + amount, obs.alpha);
  }

  // Phase 2: re-plan. min_rank clamps how good the new plan may be (the
  // AIMD additive upgrade step / forced shedding floor): when the
  // planner's choice is better than allowed, fall back to the best
  // reachable sink at or below the clamp.
  const Qrg qrg(*service_, view, psi_kind_, scale);
  PlanResult planned = planner.plan(qrg, rng);
  result.sinks = std::move(planned.sinks);
  if (planned.plan && planned.plan->end_to_end_rank < min_rank) {
    planned.plan.reset();
    const auto labels = relax_qrg(qrg);
    for (std::size_t rank = min_rank; rank < result.sinks.size(); ++rank) {
      if (!result.sinks[rank].reachable) continue;
      planned.plan = extract_plan(qrg, labels, qrg.ranked_sink_nodes()[rank]);
      if (planned.plan) break;
    }
  }
  if (!planned.plan) {
    // Nothing reserved; the old plan stands. Typed as an outage when one
    // may explain the miss (see establish_impl).
    if (!down.empty()) {
      result.outcome = EstablishOutcome::kBrokerUnavailable;
      result.failed_resource = down.front();
    }
    return result;
  }
  result.plan = std::move(planned.plan);

  // Phase 3a (make): reserve only the positive per-resource deltas. The
  // old holdings are untouched until the whole transition is committed.
  FlatMap<ResourceId, double> old_held;
  for (const auto& [id, amount] : current) old_held[id] += amount;
  const ResourceVector new_total = result.plan->total_requirement();
  result.stats.dispatch_messages = result.plan->steps.size();
  std::vector<std::pair<ResourceId, double>> deltas;
  bool ok = true;
  for (const auto& [id, amount] : new_total) {
    const auto it = old_held.find(id);
    const double have = it == old_held.end() ? 0.0 : it->second;
    const double delta = amount - have;
    if (delta <= kEps) continue;
    switch (dispatch_reserve(id, now, session, delta, &result.stats)) {
      case Dispatch::kOk:
        deltas.push_back({id, delta});
        continue;
      case Dispatch::kBrokerDown:
        result.outcome = EstablishOutcome::kBrokerUnavailable;
        break;
      case Dispatch::kUnreachable:
        result.outcome = EstablishOutcome::kUnreachable;
        break;
      case Dispatch::kAdmission:
        result.outcome = EstablishOutcome::kAdmission;
        break;
    }
    result.failed_resource = id;
    ok = false;
    break;
  }
  if (!ok) {
    // Abort: roll the deltas back; the session still holds exactly its
    // old plan. A rollback release whose RPC fails stays held beyond the
    // old plan and is reported via leaked (the caller folds it into its
    // record so the books keep matching the broker).
    for (const auto& [id, amount] : deltas) {
      if (!dispatch_release(id, now, session, amount, &result.stats)) {
        result.leaked.push_back({id, amount});
        continue;
      }
      ++result.stats.reservations_rolled_back;
    }
    return result;
  }

  // Phase 3b (break): committed — release the excess of the old
  // holdings. The session now holds at least the new plan everywhere; an
  // excess release whose RPC fails stays held (and leased, if leases are
  // on) and is reported both in holdings and in leaked.
  FlatMap<ResourceId, double> final_held;
  for (const auto& [id, amount] : new_total) final_held[id] = amount;
  if (on_commit) {
    std::vector<std::pair<ResourceId, double>> committed(final_held.begin(),
                                                         final_held.end());
    on_commit(committed);
  }
  for (const auto& [id, have] : old_held) {
    const double keep = new_total.get(id);
    const double excess = have - keep;
    if (excess <= kEps) continue;
    if (!dispatch_release(id, now, session, excess, &result.stats)) {
      result.leaked.push_back({id, excess});
      final_held[id] += excess;
      continue;
    }
  }
  result.holdings.assign(final_held.begin(), final_held.end());
  result.success = true;
  result.outcome = EstablishOutcome::kOk;
  return result;
}

EstablishResult SessionCoordinator::establish_with_recovery(
    SessionId session, double now, const IPlanner& planner, Rng& rng,
    double scale, int max_replans,
    const std::function<double(ResourceId)>& staleness) {
  QRES_REQUIRE(max_replans >= 0,
               "establish_with_recovery: negative replan budget");
  // Resources on hosts observed dead in earlier rounds: forced to zero
  // availability so each re-plan routes around them (degraded QoS is the
  // planner's business, not ours).
  std::vector<ResourceId> dead;
  CoordinationStats acc;
  std::vector<std::pair<ResourceId, double>> leaked;
  for (int round = 0;; ++round) {
    EstablishResult r =
        establish_impl(session, now, planner, rng, scale, staleness, dead);
    acc.participating_proxies = r.stats.participating_proxies;
    acc.availability_messages += r.stats.availability_messages;
    acc.dispatch_messages += r.stats.dispatch_messages;
    acc.reservations_attempted += r.stats.reservations_attempted;
    acc.reservations_rolled_back += r.stats.reservations_rolled_back;
    acc.retransmissions += r.stats.retransmissions;
    acc.unreachable_proxies += r.stats.unreachable_proxies;
    leaked.insert(leaked.end(), r.leaked.begin(), r.leaked.end());
    if (r.outcome != EstablishOutcome::kUnreachable ||
        round == max_replans) {
      acc.replans = static_cast<std::size_t>(round);
      r.stats = acc;
      r.leaked = std::move(leaked);
      return r;
    }
    const HostId down = registry_->catalog().host(r.failed_resource);
    for (ResourceId id : footprint_)
      if (registry_->catalog().host(id) == down) dead.push_back(id);
  }
}

EstablishResult SessionCoordinator::establish_resilient(
    SessionId session, double now, std::size_t max_attempts, Rng& /*rng*/,
    double scale, const std::function<double(ResourceId)>& staleness) {
  QRES_REQUIRE(max_attempts >= 1,
               "establish_resilient: at least one attempt required");
  QRES_REQUIRE(service_->is_chain(),
               "establish_resilient: chain services only");
  EstablishResult result;
  if (governor_ && governor_->should_reject(now, priority_hint_)) {
    result.outcome = EstablishOutcome::kOverload;
    return result;
  }
  result.stats.participating_proxies = 1;
  result.stats.availability_messages = 1;

  std::vector<ResourceId> down;
  const AvailabilityView view = collect_footprint(now, staleness, &down);
  const Qrg qrg(*service_, view, psi_kind_, scale);
  const auto labels = relax_qrg(qrg);
  result.sinks = sink_infos(qrg, labels);

  std::size_t attempts_left = max_attempts;
  for (std::size_t rank = 0;
       rank < result.sinks.size() && attempts_left > 0; ++rank) {
    if (!result.sinks[rank].reachable) continue;
    const std::uint32_t sink_node = qrg.ranked_sink_nodes()[rank];
    for (ReservationPlan& plan :
         enumerate_plans(qrg, sink_node, attempts_left)) {
      if (attempts_left == 0) break;
      --attempts_left;
      if (!result.plan) result.plan = plan;  // report the first choice
      ++result.stats.dispatch_messages;
      const ResourceVector total = plan.total_requirement();
      std::vector<std::pair<ResourceId, double>> reserved;
      bool ok = true;
      for (const auto& [id, amount] : total) {
        ++result.stats.reservations_attempted;
        if (reserve_segment(id, now, session, amount)) {
          reserved.push_back({id, amount});
        } else {
          result.outcome = EstablishOutcome::kAdmission;
          result.failed_resource = id;
          ok = false;
          break;
        }
      }
      if (ok) {
        result.success = true;
        result.outcome = EstablishOutcome::kOk;
        result.plan = std::move(plan);  // what was actually reserved
        result.holdings = std::move(reserved);
        return result;
      }
      for (const auto& [id, amount] : reserved) {
        registry_->broker(id).release_amount(now, session, amount);
        ++result.stats.reservations_rolled_back;
      }
    }
  }
  if (!result.success && !result.plan && !down.empty()) {
    result.outcome = EstablishOutcome::kBrokerUnavailable;
    result.failed_resource = down.front();
  }
  return result;
}

void SessionCoordinator::teardown(
    const std::vector<std::pair<ResourceId, double>>& holdings,
    SessionId session, double now) {
  // A release toward a down broker is undeliverable; the journal restores
  // the holding at restart and reconciliation (or lease expiry) reclaims
  // it there as an orphan. Typed mode routes each release through the
  // service (deduped, deadline-checked); implicit mode keeps the legacy
  // local release (teardown never was an RPC there).
  for (const auto& [id, amount] : holdings) {
    if (rpc_service_) {
      dispatch_release(id, now, session, amount, nullptr);
      continue;
    }
    if (!registry_->broker(id).up()) continue;
    registry_->broker(id).release_amount(now, session, amount);
  }
}

SessionCoordinator::ReconcileReport SessionCoordinator::reconcile_broker(
    ResourceId resource, double now,
    const std::vector<ReconcileClaim>& claims) {
  constexpr double kEps = 1e-9;
  // Replicated resources reconcile against the group façade: claims are
  // re-asserted to the *current* primary (the directory-era host, not the
  // catalog's original owner) and every resolution mutation replicates
  // like any other record. This is the PR-4 protocol re-used as the
  // post-failover re-homing step (DESIGN.md §14).
  ReplicatedBroker* rep = registry_->replicated(resource);
  ResourceBroker* leafb = rep == nullptr ? registry_->leaf(resource) : nullptr;
  QRES_REQUIRE(rep != nullptr || leafb != nullptr,
               "reconcile_broker: reconciliation applies to leaf brokers");
  IBroker& broker = registry_->broker(resource);
  QRES_REQUIRE(broker.up(), "reconcile_broker: broker is down");
  const HostId broker_host = rep != nullptr && rep->primary_host().valid()
                                 ? rep->primary_host()
                                 : registry_->catalog().host(resource);

  ReconcileReport report;
  report.resource = resource;

  // One re-sync RPC per claimant: its owner host re-asserts the holding
  // to the broker's host, across the fault plane like any other control
  // message. Without a transport the control plane is perfect.
  auto resync_rpc = [&](HostId from, SessionId session, double claimed) {
    if (!channel_ || !from.valid() || !broker_host.valid() ||
        from == broker_host)
      return true;
    if (rpc_service_) {
      rpc::ReconcileRequest request;
      request.header.session = session.value();
      request.header.deadline = rpc_deadline(now);
      request.resource = resource.value();
      request.claimed = claimed;
      const rpc::CallResult result =
          channel_->call(from, broker_host, std::move(request), now);
      return result.ok() &&
             std::get<rpc::ReconcileReply>(result.reply).code ==
                 rpc::RpcCode::kOk;
    }
    return channel_->ping(from, broker_host, now, rpc_deadline(now)).ok();
  };

  // Aggregate claims per session (a session re-asserts once, with the
  // total it believes it holds here; the first claim's owner speaks).
  FlatMap<SessionId, ReconcileClaim> merged;
  for (const ReconcileClaim& claim : claims) {
    QRES_REQUIRE(claim.session.valid() && claim.amount >= 0.0,
                 "reconcile_broker: malformed claim");
    auto it = merged.find(claim.session);
    if (it == merged.end())
      merged.insert_or_assign(claim.session, claim);
    else
      it->second.amount += claim.amount;
  }

  for (const auto& [session, claim] : merged) {
    ReconcileEvent event;
    event.session = claim.session;
    event.claimed = claim.amount;
    event.held = broker.held_by(claim.session);
    if (!resync_rpc(claim.owner, claim.session, claim.amount)) {
      // Lost re-sync: the recovered holding stays as-is, protected by the
      // restart lease grace until a later pass or expiry settles it.
      event.resolution = ReconcileResolution::kRpcFailed;
      ++report.rpc_failures;
      report.events.push_back(event);
      continue;
    }
    if (event.held + kEps < event.claimed) {
      // The crash lost the journal tail holding part (or all) of this
      // claim. The journal is the truth: the difference is forfeit; the
      // caller drops it from the session's books and may re-reserve.
      event.resolution = ReconcileResolution::kLostClaim;
      ++report.lost_claims;
    } else if (event.held > event.claimed + kEps) {
      // The journal restored more than the session claims (a pre-crash
      // rollback that leaked, then re-asserted smaller). The unclaimed
      // excess is orphan capacity: released here and now.
      broker.release_amount(now, claim.session, event.held - event.claimed);
      event.resolution = ReconcileResolution::kExcessReleased;
      ++report.excess_released;
    } else {
      event.resolution = ReconcileResolution::kConfirmed;
      ++report.confirmed;
    }
    // Re-assertion is a sign of life: in lease mode the surviving holding
    // is renewed so the grace window hands over to normal keeping.
    if (lease_ > 0.0 && broker.held_by(claim.session) > 0.0)
      broker.renew_lease(now, claim.session, lease_);
    report.events.push_back(event);
  }

  // Orphan sweep: every recovered holding with no live claimant belongs
  // to a session that died or tore down during the outage. Released, via
  // one coordinator-to-broker-host RPC.
  const JournalRecord state =
      rep != nullptr ? rep->primary_snapshot(now) : leafb->snapshot(now);
  for (const auto& [session_value, held] : state.holdings) {
    const SessionId session{session_value};
    if (merged.contains(session)) continue;
    ReconcileEvent event;
    event.session = session;
    event.held = held;
    if (!resync_rpc(main_host_, session, 0.0)) {
      event.resolution = ReconcileResolution::kRpcFailed;
      ++report.rpc_failures;
      report.events.push_back(event);
      continue;
    }
    broker.release(now, session);
    event.resolution = ReconcileResolution::kOrphanReleased;
    ++report.orphans_released;
    report.events.push_back(event);
  }
  return report;
}

}  // namespace qres
