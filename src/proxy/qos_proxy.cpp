#include "proxy/qos_proxy.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace qres {

QoSProxy::QoSProxy(HostId host, BrokerRegistry* registry)
    : host_(host), registry_(registry) {
  QRES_REQUIRE(host.valid(), "QoSProxy: invalid host");
  QRES_REQUIRE(registry != nullptr, "QoSProxy: null registry");
}

void QoSProxy::attach_resource(ResourceId id) {
  QRES_REQUIRE(id.valid(), "QoSProxy::attach_resource: invalid id");
  registry_->broker(id);  // validates existence
  local_.push_back(id);
}

void QoSProxy::report(const std::vector<ResourceId>& ids, double t,
                      AvailabilityView& into) const {
  for (ResourceId id : ids) {
    QRES_REQUIRE(std::find(local_.begin(), local_.end(), id) != local_.end(),
                 "QoSProxy::report: resource is not local to this proxy");
    const ResourceObservation obs = registry_->broker(id).observe(t);
    into.set(id, obs.available, obs.alpha);
  }
}

bool QoSProxy::reserve(ResourceId id, double now, SessionId session,
                       double amount) {
  return registry_->broker(id).reserve(now, session, amount);
}

void QoSProxy::release(ResourceId id, double now, SessionId session,
                       double amount) {
  registry_->broker(id).release_amount(now, session, amount);
}

SessionCoordinator::SessionCoordinator(const ServiceDefinition* service,
                                       std::vector<ResourceId> footprint,
                                       BrokerRegistry* registry,
                                       PsiKind psi_kind)
    : service_(service),
      footprint_(std::move(footprint)),
      registry_(registry),
      psi_kind_(psi_kind) {
  QRES_REQUIRE(service != nullptr, "SessionCoordinator: null service");
  QRES_REQUIRE(registry != nullptr, "SessionCoordinator: null registry");
  QRES_REQUIRE(!footprint_.empty(),
               "SessionCoordinator: empty resource footprint");
}

EstablishResult SessionCoordinator::establish(
    SessionId session, double now, const IPlanner& planner, Rng& rng,
    double scale, const std::function<double(ResourceId)>& staleness) {
  EstablishResult result;

  // Overhead accounting (§4.2): one availability round trip per
  // participating proxy (distinct component host), one dispatch per plan
  // segment later.
  std::set<std::uint32_t> hosts;
  for (ComponentIndex c = 0; c < service_->component_count(); ++c) {
    const HostId host = service_->component(c).host();
    if (host.valid()) hosts.insert(host.value());
  }
  result.stats.participating_proxies = hosts.empty() ? 1 : hosts.size();
  result.stats.availability_messages = result.stats.participating_proxies;

  // Phase 1: collect availability for the service's resource footprint.
  const AvailabilityView view = registry_->collect(footprint_, now, staleness);

  // Phase 2: build the QRG and run the algorithm at the main proxy.
  const Qrg qrg(*service_, view, psi_kind_, scale);
  PlanResult planned = planner.plan(qrg, rng);
  result.sinks = std::move(planned.sinks);
  if (!planned.plan) return result;  // no feasible end-to-end plan
  result.plan = std::move(planned.plan);

  // Phase 3: dispatch plan segments; all-or-nothing reservation.
  result.stats.dispatch_messages = result.plan->steps.size();
  const ResourceVector total = result.plan->total_requirement();
  std::vector<std::pair<ResourceId, double>> reserved;
  reserved.reserve(total.size());
  bool ok = true;
  for (const auto& [id, amount] : total) {
    ++result.stats.reservations_attempted;
    if (registry_->broker(id).reserve(now, session, amount)) {
      reserved.push_back({id, amount});
    } else {
      ok = false;
      break;
    }
  }
  if (!ok) {
    // Roll back everything reserved for this session so far.
    for (const auto& [id, amount] : reserved) {
      registry_->broker(id).release_amount(now, session, amount);
      ++result.stats.reservations_rolled_back;
    }
    return result;
  }
  result.success = true;
  result.holdings = std::move(reserved);
  return result;
}

EstablishResult SessionCoordinator::establish_resilient(
    SessionId session, double now, std::size_t max_attempts, Rng& /*rng*/,
    double scale, const std::function<double(ResourceId)>& staleness) {
  QRES_REQUIRE(max_attempts >= 1,
               "establish_resilient: at least one attempt required");
  QRES_REQUIRE(service_->is_chain(),
               "establish_resilient: chain services only");
  EstablishResult result;
  result.stats.participating_proxies = 1;
  result.stats.availability_messages = 1;

  const AvailabilityView view = registry_->collect(footprint_, now, staleness);
  const Qrg qrg(*service_, view, psi_kind_, scale);
  const auto labels = relax_qrg(qrg);
  result.sinks = sink_infos(qrg, labels);

  std::size_t attempts_left = max_attempts;
  for (std::size_t rank = 0;
       rank < result.sinks.size() && attempts_left > 0; ++rank) {
    if (!result.sinks[rank].reachable) continue;
    const std::uint32_t sink_node = qrg.ranked_sink_nodes()[rank];
    for (ReservationPlan& plan :
         enumerate_plans(qrg, sink_node, attempts_left)) {
      if (attempts_left == 0) break;
      --attempts_left;
      if (!result.plan) result.plan = plan;  // report the first choice
      ++result.stats.dispatch_messages;
      const ResourceVector total = plan.total_requirement();
      std::vector<std::pair<ResourceId, double>> reserved;
      bool ok = true;
      for (const auto& [id, amount] : total) {
        ++result.stats.reservations_attempted;
        if (registry_->broker(id).reserve(now, session, amount)) {
          reserved.push_back({id, amount});
        } else {
          ok = false;
          break;
        }
      }
      if (ok) {
        result.success = true;
        result.plan = std::move(plan);  // what was actually reserved
        result.holdings = std::move(reserved);
        return result;
      }
      for (const auto& [id, amount] : reserved) {
        registry_->broker(id).release_amount(now, session, amount);
        ++result.stats.reservations_rolled_back;
      }
    }
  }
  return result;
}

void SessionCoordinator::teardown(
    const std::vector<std::pair<ResourceId, double>>& holdings,
    SessionId session, double now) {
  for (const auto& [id, amount] : holdings)
    registry_->broker(id).release_amount(now, session, amount);
}

}  // namespace qres
